#!/usr/bin/env python
"""Gene-burden screening on a PIM-resident genotype panel.

A population-genetics panel (variants x samples bit-matrix) lives in
Pinatubo memory; gene burden tests -- "which samples carry any variant of
gene G?" -- execute as single multi-row OR activations, haplotype matches
as AND chains, and case/control discordance as XOR.

Run:  python examples/genomics_screen.py
"""

import numpy as np

from repro.apps.genomics import (
    PimGenotypePanel,
    burden_oracle,
    burden_trace,
    random_gene_sets,
    synthetic_panel,
)
from repro.baselines.simd import SimdCpu
from repro.core.model import PinatuboModel
from repro.runtime import PimRuntime


def main() -> None:
    panel = synthetic_panel(n_variants=192, n_samples=8192, seed=11)
    freqs = [panel.allele_frequency(v) for v in range(panel.n_variants)]
    print(f"panel: {panel.n_variants} variants x {panel.n_samples} samples, "
          f"median allele frequency {np.median(freqs) * 100:.2f}%")

    rt = PimRuntime.pcm()
    pim = PimGenotypePanel(rt, panel)
    print(f"loaded {panel.n_variants} variant bitmaps into PIM memory")

    # one gene's burden: a single multi-row OR
    gene = sorted(np.random.default_rng(0).choice(192, 24, replace=False))
    carriers = pim.burden(gene)
    assert np.array_equal(carriers, burden_oracle(panel, gene))
    print(f"gene burden over {len(gene)} variants: "
          f"{int(carriers.sum())} carrier samples "
          f"(one in-memory multi-row OR; matches numpy)")

    # haplotype intersection
    pair = [gene[0], gene[1]]
    hap = pim.haplotype(pair)
    print(f"haplotype {pair}: {int(hap.sum())} samples carry both")

    # a full screen, priced at biobank scale
    big_panel = synthetic_panel(n_variants=512, n_samples=1 << 19, seed=1)
    sets = random_gene_sets(big_panel, 200, seed=2)
    trace = burden_trace(big_panel, sets)
    cpu_cost = trace.price(SimdCpu.with_pcm())
    pim_cost = trace.price(PinatuboModel())
    print(f"\n200-gene screen over {big_panel.n_samples:,} samples:")
    print(f"  bitwise part: CPU {cpu_cost.bitwise_latency * 1e3:.2f} ms "
          f"vs Pinatubo {pim_cost.bitwise_latency * 1e3:.3f} ms "
          f"({cpu_cost.bitwise_latency / pim_cost.bitwise_latency:.0f}x)")
    print(f"  overall: {cpu_cost.total_latency / pim_cost.total_latency:.2f}x "
          f"end-to-end (carrier materialisation stays on the host)")


if __name__ == "__main__":
    main()
