#!/usr/bin/env python
"""Design-space exploration with the sweep and reliability APIs.

What a architect would ask of this library: how the multi-row budget
moves with cell contrast, what the sensing error tails look like, where
the latency goes, and what each add-on circuit costs in silicon.

Run:  python examples/design_space.py
"""

from repro.analysis.sweeps import (
    activate_time_sweep,
    mux_ratio_sweep,
    on_off_ratio_sweep,
    write_time_sweep,
)
from repro.core.pinatubo import PinatuboSystem
from repro.energy.area import AreaModel
from repro.nvm.reliability import SensingReliability
from repro.nvm.technology import get_technology
from repro.runtime import PimRuntime, WearMonitor

import numpy as np


def sweeps_demo() -> None:
    print(on_off_ratio_sweep().table())
    print()
    print(write_time_sweep().table())
    print()
    print(activate_time_sweep().table())
    print()
    print(mux_ratio_sweep().table())


def reliability_demo() -> None:
    rel = SensingReliability(get_technology("pcm"))
    print("\nSensing BER vs OR fan-in (PCM, Fenton-Wilkinson tail):")
    for n in (2, 128, 512, 2048, 4096):
        point = rel.analytical_or(n)
        print(f"  n={n:5d}: miss={point.p_miss:9.2e} false={point.p_false:9.2e}")


def energy_attribution_demo() -> None:
    rt = PimRuntime.pcm()
    rng = np.random.default_rng(0)
    operands = []
    for _ in range(128):
        h = rt.pim_malloc(1 << 19, "probe")
        rt.pim_write(h, rng.integers(0, 2, 1 << 19).astype(np.uint8))
        operands.append(h)
    dest = rt.pim_malloc(1 << 19, "probe")
    result = rt.pim_op("or", dest, operands)
    print("\nWhere a 128-row OR's energy goes:")
    for kind, fraction in result.accounting.energy_breakdown().items():
        print(f"  {kind:>14s}: {fraction * 100:5.1f}%")

    monitor = WearMonitor(rt.system.memory)
    report = monitor.report()
    print(f"wear after the op: {report.frames_written} frames written, "
          f"imbalance {report.imbalance:.1f}x")


def area_demo() -> None:
    model = AreaModel()
    report = model.pinatubo()
    print(f"\nSilicon bill (fraction of an 8 Gb PCM chip):")
    for component, fraction in report.breakdown().items():
        print(f"  {component:>12s}: {fraction * 100:6.3f}%")
    print(f"  {'total':>12s}: {report.overhead_fraction * 100:6.3f}%  "
          f"(AC-PIM would cost {model.acpim().overhead_fraction * 100:.2f}%)")


if __name__ == "__main__":
    sweeps_demo()
    reliability_demo()
    energy_attribution_demo()
    area_demo()
