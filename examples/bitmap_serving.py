#!/usr/bin/env python
"""Serving bitmap queries: the ServiceClient facade, one node to a cluster.

Drives the multi-tenant serving layer through the ``ServiceClient``
verbs (``query`` / ``range_query`` / ``update`` / ``subscribe``), first
against a single ``BitmapQueryService``, then against a 4-node
``ClusterRouter`` with a replicated hot tenant -- the same client code
works on both targets, and the cluster scatters wide range queries
across the replicas.

Run:  python examples/bitmap_serving.py
"""

import numpy as np

from repro.cluster import ClusterConfig, ClusterRouter
from repro.service import BitmapQueryService, ServiceClient, TenantQuota


def load_tenant(client: ServiceClient, tenant: str, seed: int) -> None:
    rng = np.random.default_rng(seed)
    client.load_vectors(tenant, {
        f"v{i}": rng.integers(0, 2, 4096, dtype=np.uint8) for i in range(4)
    })
    # one bitmap-indexed column: 4096 events over 12 equality bins
    client.load_bitmap_index(tenant, "city", rng.integers(0, 12, 4096), 12)


def single_node() -> None:
    print("-- single node --------------------------------------------")
    client = ServiceClient(BitmapQueryService())
    client.register_tenant("alice", TenantQuota(max_pending=32))
    client.register_tenant("bob")
    load_tenant(client, "alice", seed=1)
    load_tenant(client, "bob", seed=2)

    # handles resolve once run() drains the simulated event loop
    h_and = client.query("alice", "and", ("v0", "v1"))
    h_range = client.range_query("bob", "city", 2, 7)
    sub = client.subscribe("alice", "xor", ("v0", "v1"))
    client.update("alice", "v0",
                  np.random.default_rng(3).integers(0, 2, 4096,
                                                    dtype=np.uint8),
                  at=1e-4)
    stats = client.run()

    print(f"alice v0&v1 popcount: {h_and.popcount}, "
          f"latency {h_and.latency_s * 1e6:.1f} us")
    print(f"bob city in [2,7]:    {h_range.popcount} rows")
    print(f"alice's standing query got {len(sub.notifications)} "
          f"notifications (snapshot + one per write)")
    print(stats.summary())


def four_node_cluster() -> None:
    print("\n-- 4-node cluster -----------------------------------------")
    router = ClusterRouter(ClusterConfig(n_nodes=4, scatter_fanin=4))
    client = ServiceClient(router)  # identical client, clustered target
    # the hot tenant is 2-way replicated: reads round-robin, writes fan in
    client.register_tenant("hot", replicas=2)
    client.register_tenant("cold")
    load_tenant(client, "hot", seed=1)
    load_tenant(client, "cold", seed=2)

    handles = [client.query("hot", "or", ("v0", "v1"), at=i * 1e-4)
               for i in range(6)]
    # 12 unique bins >= scatter_fanin: split across replicas, gathered back
    wide = client.range_query("hot", "city", 0, 11, at=7e-4)
    client.run()

    assert all(h.completed for h in handles)
    owners = router.tenant_owners("hot")
    per_node = [router.nodes[n].service.stats.completed for n in owners]
    print(f"'hot' owners: nodes {owners}, reads served {per_node}")
    print(f"wide range gathered from {router.stats.gathers} scatter "
          f"(popcount {wide.popcount})")
    assert router.verify_results() == len(handles) + 1
    print(f"all {len(handles) + 1} results match the numpy oracle")
    print(f"cluster: {router.stats.summary()}")


def main() -> None:
    single_node()
    four_node_cluster()


if __name__ == "__main__":
    main()
