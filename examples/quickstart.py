#!/usr/bin/env python
"""Quickstart: bulk bitwise operations inside NVM main memory.

Allocates bit-vectors with ``pim_malloc``, runs OR/AND/XOR/INV and a
one-step 128-row OR entirely in (simulated) PCM main memory, and prints
what the operations cost compared to moving the data to a CPU.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.apps.bitvector import PimBitVector
from repro.baselines.simd import SimdCpu
from repro.runtime import PimRuntime


def main() -> None:
    # A PCM main memory with Pinatubo support (Pinatubo-128: the margin
    # analysis allows one-step 128-row ORs on PCM).
    rt = PimRuntime.pcm()
    print(f"memory: {rt.system.technology.name}, "
          f"row = {rt.system.row_bits} bits, "
          f"max one-step OR fan-in = {rt.system.max_or_rows}")

    # -- basic operations via the operator sugar ---------------------------
    rng = np.random.default_rng(0)
    n_bits = 1 << 14
    a_bits = rng.integers(0, 2, n_bits).astype(np.uint8)
    b_bits = rng.integers(0, 2, n_bits).astype(np.uint8)

    a = PimBitVector.from_bits(rt, a_bits, group="demo")
    b = PimBitVector.from_bits(rt, b_bits, group="demo")

    assert np.array_equal((a | b).to_numpy(), a_bits | b_bits)
    assert np.array_equal((a & b).to_numpy(), a_bits & b_bits)
    assert np.array_equal((a ^ b).to_numpy(), a_bits ^ b_bits)
    assert np.array_equal((~a).to_numpy(), 1 - a_bits)
    print(f"OR/AND/XOR/INV on {n_bits}-bit vectors: all match numpy")

    # -- the signature move: one-step multi-row OR --------------------------
    data = [rng.integers(0, 2, n_bits).astype(np.uint8) for _ in range(128)]
    vectors = [PimBitVector.from_bits(rt, d, group="demo") for d in data]
    before = rt.pim_accounting.latency
    merged = PimBitVector.any_of(vectors)
    op_latency = rt.pim_accounting.latency - before
    assert np.array_equal(merged.to_numpy(), np.bitwise_or.reduce(data))
    print(f"128-row OR of {n_bits}-bit vectors: one in-memory step, "
          f"{op_latency * 1e9:.0f} ns")

    # -- compare with the conventional path --------------------------------
    cpu = SimdCpu.with_pcm()
    cpu_cost = cpu.bitwise_cost("or", 128, n_bits)
    print(f"same op on a 4-core SIMD CPU: {cpu_cost.latency * 1e6:.1f} us "
          f"({cpu_cost.latency / op_latency:.0f}x slower -- every operand "
          f"crosses the DDR bus)")

    acct = rt.pim_accounting
    print(f"\ntotals: {acct.in_memory_steps} in-memory steps, "
          f"{acct.bus_data_bytes} data bytes on the DDR bus "
          f"(commands only: {acct.bus_commands})")


if __name__ == "__main__":
    main()
