#!/usr/bin/env python
"""Bitmap BFS on PIM memory: the paper's graph-processing workload.

Runs the bitmap-based BFS end-to-end on a real (simulated) Pinatubo
memory for a small co-authorship-style graph, checks it against a plain
queue BFS, then reproduces the Fig. 12-style overall comparison on the
full-size synthetic datasets via traces.

Run:  python examples/graph_bfs.py
"""

from repro.apps.bfs import bfs_reference, bitmap_bfs_pim, bitmap_bfs_trace
from repro.apps.graphs import amazon_like, dblp_like, eswiki_like
from repro.baselines.simd import SimdCpu
from repro.core.model import PinatuboModel
from repro.runtime import PimRuntime


def functional_demo() -> None:
    """Small graph, every bitwise step executed in PIM memory."""
    graph = dblp_like(n=512, seed=7)
    rt = PimRuntime.pcm()
    result = bitmap_bfs_pim(rt, graph, source=0)
    oracle = bfs_reference(graph, 0)
    assert result.visited_count == len(oracle)
    print(f"[functional] {graph.name}-like graph: n={graph.n}, m={graph.m}")
    print(f"  BFS levels: {result.levels}")
    print(f"  visited {result.visited_count} vertices "
          f"({result.bitmap_levels} levels used the bulk bitmap path)")
    print(f"  in-memory ops: {rt.driver.stats.instructions}, "
          f"PIM latency {rt.pim_accounting.latency * 1e6:.1f} us")


def evaluation_demo() -> None:
    """Fig. 12-style overall speedup on scaled synthetic datasets."""
    cpu = SimdCpu.with_pcm()
    p128 = PinatuboModel()
    print("\n[evaluation] overall speedup (bitmap BFS, Pinatubo-128 vs SIMD)")
    for gen, n in ((dblp_like, 32768), (eswiki_like, 65536), (amazon_like, 49152)):
        graph = gen(n=n)
        result = bitmap_bfs_trace(graph, 0)
        on_cpu = result.trace.price(cpu)
        on_pim = result.trace.price(p128)
        speedup = on_cpu.total_latency / on_pim.total_latency
        frac = on_cpu.bitwise_latency_fraction
        print(f"  {graph.name:8s} n={graph.n:6d} restarts={result.restarts:6d} "
              f"bitwise-share={frac * 100:5.1f}%  overall speedup {speedup:.2f}x")


if __name__ == "__main__":
    functional_demo()
    evaluation_demo()
