#!/usr/bin/env python
"""FastBit-style bitmap-index queries on PIM memory.

Builds an equality-encoded bitmap index over a synthetic STAR-like event
table, answers range queries three ways -- numpy oracle, functional
bitmap index, and an end-to-end PIM execution of the bitmap plan -- and
prints the Fig. 12-style workload comparison.

Run:  python examples/bitmap_database.py
"""

import numpy as np

from repro.apps.fastbit import FastBitDB, RangeQuery
from repro.apps.star import synthetic_star_table
from repro.baselines.simd import SimdCpu
from repro.core.model import PinatuboModel
from repro.runtime import PimRuntime


def pim_query_demo() -> None:
    """One query executed with real in-memory bitwise operations."""
    table = synthetic_star_table(n_events=4096, seed=3)
    db = FastBitDB(table)
    query = RangeQuery((("energy", 0, 24), ("n_tracks", 2, 11)))

    rt = PimRuntime.pcm()
    n = table.n_events
    # load the relevant bin bitmaps into PIM memory
    handles = {}
    for name, lo, hi in query.predicates:
        idx = db.indexes[name]
        handles[name] = [
            _store(rt, idx.bitmap(b), n, group="db") for b in range(lo, hi + 1)
        ]
    # predicate = OR over bins (one multi-row op); query = AND of predicates
    predicate_results = []
    for name, bins in handles.items():
        dest = rt.pim_malloc(n, "db")
        rt.pim_op("or", dest, bins)
        predicate_results.append(dest)
    answer = rt.pim_malloc(n, "db")
    rt.pim_op("and", answer, predicate_results)
    hits = int(rt.pim_read(answer).sum())

    assert hits == db.query_oracle(query)
    print(f"[functional] query {query.predicates} -> {hits} events "
          f"(matches oracle)")
    print(f"  in-memory ops: {rt.driver.stats.instructions}, "
          f"bus data bytes during query compute: 0")


def _store(rt, bits, n, group):
    h = rt.pim_malloc(n, group)
    rt.pim_write(h, np.asarray(bits, dtype=np.uint8))
    return h


def set_algebra_demo() -> None:
    """Ad-hoc analytics with the expression layer on the same data."""
    from repro.apps.setops import PimSetAlgebra

    table = synthetic_star_table(n_events=4096, seed=3)
    db = FastBitDB(table)
    rt = PimRuntime.pcm()
    algebra = PimSetAlgebra(rt, table.n_events)
    algebra.define("high_energy", db.indexes["energy"].range_or(96, 127))
    algebra.define("central", db.indexes["eta"].range_or(12, 19))
    algebra.define("busy", db.indexes["n_tracks"].range_or(8, 31))
    expression = "high_energy & (central | busy)"
    hits = algebra.count(expression)

    # numpy check
    he = db.indexes["energy"].range_or(96, 127)
    ce = db.indexes["eta"].range_or(12, 19)
    bu = db.indexes["n_tracks"].range_or(8, 31)
    assert hits == int((he & (ce | bu)).sum())
    print(f"\n[set algebra] '{expression}' -> {hits} events "
          f"(evaluated in memory; matches numpy)")


def workload_demo() -> None:
    """The paper's 240/480/720-query workloads, priced end to end."""
    table = synthetic_star_table(n_events=1 << 20, seed=1)
    db = FastBitDB(table, functional=False)
    cpu = SimdCpu.with_pcm()
    p128 = PinatuboModel()
    print("\n[evaluation] FastBit workloads (Pinatubo-128 vs SIMD)")
    for n_queries in (240, 480, 720):
        trace = db.run_workload(n_queries)
        on_cpu = trace.price(cpu)
        on_pim = trace.price(p128)
        print(f"  {n_queries:4d} queries: "
              f"bitwise speedup {on_cpu.bitwise_latency / on_pim.bitwise_latency:7.1f}x, "
              f"overall speedup {on_cpu.total_latency / on_pim.total_latency:.2f}x")


if __name__ == "__main__":
    pim_query_demo()
    set_algebra_demo()
    workload_demo()
