"""Cross-validation between the repo's independent models.

Three layers claim to describe the same machine:

1. the device-level :class:`~repro.nvm.array.ResistiveMat` (bits stored
   as resistances, sensed by the CSA model);
2. the functional executor over packed-bit memory
   (:class:`~repro.core.executor.PinatuboExecutor`);
3. the analytical cost model (:class:`~repro.core.model.PinatuboModel`).

These tests pin them to each other: same functional results, same command
accounting for matching shapes.
"""

import numpy as np
import pytest

from repro.baselines.base import AccessPattern
from repro.core.executor import PinatuboExecutor
from repro.core.model import PinatuboModel
from repro.core.pinatubo import PinatuboSystem
from repro.memsim.address import RowAddress
from repro.memsim.geometry import DEFAULT_GEOMETRY, MemoryGeometry
from repro.nvm.array import ResistiveMat, oracle_bitwise
from repro.nvm.sense_amp import SenseMode
from repro.nvm.technology import get_technology
from repro.nvm.variation import VariationModel


class TestMatVsExecutor:
    """Device-level mat and packed-bit executor agree bit-for-bit."""

    @pytest.mark.parametrize("mode,op,n", [
        (SenseMode.OR, "or", 4),
        (SenseMode.AND, "and", 2),
        (SenseMode.XOR, "xor", 2),
    ])
    def test_same_results(self, mode, op, n):
        rng = np.random.default_rng(11)
        n_cols = 256
        rows = [rng.integers(0, 2, n_cols).astype(np.uint8) for _ in range(n)]

        # device level with variation
        mat = ResistiveMat(
            get_technology("pcm"),
            n_rows=16,
            n_cols=n_cols,
            mux_ratio=8,
            variation=VariationModel.for_technology(get_technology("pcm")),
            rng=np.random.default_rng(5),
        )
        for i, bits in enumerate(rows):
            mat.write_row(i, bits)
        mat_bits = mat.bitwise(mode, range(n)).bits

        # system level
        geom = MemoryGeometry(
            channels=1,
            ranks_per_channel=1,
            chips_per_rank=1,
            banks_per_chip=1,
            subarrays_per_bank=2,
            rows_per_subarray=16,
            mats_per_subarray=1,
            cols_per_mat=n_cols,
            mux_ratio=8,
        )
        ex = PinatuboExecutor(geometry=geom, technology=get_technology("pcm"))
        for i, bits in enumerate(rows):
            ex.memory.write_bits(i, bits)
        ex.bitwise(op, [n], [[i] for i in range(n)], n_cols)
        exec_bits = ex.memory.read_bits(n, n_cols)

        oracle = oracle_bitwise(mode, rows)
        np.testing.assert_array_equal(mat_bits, oracle)
        np.testing.assert_array_equal(exec_bits, oracle)


class TestExecutorVsModel:
    """The analytical model prices what the executor actually does."""

    def _executor_cost(self, op, n_operands, vector_bits):
        system = PinatuboSystem.pcm()
        g = system.geometry
        # place operands + dest in subarray 0 of bank 0 (model's
        # sequential assumption)
        base = system.mapper.encode(RowAddress(0, 0, 0, 0, 0))
        rng = np.random.default_rng(3)
        sources = []
        for i in range(n_operands):
            frame = base + i
            system.memory.write_frame(
                frame, rng.integers(0, 256, g.row_bytes).astype(np.uint8)
            )
            sources.append([frame])
        dest = [base + n_operands]
        result = system.bitwise(op, dest, sources, vector_bits)
        return result.accounting.latency

    @pytest.mark.parametrize("op,n,bits", [
        ("or", 2, 1 << 14),
        ("or", 8, 1 << 19),
        ("or", 128, 1 << 19),
        ("and", 2, 1 << 19),
        ("xor", 2, 1 << 16),
        ("inv", 1, 1 << 14),
    ])
    def test_latency_matches(self, op, n, bits):
        model = PinatuboModel()
        model_cost = model.bitwise_cost(op, n, bits, AccessPattern.SEQUENTIAL)
        exec_latency = self._executor_cost(op, n, bits)
        assert exec_latency == pytest.approx(model_cost.latency, rel=1e-6)

    def test_decomposed_or_matches(self):
        model = PinatuboModel(max_rows=2)
        model_cost = model.bitwise_cost("or", 8, 1 << 14)
        system = PinatuboSystem.pcm(max_rows=2)
        base = system.mapper.encode(RowAddress(0, 0, 0, 0, 0))
        rng = np.random.default_rng(3)
        sources = []
        for i in range(8):
            system.memory.write_frame(
                base + i,
                rng.integers(0, 256, system.geometry.row_bytes).astype(np.uint8),
            )
            sources.append([base + i])
        result = system.bitwise("or", [base + 8], sources, 1 << 14)
        assert result.accounting.latency == pytest.approx(
            model_cost.latency, rel=1e-6
        )
        assert result.steps == 7


class TestGeometryConsistency:
    def test_mat_sense_steps_match_geometry(self):
        """A full-row mat op takes mux_ratio steps; the geometry's
        sense_steps_for_bits must agree for a full row."""
        g = DEFAULT_GEOMETRY
        assert g.sense_steps_for_bits(g.row_bits) == g.mux_ratio

    def test_margin_limits_match_executor_limits(self):
        from repro.nvm.margin import max_multirow_or

        system = PinatuboSystem.pcm()
        assert system.max_or_rows == max_multirow_or(get_technology("pcm"))
