"""Chrome trace export round-trip and aggregate correctness."""

import json

import pytest

from repro import telemetry


def _record_sample_forest():
    with telemetry.span("app.query", queries=3) as sp:
        sp.add(latency_s=1.0, energy_j=2.0)
        with telemetry.span("driver.flush") as child:
            child.add(latency_s=0.25, energy_j=0.5)
    with telemetry.span("app.query") as sp:
        sp.add(latency_s=3.0, energy_j=4.0)
    telemetry.counter("driver.requests").add(7)
    telemetry.gauge("pool.rows").set(128.0)


class TestChromeTrace:
    def test_round_trip_through_json_file(self, tracer, tmp_path):
        _record_sample_forest()
        path = tmp_path / "trace.json"
        returned = telemetry.export_chrome_trace(str(path))
        loaded = json.loads(path.read_text())
        assert loaded == returned
        assert loaded["displayTimeUnit"] == "ms"

    def test_span_events_carry_timing_and_cost(self, tracer, tmp_path):
        _record_sample_forest()
        trace = telemetry.chrome_trace()
        span_events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(span_events) == 3
        flush = next(e for e in span_events if e["name"] == "driver.flush")
        assert flush["cat"] == "driver"
        assert flush["args"]["latency_s"] == pytest.approx(0.25)
        assert flush["args"]["energy_j"] == pytest.approx(0.5)
        assert flush["pid"] == 1 and flush["tid"] == 1
        # ts/dur are microseconds; the child sits inside its parent
        parent = next(
            e for e in span_events
            if e["name"] == "app.query" and e["args"].get("queries") == 3
        )
        assert parent["ts"] <= flush["ts"]
        assert flush["ts"] + flush["dur"] <= parent["ts"] + parent["dur"] + 1e-6

    def test_counter_events_emitted(self, tracer):
        _record_sample_forest()
        trace = telemetry.chrome_trace()
        counters = {
            e["name"]: e["args"]["value"]
            for e in trace["traceEvents"] if e["ph"] == "C"
        }
        assert counters["driver.requests"] == 7
        assert counters["pool.rows"] == 128.0

    def test_attrs_merged_into_args(self, tracer):
        _record_sample_forest()
        trace = telemetry.chrome_trace()
        parent = next(
            e for e in trace["traceEvents"]
            if e["ph"] == "X" and e["args"].get("queries") == 3
        )
        assert parent["args"]["latency_s"] == pytest.approx(1.0)


class TestAggregate:
    def test_aggregate_accumulates_per_name(self, tracer):
        _record_sample_forest()
        agg = telemetry.aggregate()
        q = agg["spans"]["app.query"]
        assert q["count"] == 2
        assert q["latency_s"] == pytest.approx(4.0)
        assert q["energy_j"] == pytest.approx(6.0)
        assert q["wall_s"] > 0
        assert agg["spans"]["driver.flush"]["count"] == 1
        assert agg["counters"]["driver.requests"] == 7
        assert agg["gauges"]["pool.rows"] == 128.0
        assert agg["dropped_spans"] == 0

    def test_summary_mentions_spans_and_instruments(self, tracer):
        _record_sample_forest()
        text = telemetry.summary()
        assert "app.query" in text
        assert "driver.requests" in text
        assert "pool.rows" in text

    def test_empty_summary_says_so(self):
        from repro.telemetry import export
        from repro.telemetry.tracer import Tracer

        assert "no telemetry recorded" in export.summary(Tracer())
