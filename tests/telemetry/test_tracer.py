"""Tracer semantics: nesting, attribution, sampling, caps, disabled path."""

import pytest

from repro import telemetry
from repro.telemetry import NULL_SPAN, Counter, Gauge


class TestNesting:
    def test_spans_record_depth_and_parent(self, tracer):
        with telemetry.span("root"):
            with telemetry.span("child"):
                with telemetry.span("grandchild"):
                    pass
            with telemetry.span("sibling"):
                pass
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["root"].depth == 0
        assert by_name["root"].parent == -1
        assert by_name["child"].depth == 1
        assert tracer.spans[by_name["child"].parent].name == "root"
        assert by_name["grandchild"].depth == 2
        assert tracer.spans[by_name["grandchild"].parent].name == "child"
        assert tracer.spans[by_name["sibling"].parent].name == "root"

    def test_child_contained_in_parent_interval(self, tracer):
        with telemetry.span("outer"):
            with telemetry.span("inner"):
                pass
        outer, inner = tracer.spans
        assert inner.ts >= outer.ts
        assert inner.ts + inner.dur <= outer.ts + outer.dur
        assert outer.dur > 0

    def test_current_span_tracks_innermost(self, tracer):
        assert telemetry.current_span() is None
        with telemetry.span("a") as a:
            assert telemetry.current_span() is a
            with telemetry.span("b") as b:
                assert telemetry.current_span() is b
            assert telemetry.current_span() is a
        assert telemetry.current_span() is None


class TestAttribution:
    def test_add_accumulates_cost_and_attrs(self, tracer):
        with telemetry.span("op", tag="x") as sp:
            sp.add(latency_s=1.0, energy_j=2.0)
            sp.add(latency_s=0.5, energy_j=0.25, rows=4)
        (record,) = tracer.spans
        assert record.latency_s == pytest.approx(1.5)
        assert record.energy_j == pytest.approx(2.25)
        assert record.attrs == {"tag": "x", "rows": 4}

    def test_attribute_targets_innermost_open_span(self, tracer):
        with telemetry.span("outer"):
            with telemetry.span("inner"):
                telemetry.attribute(energy_j=3.0)
        outer, inner = tracer.spans
        assert inner.energy_j == pytest.approx(3.0)
        assert outer.energy_j == 0.0

    def test_attribute_without_open_span_is_noop(self, tracer):
        telemetry.attribute(latency_s=1.0, energy_j=1.0)
        assert tracer.spans == []


class TestDisabledPath:
    def test_disabled_span_is_the_shared_null_singleton(self, tracer):
        tracer.configure(enabled=False)
        assert telemetry.span("anything") is NULL_SPAN
        assert telemetry.span("other", attr=1) is NULL_SPAN

    def test_null_span_add_and_nesting_are_noops(self, tracer):
        tracer.configure(enabled=False)
        with telemetry.span("a") as sp:
            sp.add(latency_s=9.0, energy_j=9.0, x=1)
            with telemetry.span("b"):
                pass
        assert tracer.spans == []
        assert tracer.dropped_spans == 0


class TestSampling:
    def test_stride_sampling_keeps_every_other_root(self, tracer):
        tracer.configure(sample_rate=0.5)
        for i in range(4):
            with telemetry.span(f"root{i}"):
                with telemetry.span("child"):
                    pass
        roots = [s for s in tracer.spans if s.depth == 0]
        children = [s for s in tracer.spans if s.depth == 1]
        assert len(roots) == 2
        # a sampled-out root drops its whole subtree, no orphans
        assert len(children) == 2
        assert tracer.dropped_spans == 2

    def test_sample_rate_zero_records_nothing(self, tracer):
        tracer.configure(sample_rate=0.0)
        for _ in range(3):
            with telemetry.span("root"):
                pass
        assert tracer.spans == []
        assert tracer.dropped_spans == 3

    def test_children_of_kept_roots_are_never_sampled(self, tracer):
        tracer.configure(sample_rate=1.0)
        with telemetry.span("root"):
            for i in range(5):
                with telemetry.span(f"child{i}"):
                    pass
        assert len(tracer.spans) == 6

    def test_configure_rejects_bad_sample_rate(self, tracer):
        with pytest.raises(ValueError):
            tracer.configure(sample_rate=1.5)
        with pytest.raises(ValueError):
            tracer.configure(sample_rate=-0.1)


class TestMaxSpans:
    def test_cap_drops_new_subtrees(self, tracer):
        tracer.configure(max_spans=2)
        for i in range(4):
            with telemetry.span(f"root{i}"):
                with telemetry.span("child"):
                    pass
        assert len(tracer.spans) == 2
        assert tracer.dropped_spans >= 2

    def test_configure_rejects_bad_max_spans(self, tracer):
        with pytest.raises(ValueError):
            tracer.configure(max_spans=0)


class TestInstruments:
    def test_counter_get_or_create_and_add(self, tracer):
        c = telemetry.counter("test.c")
        assert telemetry.counter("test.c") is c
        c.add()
        c.add(4)
        assert c.value == 5

    def test_counter_rejects_negative(self, tracer):
        with pytest.raises(ValueError):
            telemetry.counter("test.neg").add(-1)

    def test_gauge_set(self, tracer):
        g = telemetry.gauge("test.g")
        g.set(2)
        g.set(7.5)
        assert g.value == 7.5
        assert isinstance(g.value, float)

    def test_instrument_types_exported(self, tracer):
        assert isinstance(telemetry.counter("test.c2"), Counter)
        assert isinstance(telemetry.gauge("test.g2"), Gauge)


class TestReset:
    def test_reset_clears_spans_but_keeps_instruments(self, tracer):
        c = telemetry.counter("test.keep")
        c.add(3)
        with telemetry.span("x"):
            pass
        telemetry.reset()
        assert tracer.spans == []
        assert telemetry.counter("test.keep") is c
        assert c.value == 0

    def test_reset_zeroes_dropped_count_and_sampling_stride(self, tracer):
        tracer.configure(sample_rate=0.0)
        with telemetry.span("dropped"):
            pass
        assert tracer.dropped_spans == 1
        telemetry.reset()
        assert tracer.dropped_spans == 0
        tracer.configure(sample_rate=1.0)
        with telemetry.span("after"):
            pass
        assert [s.name for s in tracer.spans] == ["after"]
