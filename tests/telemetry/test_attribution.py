"""End-to-end attribution: spans reconcile with the cost accounting.

The controller spans are the *leaves* that carry simulated cost on the
functional path, so summing them must reproduce the runtime's own
accounting exactly -- the invariant the ``trace_fig10`` CLI gates CI on.
"""

import pytest

from repro import telemetry
from repro.core.pinatubo import PinatuboSystem
from repro.memsim.geometry import MemoryGeometry
from repro.runtime.api import PimRuntime

GEOM = MemoryGeometry(
    channels=1, ranks_per_channel=1, chips_per_rank=1, banks_per_chip=2,
    subarrays_per_bank=4, rows_per_subarray=32, mats_per_subarray=1,
    cols_per_mat=512, mux_ratio=8,
)


def _run_workload() -> PimRuntime:
    import numpy as np

    rt = PimRuntime(PinatuboSystem.pcm(geometry=GEOM))
    n = GEOM.row_bits
    rng = np.random.default_rng(3)
    handles = [rt.pim_malloc(n) for _ in range(4)]
    for h in handles:
        rt.pim_write(h, rng.integers(0, 2, n, dtype=np.uint8))
    dest = rt.pim_malloc(n)
    rt.pim_op("or", dest, handles[:3])
    rt.pim_op("and", dest, [handles[0], handles[1]])
    rt.pim_op_many([
        ("xor", dest, [handles[2], handles[3]]),
        ("inv", dest, [handles[0]]),
    ])
    rt.pim_read(dest)
    return rt


def _controller_span_totals():
    agg = telemetry.aggregate()["spans"]
    latency = sum(
        s["latency_s"] for n, s in agg.items()
        if n.startswith("memsim.controller.")
    )
    energy = sum(
        s["energy_j"] for n, s in agg.items()
        if n.startswith("memsim.controller.")
    )
    return latency, energy


class TestAttributionReconciles:
    def test_controller_spans_match_runtime_accounting(self, tracer):
        rt = _run_workload()
        latency, energy = _controller_span_totals()
        assert energy == pytest.approx(rt.total_energy(), rel=1e-9)
        assert latency == pytest.approx(rt.total_latency(), rel=1e-9)
        assert energy > 0

    def test_parent_spans_do_not_double_count(self, tracer):
        _run_workload()
        agg = telemetry.aggregate()["spans"]
        # the flush/app layers above the controller carry no energy of
        # their own: attribution happens once, at the leaf that knows it
        assert agg["runtime.driver.flush"]["energy_j"] == 0.0

    def test_span_forest_covers_the_stack(self, tracer):
        _run_workload()
        names = set(telemetry.aggregate()["spans"])
        assert "runtime.driver.flush" in names
        assert "core.executor.bitwise" in names
        assert "core.executor.bitwise_many" in names
        assert any(n.startswith("memsim.controller.") for n in names)

    def test_driver_counters_track_requests(self, tracer):
        _run_workload()
        counters = telemetry.aggregate()["counters"]
        # 2 pim_op + 1 pim_op_many(2 requests) = 4 requests
        assert counters["runtime.driver.requests"] == 4
        assert counters["runtime.driver.flushes"] >= 3
        assert counters["runtime.driver.mode_switches"] >= 1

    def test_telemetry_does_not_change_simulated_cost(self, tracer):
        rt_traced = _run_workload()
        traced_energy = rt_traced.total_energy()
        tracer.configure(enabled=False)
        rt_plain = _run_workload()
        assert rt_plain.total_energy() == traced_energy
        assert rt_plain.total_latency() == rt_traced.total_latency()
