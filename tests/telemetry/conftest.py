"""Shared fixtures: a clean, enabled tracer per test.

The tracer at ``repro.telemetry.tracer`` is process-global, so every
test that records spans must start from a reset tracer and leave
telemetry disabled for the rest of the suite.
"""

import pytest

from repro import telemetry
from repro.telemetry.tracer import DEFAULT_MAX_SPANS


@pytest.fixture
def tracer():
    telemetry.reset()
    telemetry.configure(enabled=True, sample_rate=1.0,
                        max_spans=DEFAULT_MAX_SPANS)
    yield telemetry.tracer
    telemetry.configure(enabled=False, sample_rate=1.0,
                        max_spans=DEFAULT_MAX_SPANS)
    telemetry.reset()
