"""Overhead guard: disabled telemetry must be (nearly) free.

Instrumentation is permanent -- every ``PimDriver.flush`` and
``MemoryController.execute_batch`` goes through ``telemetry.span`` on
every call, enabled or not -- so the disabled path has to stay under 5%
of the engine-throughput benchmark's wall time.

Timing two full benchmark runs against each other is noisy in CI, so the
guard is measured directly: run the benchmark's workload (scaled down)
once with telemetry *enabled* to count exactly how many instrumentation
events it emits, then time that many disabled ``span()``+``Counter.add``
round-trips and compare against the disabled workload's wall time.
"""

import time

from repro import telemetry
from repro.apps.fastbit_pim import PimFastBit
from repro.apps.star import synthetic_star_table
from repro.core.pinatubo import PinatuboSystem
from repro.nvm.technology import get_technology
from repro.runtime.api import PimRuntime

from benchmarks.bench_engine_throughput import COLUMNS, GEOM, _queries

#: the bench's small config, scaled to test size: 8 of its 64 chunks
N_CHUNKS = 8
N_EVENTS = N_CHUNKS * GEOM.row_bits
N_QUERIES = 20

OVERHEAD_BUDGET = 0.05


def _build_db(table) -> PimFastBit:
    system = PinatuboSystem(get_technology("pcm"), GEOM, batch_commands=True)
    return PimFastBit(PimRuntime(system), table)


def test_disabled_span_overhead_under_budget(tracer):
    table = synthetic_star_table(N_EVENTS, columns=COLUMNS, seed=11)
    queries = _queries()[:N_QUERIES]

    # count the instrumentation events the workload emits
    telemetry.reset()
    tracer.configure(enabled=True)
    _build_db(table).query_many(queries)
    n_spans = len(tracer.spans) + tracer.dropped_spans
    n_counter_adds = sum(c.value for c in tracer.counters.values())

    # time the same workload with telemetry disabled
    tracer.configure(enabled=False)
    telemetry.reset()
    db = _build_db(table)
    t0 = time.perf_counter()
    db.query_many(queries)
    workload_s = time.perf_counter() - t0

    # time the disabled-path cost of exactly that many events
    probe_counter = telemetry.counter("overhead.probe")
    t0 = time.perf_counter()
    for _ in range(n_spans):
        with telemetry.span("overhead.probe", attr=1) as sp:
            sp.add(latency_s=0.0, energy_j=0.0)
    for _ in range(n_counter_adds):
        probe_counter.add()
    probe_s = time.perf_counter() - t0

    assert n_spans > 0
    assert probe_s < OVERHEAD_BUDGET * workload_s, (
        f"disabled telemetry path costs {probe_s:.4f}s for {n_spans} spans "
        f"+ {n_counter_adds} counter adds against a {workload_s:.4f}s "
        f"workload ({probe_s / workload_s:.1%} > {OVERHEAD_BUDGET:.0%})"
    )


def test_disabled_span_is_allocation_free_fast_path(tracer):
    """Sanity floor: a disabled span round-trip is well under a microsecond."""
    tracer.configure(enabled=False)
    n = 100_000
    t0 = time.perf_counter()
    for _ in range(n):
        with telemetry.span("x"):
            pass
    per_call = (time.perf_counter() - t0) / n
    assert per_call < 5e-6
