"""The refactor's safety net: a 1-node cluster IS the single service.

The router on one node forwards the identical request objects to the
identical service machinery on the shared loop, so results, per-tenant
stats, notifications, and ``service.*`` telemetry counters must be
byte-for-byte equal to a standalone ``BitmapQueryService`` run.  The
router's own ``cluster.*`` counters are additive-only, so they are
stripped before comparing.
"""

import pytest

from repro import telemetry
from repro.cluster import ClusterConfig
from repro.workloads import (
    ServiceLoadSpec,
    run_cluster_load,
    run_service_load,
)

SPEC = ServiceLoadSpec(
    n_tenants=8,
    n_requests=160,
    write_ratio=0.15,
    subscriptions_per_tenant=1,
    zipf_s=1.1,
    seed=21,
)


def service_counters():
    counters = telemetry.aggregate()["counters"]
    return {
        name: value
        for name, value in sorted(counters.items())
        if name.startswith("service.")
    }


@pytest.fixture(scope="module")
def runs():
    telemetry.reset()
    service, service_stats = run_service_load(SPEC)
    single_counters = service_counters()
    telemetry.reset()
    router, cluster_stats = run_cluster_load(SPEC, ClusterConfig(n_nodes=1))
    cluster_counters = service_counters()
    telemetry.reset()
    return {
        "service": service,
        "service_stats": service_stats,
        "single_counters": single_counters,
        "router": router,
        "cluster_stats": cluster_stats,
        "cluster_counters": cluster_counters,
    }


class TestOneNodeByteIdentity:
    def test_node_stats_json_identical(self, runs):
        node0 = runs["router"].nodes[0].service
        assert runs["service_stats"].to_json() == node0.stats.to_json()

    def test_results_identical(self, runs):
        single = [r.to_dict() for r in runs["service"].results]
        cluster = [r.to_dict() for r in runs["router"].results]
        assert single == cluster

    def test_notifications_identical(self, runs):
        single = [n.to_dict() for n in runs["service"].notifications]
        cluster = [n.to_dict() for n in runs["router"].notifications]
        assert single == cluster

    def test_service_telemetry_counters_identical(self, runs):
        assert runs["single_counters"] == runs["cluster_counters"]

    def test_per_tenant_stats_identical(self, runs):
        node0 = runs["router"].nodes[0].service
        for tenant, stats in runs["service_stats"].tenants.items():
            assert (
                stats.to_dict() == node0.stats.tenants[tenant].to_dict()
            ), tenant

    def test_no_cluster_machinery_engaged(self, runs):
        stats = runs["cluster_stats"]
        assert stats.scattered == 0
        assert stats.replica_writes == 0
        assert stats.gathers == 0

    def test_user_facing_view_matches_node_view(self, runs):
        stats = runs["cluster_stats"]
        node = runs["service_stats"]
        assert stats.completed == node.completed
        assert stats.rejected == node.rejected
        assert stats.latency.to_json() == node.latency.to_json()


class TestClusterDeterminism:
    def test_multi_node_run_replays_byte_identically(self):
        config = ClusterConfig(n_nodes=4, scatter_fanin=4)
        router_a, stats_a = run_cluster_load(
            SPEC, config, head_tenants=2, head_replicas=2
        )
        router_b, stats_b = run_cluster_load(
            SPEC, config, head_tenants=2, head_replicas=2
        )
        assert stats_a.to_json() == stats_b.to_json()
        results_a = [r.to_dict() for r in router_a.results]
        results_b = [r.to_dict() for r in router_b.results]
        assert results_a == results_b

    def test_multi_node_conserves_user_requests(self):
        router, stats = run_cluster_load(
            SPEC,
            ClusterConfig(n_nodes=4, scatter_fanin=4),
            head_tenants=2,
            head_replicas=2,
        )
        assert stats.routed == len(router.results)
        assert stats.completed + stats.rejected == stats.routed
        assert router.verify_replicas() > 0
