"""Analytics requests through the cluster router: routed, replicated,
verified, deterministic."""

import json

import numpy as np

from repro.cluster import ClusterConfig, ClusterRouter
from repro.service import ServiceClient

N = 2048


def dataset(seed=7):
    rng = np.random.default_rng(seed)
    return {
        "age": rng.integers(0, 64, N).astype(np.int64),
        "income": rng.integers(0, 256, N).astype(np.int64),
        "region": rng.integers(0, 8, N).astype(np.int64),
    }


def run_workload(n_nodes, replicas, data):
    router = ClusterRouter(ClusterConfig(n_nodes=n_nodes))
    client = ServiceClient(router)
    client.register_tenant("t", replicas=replicas)
    client.load_bitslice_column("t", "age", data["age"], 6)
    client.load_bitslice_column("t", "income", data["income"], 8)
    client.load_bitmap_index("t", "region", data["region"], 8)
    handles = [
        client.analyze("t", [("cmp", "age", "lt", 30, 6)], ("count",)),
        client.analyze(
            "t",
            [("cmp", "age", "ge", 30, 6), ("range", "region", 2, 5)],
            ("sum", "income", 8),
        ),
        client.analyze(
            "t", [("cmp", "income", "gt", 100, 8)], ("hist", "region", 8)
        ),
    ]
    client.run()
    return router, handles


def expected(data):
    m1 = data["age"] < 30
    m2 = (
        (data["age"] >= 30) & (data["region"] >= 2) & (data["region"] <= 5)
    )
    m3 = data["income"] > 100
    hist = tuple(int(x) for x in np.bincount(data["region"][m3], minlength=8))
    return [
        (int(m1.sum()), float(m1.sum()), None),
        (int(m2.sum()), float(data["income"][m2].sum()), None),
        (int(m3.sum()), float(sum(hist)), hist),
    ]


class TestClusterAnalytics:
    def test_single_node_pass_through(self):
        data = dataset()
        router, handles = run_workload(1, 1, data)
        for handle, (pc, value, groups) in zip(handles, expected(data)):
            assert handle.result().popcount == pc
            assert handle.result().value == value
            assert handle.result().groups == groups
        assert router.verify_results() == 3

    def test_replicated_reads(self):
        data = dataset()
        router, handles = run_workload(4, 2, data)
        for handle, (pc, value, groups) in zip(handles, expected(data)):
            assert handle.result().popcount == pc
            assert handle.result().value == value
            assert handle.result().groups == groups
        assert router.verify_results() == 3

    def test_repeat_runs_byte_identical(self):
        data = dataset()

        def digest():
            _, handles = run_workload(4, 4, data)
            return json.dumps(
                [h.result().to_dict() for h in handles], sort_keys=True
            )

        assert digest() == digest()

    def test_plain_and_analytics_mix(self):
        data = dataset()
        router = ClusterRouter(ClusterConfig(n_nodes=4))
        client = ServiceClient(router)
        client.register_tenant("t", replicas=2)
        client.load_bitslice_column("t", "age", data["age"], 6)
        client.load_bitmap_index("t", "region", data["region"], 8)
        rng = np.random.default_rng(1)
        x = rng.integers(0, 2, N, dtype=np.uint8)
        y = rng.integers(0, 2, N, dtype=np.uint8)
        client.load_vectors("t", {"x": x, "y": y})
        hq = client.query("t", "and", ("x", "y"))
        ha = client.analyze("t", [("cmp", "age", "le", 10, 6)], ("count",))
        hr = client.range_query("t", "region", 0, 3)
        client.run()
        assert hq.result().popcount == int((x & y).sum())
        assert ha.result().popcount == int((data["age"] <= 10).sum())
        assert hr.result().popcount == int((data["region"] <= 3).sum())
        assert router.verify_results() == 3

    def test_replicated_repeats_replay_byte_identical(self):
        """Routed analyze with replicated heads stays byte-identical
        once the node engines' analytics compilers start replaying."""
        data = dataset()
        router = ClusterRouter(ClusterConfig(n_nodes=4))
        client = ServiceClient(router)
        client.register_tenant("t", replicas=2)
        client.load_bitslice_column("t", "age", data["age"], 6)
        client.load_bitmap_index("t", "region", data["region"], 8)

        spec = ([("cmp", "age", "lt", 30, 6), ("range", "region", 2, 5)],
                ("count",))
        want = int(
            ((data["age"] < 30) & (data["region"] >= 2)
             & (data["region"] <= 5)).sum()
        )
        digests = []
        for t in range(1, 13):
            handle = client.analyze("t", *spec, at=float(t))
            client.run()
            result = handle.result()
            assert result.popcount == want
            digests.append(
                json.dumps(
                    {
                        k: v
                        for k, v in result.to_dict().items()
                        if k not in (
                            "request_id",
                            "arrival_s",
                            "done_s",
                            "batch_id",
                        )
                    },
                    sort_keys=True,
                )
            )
        # the router alternates between the two replica heads, so each
        # node serves every other request; once both nodes are replaying,
        # same-node repeats are byte-identical
        assert digests[-1] == digests[-3]
        assert digests[-2] == digests[-4]
        replays = sum(
            node.service.engine.analytics_compiler.stats.replays
            for node in router.nodes.values()
            if hasattr(node.service.engine, "analytics_compiler")
        )
        assert replays >= 1
        assert router.verify_results() == len(digests)
