"""ClusterRouter: routing, replication, scatter/gather, membership."""

import numpy as np
import pytest

from repro.cluster import ClusterConfig, ClusterRouter
from repro.service import ServiceClient, ServiceConfig, TenantQuota
from repro.service.request import RequestStatus


def small_vectors(seed=0, n=4, bits=256):
    rng = np.random.default_rng(seed)
    return {
        f"v{i}": rng.integers(0, 2, bits, dtype=np.uint8) for i in range(n)
    }


def make_cluster(n_nodes=4, **kwargs):
    service = kwargs.pop("service", ServiceConfig())
    return ClusterRouter(
        ClusterConfig(n_nodes=n_nodes, service=service, **kwargs)
    )


class TestRouting:
    def test_read_goes_to_one_owner(self):
        router = make_cluster(4)
        client = ServiceClient(router)
        client.register_tenant("t")
        client.load_vectors("t", small_vectors())
        h = client.query("t", "and", ("v0", "v1"))
        client.run()
        assert h.completed
        (owner,) = router.tenant_owners("t")
        assert router.nodes[owner].service.stats.completed == 1
        for node_id, node in router.nodes.items():
            if node_id != owner:
                assert node.service.stats.submitted == 0

    def test_unknown_tenant_rejected_with_known_list(self):
        router = make_cluster(2)
        client = ServiceClient(router)
        client.register_tenant("known")
        client.load_vectors("known", small_vectors())
        with pytest.raises(KeyError, match="known"):
            client.query("missing", "and", ("v0", "v1"))

    def test_reads_round_robin_across_replicas(self):
        router = make_cluster(4)
        client = ServiceClient(router)
        client.register_tenant("t", replicas=2)
        client.load_vectors("t", small_vectors())
        for i in range(6):
            client.query("t", "and", ("v0", "v1"), at=i * 1e-3)
        client.run()
        owners = router.tenant_owners("t")
        counts = [
            router.nodes[n].service.stats.completed for n in owners
        ]
        assert counts == [3, 3]

    def test_updates_fan_in_to_every_replica(self):
        router = make_cluster(4)
        client = ServiceClient(router)
        client.register_tenant("t", replicas=3)
        vecs = small_vectors()
        client.load_vectors("t", vecs)
        u = client.update("t", "v0", vecs["v3"])
        client.run()
        assert u.completed
        assert router.stats.replica_writes == 2
        assert router.verify_replicas() > 0
        # the user sees exactly one result for the write
        assert len(router.results) == 1

    def test_internal_copies_bypass_rate_admission(self):
        # a tight rate quota would reject the fan-in copies if they
        # were metered; internal copies must land regardless
        router = make_cluster(2)
        client = ServiceClient(router)
        quota = TenantQuota(rate_per_s=1.0, burst=1)
        client.register_tenant("t", quota, replicas=2)
        vecs = small_vectors()
        client.load_vectors("t", vecs)
        client.update("t", "v0", vecs["v1"], at=0.0)
        client.run()
        assert router.verify_replicas() == len(vecs)

    def test_subscription_lives_on_primary_only(self):
        router = make_cluster(4)
        client = ServiceClient(router)
        client.register_tenant("t", replicas=2)
        vecs = small_vectors()
        client.load_vectors("t", vecs)
        s = client.subscribe("t", "xor", ("v0", "v1"), at=0.0)
        client.update("t", "v0", vecs["v2"], at=1e-3)
        client.run()
        assert s.active
        # snapshot + one triggered refresh, delivered via the router
        assert [n.seq for n in s.notifications] == [0, 1]
        primary, secondary = router.tenant_owners("t")
        assert router.nodes[primary].service.stats.subscriptions == 1
        assert router.nodes[secondary].service.stats.subscriptions == 0


class TestScatterGather:
    def _indexed_cluster(self, n_nodes=4, replicas=2, scatter_fanin=4):
        router = make_cluster(
            n_nodes,
            service=ServiceConfig(keep_bits=True),
            scatter_fanin=scatter_fanin,
        )
        client = ServiceClient(router)
        client.register_tenant("t", replicas=replicas)
        rng = np.random.default_rng(11)
        values = rng.integers(0, 12, 1024)
        client.load_bitmap_index("t", "col", values, 12)
        return router, client, values

    def test_wide_range_scatters_and_popcount_matches(self):
        router, client, values = self._indexed_cluster()
        h = client.range_query("t", "col", 1, 10)
        client.run()
        assert router.stats.scattered == 1
        assert router.stats.gathers == 1
        assert h.popcount == int(np.isin(values, range(1, 11)).sum())
        assert router.verify_results() == 1

    def test_gathered_bits_equal_unsplit_bits(self):
        router, client, values = self._indexed_cluster()
        h = client.range_query("t", "col", 0, 11)
        client.run()
        expected = np.isin(values, range(0, 12)).astype(np.uint8)
        assert np.array_equal(h.result().bits, expected)

    def test_narrow_range_does_not_scatter(self):
        router, client, _ = self._indexed_cluster(scatter_fanin=8)
        client.range_query("t", "col", 2, 4)  # 3 unique bins < 8
        client.run()
        assert router.stats.scattered == 0

    def test_scatter_disabled_by_config(self):
        router, client, _ = self._indexed_cluster(scatter_fanin=0)
        client.range_query("t", "col", 0, 11)
        client.run()
        assert router.stats.scattered == 0

    def test_unreplicated_tenant_never_scatters(self):
        router, client, _ = self._indexed_cluster(replicas=1)
        client.range_query("t", "col", 0, 11)
        client.run()
        assert router.stats.scattered == 0

    def test_part_rejection_rejects_gathered_read(self):
        router = make_cluster(2, scatter_fanin=2)
        client = ServiceClient(router)
        # max_pending=1: the second scatter part arriving at a node that
        # already holds one pending request is rejected
        quota = TenantQuota(max_pending=1, rate_per_s=1.0, burst=1)
        client.register_tenant("t", quota, replicas=2)
        rng = np.random.default_rng(5)
        values = rng.integers(0, 8, 256)
        client.load_bitmap_index("t", "col", values, 8)
        h1 = client.range_query("t", "col", 0, 7, at=0.0)
        h2 = client.range_query("t", "col", 0, 7, at=0.0)
        client.run()
        assert router.stats.scattered == 2
        statuses = [h.result().status for h in (h1, h2)]
        assert RequestStatus.REJECTED in statuses
        rejected = h1 if h1.rejected else h2
        assert "scatter part rejected" in rejected.result().reject_reason


class TestEdgeCases:
    def test_empty_shard_node_stays_idle(self):
        # a node that owns no tenants must finalize cleanly with empty
        # stats and contribute nothing to the cluster makespan
        router = make_cluster(4)
        client = ServiceClient(router)
        client.register_tenant("t")
        client.load_vectors("t", small_vectors())
        client.query("t", "or", ("v0", "v1"))
        stats = client.run()
        (owner,) = router.tenant_owners("t")
        idle = [n for n in router.nodes if n != owner]
        assert idle, "expected at least one empty node"
        for node_id in idle:
            node_stats = router.nodes[node_id].service.stats
            assert node_stats.submitted == 0
            assert node_stats.batches == 0
        assert stats.makespan_s == router.nodes[owner].service.stats.makespan_s

    def test_all_replicas_collapse_onto_single_node(self):
        # replicas cap at the node count: on a 1-node cluster a
        # "3-way replicated" tenant has one owner and no fan-in copies
        router = make_cluster(1)
        client = ServiceClient(router)
        client.register_tenant("t", replicas=3)
        vecs = small_vectors()
        client.load_vectors("t", vecs)
        assert router.tenant_owners("t") == [0]
        u = client.update("t", "v0", vecs["v1"])
        h = client.query("t", "and", ("v0", "v2"), at=1e-3)
        client.run()
        assert u.completed and h.completed
        assert router.stats.replica_writes == 0
        assert router.verify_results() == 1


class TestMembership:
    def _loaded_cluster(self, n_nodes=3, n_tenants=12):
        router = make_cluster(n_nodes)
        client = ServiceClient(router)
        for i in range(n_tenants):
            tenant = f"t{i:02d}"
            client.register_tenant(tenant)
            client.load_vectors(tenant, small_vectors(seed=i))
        return router, client

    def test_join_moves_vectors_and_serves(self):
        router, client = self._loaded_cluster()
        before = {t: router.tenant_owners(t) for t in router.tenants}
        new_id = router.add_node()
        after = {t: router.tenant_owners(t) for t in router.tenants}
        moved = [t for t in before if before[t] != after[t]]
        assert moved, "expected the joiner to take some tenants"
        assert router.stats.moved_vectors > 0
        handles = [
            client.query(t, "xor", ("v0", "v1"), at=float(i) * 1e-3)
            for i, t in enumerate(router.tenants)
        ]
        client.run()
        assert all(h.completed for h in handles)
        assert router.nodes[new_id].service.stats.completed > 0
        assert router.verify_results() == len(handles)

    def test_leave_mid_stream_is_deterministic(self):
        def episode():
            router, client = self._loaded_cluster()
            for i, t in enumerate(router.tenants):
                client.query(t, "and", ("v0", "v1"), at=float(i) * 1e-4)
            client.run()
            router.remove_node(1)
            for i, t in enumerate(router.tenants):
                client.query(t, "or", ("v1", "v2"), at=1.0 + i * 1e-4)
            stats = client.run()
            results = [r.to_dict() for r in router.results]
            return results, stats.to_json()

        first_results, first_stats = episode()
        second_results, second_stats = episode()
        assert first_results == second_results
        assert first_stats == second_stats

    def test_leave_moves_tenants_off_and_serves(self):
        router, client = self._loaded_cluster()
        victims = [t for t in router.tenants if 1 in router.tenant_owners(t)]
        assert victims, "node 1 should own something"
        router.remove_node(1)
        assert 1 not in router.nodes
        for t in router.tenants:
            assert 1 not in router.tenant_owners(t)
        handles = [
            client.query(t, "and", ("v2", "v3"), at=float(i) * 1e-3)
            for i, t in enumerate(router.tenants)
        ]
        client.run()
        assert all(h.completed for h in handles)

    def test_membership_change_requires_drained_loop(self):
        router, client = self._loaded_cluster()
        client.query(router.tenants[0], "and", ("v0", "v1"))
        with pytest.raises(RuntimeError, match="drain the loop"):
            router.add_node()
        with pytest.raises(RuntimeError, match="drain the loop"):
            router.remove_node(1)
        client.run()  # drain; both operations now legal
        router.add_node()
        router.remove_node(1)

    def test_remove_unknown_or_last_node(self):
        router = make_cluster(1)
        with pytest.raises(KeyError):
            router.remove_node(7)
        with pytest.raises(ValueError, match="last node"):
            router.remove_node(0)

    def test_replicated_tenant_survives_primary_leave(self):
        router = make_cluster(3)
        client = ServiceClient(router)
        client.register_tenant("t", replicas=2)
        vecs = small_vectors()
        client.load_vectors("t", vecs)
        u = client.update("t", "v0", vecs["v3"])
        client.run()
        assert u.completed
        primary = router.tenant_owners("t")[0]
        router.remove_node(primary)
        assert primary not in router.tenant_owners("t")
        h = client.query("t", "and", ("v0", "v1"), at=1.0)
        client.run()
        assert h.completed
        assert router.verify_replicas() == len(vecs) * (
            len(router.tenant_owners("t")) - 1
        )
