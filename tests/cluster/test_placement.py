"""Placement strategies: determinism, coverage, minimal movement."""

import pytest

from repro.cluster.placement import (
    HashRing,
    RangeIndexPlacement,
    key_point,
    make_placement,
)

TENANTS = [f"tenant{i:02d}" for i in range(64)]


class TestKeyPoint:
    def test_deterministic_and_in_unit_interval(self):
        for t in TENANTS:
            p = key_point(t)
            assert 0.0 <= p < 1.0
            assert p == key_point(t)

    def test_distinct_keys_distinct_points(self):
        points = {key_point(t) for t in TENANTS}
        assert len(points) == len(TENANTS)


@pytest.mark.parametrize("strategy", ["hash", "range"])
class TestPlacementCommon:
    def test_owners_deterministic(self, strategy):
        a = make_placement(strategy, [0, 1, 2, 3])
        b = make_placement(strategy, [0, 1, 2, 3])
        for t in TENANTS:
            assert a.owners(t, 2) == b.owners(t, 2)

    def test_owners_distinct_and_sized(self, strategy):
        p = make_placement(strategy, [0, 1, 2, 3])
        for t in TENANTS:
            owners = p.owners(t, 3)
            assert len(owners) == 3
            assert len(set(owners)) == 3

    def test_replicas_cap_at_node_count(self, strategy):
        p = make_placement(strategy, [0, 1])
        assert len(p.owners("t", 5)) == 2

    def test_single_node_owns_everything(self, strategy):
        p = make_placement(strategy, [0])
        for t in TENANTS:
            assert p.owners(t, 1) == [0]

    def test_all_nodes_get_some_tenants(self, strategy):
        p = make_placement(strategy, [0, 1, 2, 3])
        primaries = {p.owners(t, 1)[0] for t in TENANTS}
        assert primaries == {0, 1, 2, 3}

    def test_join_then_leave_restores_placement(self, strategy):
        p = make_placement(strategy, [0, 1, 2])
        before = {t: p.owners(t, 2) for t in TENANTS}
        p.add_node(3)
        p.remove_node(3)
        after = {t: p.owners(t, 2) for t in TENANTS}
        assert before == after

    def test_rejects_bad_replica_count(self, strategy):
        p = make_placement(strategy, [0, 1])
        with pytest.raises(ValueError):
            p.owners("t", 0)

    def test_duplicate_node_rejected(self, strategy):
        p = make_placement(strategy, [0, 1])
        with pytest.raises(ValueError):
            p.add_node(1)

    def test_cannot_remove_last_node(self, strategy):
        p = make_placement(strategy, [0])
        with pytest.raises(ValueError):
            p.remove_node(0)


class TestHashRingMovement:
    def test_join_moves_only_a_fraction(self):
        ring = HashRing([0, 1, 2, 3])
        before = {t: ring.owners(t, 1)[0] for t in TENANTS}
        ring.add_node(4)
        after = {t: ring.owners(t, 1)[0] for t in TENANTS}
        moved = sum(1 for t in TENANTS if before[t] != after[t])
        # consistent hashing: ~1/5 of keys move toward the new node,
        # and movement only ever targets the joiner
        assert 0 < moved < len(TENANTS) // 2
        for t in TENANTS:
            if before[t] != after[t]:
                assert after[t] == 4

    def test_leave_moves_only_departed_keys(self):
        ring = HashRing([0, 1, 2, 3])
        before = {t: ring.owners(t, 1)[0] for t in TENANTS}
        ring.remove_node(2)
        after = {t: ring.owners(t, 1)[0] for t in TENANTS}
        for t in TENANTS:
            if before[t] != 2:
                assert after[t] == before[t]
            else:
                assert after[t] != 2


class TestRangeIndex:
    def test_table_covers_unit_interval(self):
        p = RangeIndexPlacement([0, 1, 2])
        table = p.table
        assert table[-1][0] == 1.0
        uppers = [hi for hi, _ in table]
        assert uppers == sorted(uppers)

    def test_join_splits_widest_range(self):
        p = RangeIndexPlacement([0, 1])
        p.add_node(2)
        # both initial ranges are width 0.5; the tie breaks toward the
        # lowest start, so [0, 0.5) splits and node 2 takes [0.25, 0.5)
        assert p.table == [(0.25, 0), (0.5, 2), (1.0, 1)]

    def test_leave_merges_into_predecessor(self):
        p = RangeIndexPlacement([0, 1, 2])
        p.remove_node(1)
        assert p.node_ids == [0, 2]
        assert p.table == [(2 / 3, 0), (1.0, 2)]

    def test_leave_of_final_range_extends_predecessor(self):
        p = RangeIndexPlacement([0, 1])
        p.remove_node(1)  # node 1 held the final range
        assert p.table == [(1.0, 0)]

    def test_leave_of_leading_range_absorbed_by_successor(self):
        p = RangeIndexPlacement([0, 1])
        p.remove_node(0)  # node 0 held the leading range
        assert p.table == [(1.0, 1)]

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown placement"):
            make_placement("nope", [0])
