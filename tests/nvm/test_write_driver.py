"""Tests for the write driver and in-place update path."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nvm.technology import get_technology
from repro.nvm.write_driver import WriteDriver, WriteSource


@pytest.fixture
def pcm():
    return get_technology("pcm")


@pytest.fixture
def wd(pcm):
    return WriteDriver(pcm)


class TestDifferentialWrite:
    def test_no_change_costs_nothing(self, wd):
        row = np.array([0, 1, 0, 1], dtype=np.uint8)
        cost = wd.program(row, row)
        assert cost.latency == 0.0
        assert cost.energy == 0.0
        assert cost.bits_unchanged == 4

    def test_counts_sets_and_resets(self, wd):
        old = np.array([0, 0, 1, 1], dtype=np.uint8)
        new = np.array([1, 0, 0, 1], dtype=np.uint8)
        cost = wd.program(old, new)
        assert cost.bits_set == 1
        assert cost.bits_reset == 1
        assert cost.bits_unchanged == 2

    def test_energy_accounts_asymmetry(self, wd, pcm):
        old = np.zeros(4, dtype=np.uint8)
        new = np.ones(4, dtype=np.uint8)
        cost = wd.program(old, new)
        assert cost.energy == pytest.approx(4 * pcm.cell_set_energy)

    def test_reset_energy(self, wd, pcm):
        old = np.ones(3, dtype=np.uint8)
        new = np.zeros(3, dtype=np.uint8)
        cost = wd.program(old, new)
        assert cost.energy == pytest.approx(3 * pcm.cell_reset_energy)

    def test_latency_is_one_write_time(self, wd, pcm):
        old = np.zeros(128, dtype=np.uint8)
        new = np.ones(128, dtype=np.uint8)
        assert wd.program(old, new).latency == pytest.approx(pcm.write_time)

    def test_shape_mismatch_rejected(self, wd):
        with pytest.raises(ValueError, match="same shape"):
            wd.program(np.zeros(4, np.uint8), np.zeros(5, np.uint8))

    def test_sense_amp_source_same_array_cost(self, wd):
        old = np.zeros(8, dtype=np.uint8)
        new = np.ones(8, dtype=np.uint8)
        bus = wd.program(old, new, WriteSource.DATA_BUS)
        sa = wd.program(old, new, WriteSource.SENSE_AMP)
        assert bus.energy == sa.energy
        assert bus.latency == sa.latency


class TestFullRowBound:
    def test_full_row_pessimistic(self, wd, pcm):
        cost = wd.full_row_cost(4096)
        assert cost.latency == pcm.write_time
        assert cost.bits_set + cost.bits_reset == 4096
        assert cost.energy > 0

    def test_energy_split(self, wd, pcm):
        cost = wd.full_row_cost(2)
        assert cost.energy == pytest.approx(
            pcm.cell_set_energy + pcm.cell_reset_energy
        )


class TestProperties:
    @given(
        old=st.lists(st.integers(0, 1), min_size=1, max_size=64),
        flip=st.lists(st.integers(0, 1), min_size=1, max_size=64),
    )
    @settings(max_examples=60)
    def test_counts_partition_row(self, old, flip):
        size = min(len(old), len(flip))
        old_arr = np.array(old[:size], dtype=np.uint8)
        new_arr = old_arr ^ np.array(flip[:size], dtype=np.uint8)
        wd = WriteDriver(get_technology("pcm"))
        cost = wd.program(old_arr, new_arr)
        assert cost.bits_set + cost.bits_reset + cost.bits_unchanged == size
        assert cost.bits_set + cost.bits_reset == int(np.sum(old_arr != new_arr))
