"""Tests for the NVM technology catalog."""

import math

import pytest

from repro.nvm.technology import (
    NVMTechnology,
    TECHNOLOGIES,
    WriteScheme,
    geometric_mean_resistance,
    get_technology,
    list_technologies,
)


class TestCatalog:
    def test_three_technologies_registered(self):
        assert set(list_technologies()) == {"PCM-1T1R", "ReRAM-1T1R", "STT-1T1R"}

    def test_lookup_by_canonical_name(self):
        assert get_technology("PCM-1T1R").cell_kind == "PCM"

    @pytest.mark.parametrize(
        "alias,kind",
        [("pcm", "PCM"), ("reram", "ReRAM"), ("stt", "STT-MRAM"), ("STT-MRAM", "STT-MRAM")],
    )
    def test_lookup_by_alias(self, alias, kind):
        assert get_technology(alias).cell_kind == kind

    def test_unknown_name_raises_with_known_list(self):
        with pytest.raises(KeyError, match="unknown NVM technology"):
            get_technology("flash")

    def test_registry_values_are_frozen(self):
        tech = TECHNOLOGIES["PCM-1T1R"]
        with pytest.raises(AttributeError):
            tech.r_low = 1.0


class TestPcmPaperAnchors:
    """The paper's PCM case study pins the timing parameters exactly."""

    def test_trcd_tcl_twr_match_paper(self):
        pcm = get_technology("pcm")
        assert pcm.trcd_ns == pytest.approx(18.3)
        assert pcm.tcl_ns == pytest.approx(8.9)
        assert pcm.twr_ns == pytest.approx(151.1)

    def test_pcm_on_off_ratio_is_decade_scale(self):
        pcm = get_technology("pcm")
        assert pcm.on_off_ratio == pytest.approx(1000.0)

    def test_pcm_tcam_row_limit_is_128(self):
        assert get_technology("pcm").tcam_row_limit == 128

    def test_pcm_write_is_unipolar(self):
        assert get_technology("pcm").write.polarity == "unipolar"


class TestSttProperties:
    def test_stt_contrast_is_low(self):
        stt = get_technology("stt")
        assert stt.on_off_ratio < 5

    def test_stt_row_limit_is_2(self):
        assert get_technology("stt").tcam_row_limit == 2

    def test_stt_write_is_bipolar(self):
        assert get_technology("stt").write.polarity == "bipolar"


class TestDerivedQuantities:
    def test_read_currents_ordering(self):
        for tech in TECHNOLOGIES.values():
            assert tech.read_current_low > tech.read_current_high

    def test_read_current_values(self):
        pcm = get_technology("pcm")
        assert pcm.read_current_low == pytest.approx(pcm.read_voltage / pcm.r_low)

    def test_cell_area_scaling(self):
        pcm = get_technology("pcm")
        expected = 24.0 * (65e-9) ** 2
        assert pcm.cell_area_m2 == pytest.approx(expected)

    def test_scaled_returns_modified_copy(self):
        pcm = get_technology("pcm")
        fast = pcm.scaled(sense_time=1e-9)
        assert fast.sense_time == 1e-9
        assert pcm.sense_time == 8.9e-9
        assert fast.r_low == pcm.r_low


class TestValidation:
    def _base_kwargs(self):
        pcm = get_technology("pcm")
        return dict(
            name="X",
            cell_kind="PCM",
            feature_nm=65.0,
            cell_area_f2=24.0,
            r_low=1e4,
            r_high=1e7,
            sigma_log_r_low=0.06,
            sigma_log_r_high=0.25,
            read_voltage=0.4,
            sense_time=8.9e-9,
            activate_time=18.3e-9,
            write_time=151.1e-9,
            cell_read_energy=0.08e-12,
            cell_set_energy=7.5e-12,
            cell_reset_energy=13.5e-12,
            write=pcm.write,
        )

    def test_rhigh_must_exceed_rlow(self):
        kwargs = self._base_kwargs()
        kwargs.update(r_low=1e7, r_high=1e4)
        with pytest.raises(ValueError, match="must exceed"):
            NVMTechnology(**kwargs)

    def test_negative_sigma_rejected(self):
        kwargs = self._base_kwargs()
        kwargs.update(sigma_log_r_low=-0.1)
        with pytest.raises(ValueError, match="sigmas"):
            NVMTechnology(**kwargs)

    def test_nonpositive_resistance_rejected(self):
        kwargs = self._base_kwargs()
        kwargs.update(r_low=0.0)
        with pytest.raises(ValueError, match="positive"):
            NVMTechnology(**kwargs)

    def test_default_write_scheme_synthesised(self):
        kwargs = self._base_kwargs()
        kwargs.pop("write")
        tech = NVMTechnology(**kwargs)
        assert tech.write.polarity == "unipolar"


class TestWriteScheme:
    def test_energy_properties(self):
        ws = WriteScheme("unipolar", 100e-6, 200e-6, 100e-9, 50e-9)
        assert ws.set_energy == pytest.approx(1e-11)
        assert ws.reset_energy == pytest.approx(1e-11)

    def test_bad_polarity_rejected(self):
        with pytest.raises(ValueError, match="polarity"):
            WriteScheme("tripolar", 1e-6, 1e-6, 1e-9, 1e-9)

    def test_nonpositive_current_rejected(self):
        with pytest.raises(ValueError, match="currents"):
            WriteScheme("unipolar", 0.0, 1e-6, 1e-9, 1e-9)

    def test_nonpositive_pulse_rejected(self):
        with pytest.raises(ValueError, match="pulses"):
            WriteScheme("unipolar", 1e-6, 1e-6, 0.0, 1e-9)


class TestGeometricMean:
    def test_midpoint(self):
        assert geometric_mean_resistance(1e3, 1e5) == pytest.approx(1e4)

    def test_symmetric(self):
        assert geometric_mean_resistance(3.0, 7.0) == geometric_mean_resistance(7.0, 3.0)

    def test_log_equidistant(self):
        mid = geometric_mean_resistance(2e3, 8e6)
        assert math.log(mid / 2e3) == pytest.approx(math.log(8e6 / mid))

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean_resistance(0.0, 1.0)
