"""Tests for the 1T1R cell and parallel-connection math."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nvm.cell import (
    ResistiveCell,
    bitline_resistance,
    bits_to_resistances,
    composite_or_case,
    parallel_resistance,
    resistances_to_bits,
)
from repro.nvm.technology import get_technology


@pytest.fixture
def pcm():
    return get_technology("pcm")


class TestParallelResistance:
    def test_two_equal(self):
        assert parallel_resistance(10.0, 10.0) == pytest.approx(5.0)

    def test_product_over_sum(self):
        assert parallel_resistance(3.0, 6.0) == pytest.approx(2.0)

    def test_n_equal(self):
        assert parallel_resistance(*[8.0] * 4) == pytest.approx(2.0)

    def test_single(self):
        assert parallel_resistance(42.0) == 42.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            parallel_resistance()

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            parallel_resistance(1.0, 0.0)

    @given(rs=st.lists(st.floats(min_value=1.0, max_value=1e9), min_size=1, max_size=16))
    @settings(max_examples=60)
    def test_result_below_min(self, rs):
        assert parallel_resistance(*rs) <= min(rs) * (1 + 1e-12)

    @given(
        rs=st.lists(st.floats(min_value=1.0, max_value=1e9), min_size=2, max_size=8),
        extra=st.floats(min_value=1.0, max_value=1e9),
    )
    @settings(max_examples=60)
    def test_adding_branch_reduces(self, rs, extra):
        assert parallel_resistance(*rs, extra) < parallel_resistance(*rs) + 1e-12


class TestCompositeOrCase:
    def test_all_zeros(self, pcm):
        r = composite_or_case(pcm.r_low, pcm.r_high, 4, 0)
        assert r == pytest.approx(pcm.r_high / 4)

    def test_all_ones(self, pcm):
        r = composite_or_case(pcm.r_low, pcm.r_high, 4, 4)
        assert r == pytest.approx(pcm.r_low / 4)

    def test_mixed_matches_parallel(self, pcm):
        r = composite_or_case(pcm.r_low, pcm.r_high, 3, 1)
        expected = parallel_resistance(pcm.r_low, pcm.r_high, pcm.r_high)
        assert r == pytest.approx(expected)

    def test_more_ones_means_lower_resistance(self, pcm):
        rs = [composite_or_case(pcm.r_low, pcm.r_high, 8, k) for k in range(9)]
        assert rs == sorted(rs, reverse=True)

    def test_invalid_counts(self, pcm):
        with pytest.raises(ValueError):
            composite_or_case(pcm.r_low, pcm.r_high, 2, 3)
        with pytest.raises(ValueError):
            composite_or_case(pcm.r_low, pcm.r_high, 0, 0)


class TestBitlineResistance:
    def test_matches_scalar_parallel(self):
        cells = np.array([[2.0, 4.0], [2.0, 12.0]])
        out = bitline_resistance(cells, axis=0)
        np.testing.assert_allclose(out, [1.0, 3.0])

    def test_single_row_identity(self):
        cells = np.array([[5.0, 7.0, 9.0]])
        np.testing.assert_allclose(bitline_resistance(cells), [5.0, 7.0, 9.0])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            bitline_resistance(np.array([[1.0, -1.0]]))


class TestResistiveCell:
    def test_fresh_cell_defaults_to_stored_bit_nominal(self, pcm):
        cell = ResistiveCell(pcm, bit=1)
        assert cell.resistance == pcm.r_low
        assert cell.state == "LRS"

    def test_write_updates_state(self, pcm):
        cell = ResistiveCell(pcm)
        cell.write(1)
        assert cell.bit == 1
        assert cell.resistance == pcm.r_low

    def test_write_with_sampled_resistance(self, pcm):
        cell = ResistiveCell(pcm)
        cell.write(1, resistance=1.23e4)
        assert cell.resistance == 1.23e4

    def test_read_current(self, pcm):
        cell = ResistiveCell(pcm, bit=1)
        assert cell.read_current() == pytest.approx(pcm.read_voltage / pcm.r_low)

    def test_write_energy_no_change_is_zero(self, pcm):
        cell = ResistiveCell(pcm, bit=0)
        assert cell.write_energy(0) == 0.0

    def test_write_energy_set_reset(self, pcm):
        cell = ResistiveCell(pcm, bit=0)
        assert cell.write_energy(1) == pcm.cell_set_energy
        cell.write(1)
        assert cell.write_energy(0) == pcm.cell_reset_energy

    def test_invalid_bit_rejected(self, pcm):
        with pytest.raises(ValueError):
            ResistiveCell(pcm, bit=2)
        cell = ResistiveCell(pcm)
        with pytest.raises(ValueError):
            cell.write(5)


class TestBitResistanceMaps:
    def test_roundtrip(self, pcm):
        bits = np.array([0, 1, 1, 0, 1], dtype=np.uint8)
        r = bits_to_resistances(bits, pcm)
        back = resistances_to_bits(r, pcm)
        np.testing.assert_array_equal(back, bits)

    def test_bits_to_resistances_values(self, pcm):
        r = bits_to_resistances(np.array([0, 1]), pcm)
        np.testing.assert_allclose(r, [pcm.r_high, pcm.r_low])

    @given(bits=st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=64))
    @settings(max_examples=40)
    def test_roundtrip_property(self, bits):
        pcm = get_technology("pcm")
        arr = np.array(bits, dtype=np.uint8)
        np.testing.assert_array_equal(
            resistances_to_bits(bits_to_resistances(arr, pcm), pcm), arr
        )
