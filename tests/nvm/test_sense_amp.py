"""Tests for the modified current sense amplifier."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nvm.cell import bitline_resistance, bits_to_resistances, composite_or_case
from repro.nvm.sense_amp import CurrentSenseAmplifier, ReferenceScheme, SenseMode
from repro.nvm.technology import get_technology


@pytest.fixture
def pcm():
    return get_technology("pcm")


@pytest.fixture
def csa(pcm):
    return CurrentSenseAmplifier(pcm)


def _bitlines(pcm, rows):
    """Nominal parallel bitline resistances for a list of operand bit rows."""
    r = np.stack([bits_to_resistances(np.asarray(b), pcm) for b in rows])
    return bitline_resistance(r, axis=0)


class TestReferenceScheme:
    def test_read_reference_between_states(self, pcm):
        ref = ReferenceScheme(pcm).read_reference()
        assert pcm.r_low < ref < pcm.r_high

    def test_or_reference_between_closest_cases(self, pcm):
        refs = ReferenceScheme(pcm)
        for n in (2, 8, 64, 128):
            r_one = composite_or_case(pcm.r_low, pcm.r_high, n, 1)
            r_zero = composite_or_case(pcm.r_low, pcm.r_high, n, 0)
            assert r_one < refs.or_reference(n) < r_zero

    def test_or_reference_shrinks_with_n(self, pcm):
        refs = ReferenceScheme(pcm)
        values = [refs.or_reference(n) for n in (2, 4, 8, 16)]
        assert values == sorted(values, reverse=True)

    def test_or_reference_requires_two_rows(self, pcm):
        with pytest.raises(ValueError):
            ReferenceScheme(pcm).or_reference(1)

    def test_and_reference_between_cases(self, pcm):
        ref = ReferenceScheme(pcm).and_reference()
        r_11 = composite_or_case(pcm.r_low, pcm.r_high, 2, 2)
        r_10 = composite_or_case(pcm.r_low, pcm.r_high, 2, 1)
        assert r_11 < ref < r_10

    def test_and_reference_only_two_rows(self, pcm):
        with pytest.raises(ValueError, match="only supported for 2"):
            ReferenceScheme(pcm).and_reference(3)

    def test_reference_for_dispatch(self, pcm):
        refs = ReferenceScheme(pcm)
        assert refs.reference_for(SenseMode.READ, 1) == refs.read_reference()
        assert refs.reference_for(SenseMode.OR, 4) == refs.or_reference(4)
        assert refs.reference_for(SenseMode.AND, 2) == refs.and_reference()
        assert refs.reference_for(SenseMode.INV, 1) == refs.read_reference()


class TestReadSensing:
    def test_read_recovers_bits(self, pcm, csa):
        bits = np.array([0, 1, 1, 0, 1, 0], dtype=np.uint8)
        result = csa.sense_read(bits_to_resistances(bits, pcm))
        np.testing.assert_array_equal(result.bits, bits)

    def test_read_is_single_step(self, pcm, csa):
        result = csa.sense_read(bits_to_resistances(np.array([1]), pcm))
        assert result.micro_steps == 1
        assert result.latency == pytest.approx(pcm.sense_time)

    def test_read_energy_scales_with_width(self, pcm, csa):
        narrow = csa.sense_read(bits_to_resistances(np.zeros(8, np.uint8), pcm))
        wide = csa.sense_read(bits_to_resistances(np.zeros(64, np.uint8), pcm))
        assert wide.energy == pytest.approx(8 * narrow.energy)

    def test_nonpositive_resistance_rejected(self, csa):
        with pytest.raises(ValueError):
            csa.sense_read(np.array([0.0]))


class TestOrSensing:
    @pytest.mark.parametrize("n", [2, 4, 16, 128])
    def test_or_matches_oracle(self, pcm, csa, n):
        rng = np.random.default_rng(n)
        rows = [rng.integers(0, 2, size=64).astype(np.uint8) for _ in range(n)]
        result = csa.sense_or(_bitlines(pcm, rows), n)
        oracle = np.bitwise_or.reduce(rows)
        np.testing.assert_array_equal(result.bits, oracle)

    def test_or_worst_case_single_one(self, pcm, csa):
        # one LRS among 127 HRS: must still read "1"
        n = 128
        rows = [np.zeros(4, np.uint8) for _ in range(n)]
        rows[77][2] = 1
        result = csa.sense_or(_bitlines(pcm, rows), n)
        np.testing.assert_array_equal(result.bits, [0, 0, 1, 0])

    def test_or_uses_extra_reference_energy(self, pcm, csa):
        bl = _bitlines(pcm, [np.zeros(8, np.uint8)] * 2)
        read = csa.sense_read(bl)
        orr = csa.sense_or(bl, 2)
        assert orr.energy > read.energy


class TestAndSensing:
    def test_and_matches_oracle(self, pcm, csa):
        a = np.array([0, 0, 1, 1], dtype=np.uint8)
        b = np.array([0, 1, 0, 1], dtype=np.uint8)
        result = csa.sense_and(_bitlines(pcm, [a, b]), 2)
        np.testing.assert_array_equal(result.bits, a & b)

    def test_and_rejects_multirow(self, pcm, csa):
        bl = _bitlines(pcm, [np.zeros(2, np.uint8)] * 3)
        with pytest.raises(ValueError):
            csa.sense_and(bl, 3)


class TestXorInvSensing:
    def test_xor_matches_oracle(self, pcm, csa):
        a = np.array([0, 0, 1, 1], dtype=np.uint8)
        b = np.array([0, 1, 0, 1], dtype=np.uint8)
        result = csa.sense_xor(
            bits_to_resistances(a, pcm), bits_to_resistances(b, pcm)
        )
        np.testing.assert_array_equal(result.bits, a ^ b)

    def test_xor_takes_two_micro_steps(self, pcm, csa):
        a = bits_to_resistances(np.array([1]), pcm)
        result = csa.sense_xor(a, a)
        assert result.micro_steps == 2
        assert result.latency == pytest.approx(2 * pcm.sense_time)

    def test_xor_unavailable_without_circuit(self, pcm):
        csa = CurrentSenseAmplifier(pcm, xor_capable=False)
        a = bits_to_resistances(np.array([1]), pcm)
        with pytest.raises(RuntimeError, match="XOR"):
            csa.sense_xor(a, a)

    def test_inv_matches_oracle(self, pcm, csa):
        bits = np.array([0, 1, 1, 0], dtype=np.uint8)
        result = csa.sense_inv(bits_to_resistances(bits, pcm))
        np.testing.assert_array_equal(result.bits, 1 - bits)


class TestMargins:
    def test_log_margin_decreases_with_n(self, csa):
        margins = [csa.log_margin_or(n) for n in (2, 8, 32, 128)]
        assert margins == sorted(margins, reverse=True)
        assert all(m > 0 for m in margins)


class TestPropertyBased:
    @given(
        data=st.lists(
            st.lists(st.integers(0, 1), min_size=8, max_size=8),
            min_size=2,
            max_size=16,
        )
    )
    @settings(max_examples=60)
    def test_or_property(self, data):
        pcm = get_technology("pcm")
        csa = CurrentSenseAmplifier(pcm)
        rows = [np.array(r, dtype=np.uint8) for r in data]
        result = csa.sense_or(_bitlines(pcm, rows), len(rows))
        np.testing.assert_array_equal(result.bits, np.bitwise_or.reduce(rows))

    @given(
        a=st.lists(st.integers(0, 1), min_size=4, max_size=32),
        b=st.lists(st.integers(0, 1), min_size=4, max_size=32),
    )
    @settings(max_examples=60)
    def test_and_xor_property(self, a, b):
        size = min(len(a), len(b))
        arr_a = np.array(a[:size], dtype=np.uint8)
        arr_b = np.array(b[:size], dtype=np.uint8)
        pcm = get_technology("pcm")
        csa = CurrentSenseAmplifier(pcm)
        and_res = csa.sense_and(_bitlines(pcm, [arr_a, arr_b]), 2)
        xor_res = csa.sense_xor(
            bits_to_resistances(arr_a, pcm), bits_to_resistances(arr_b, pcm)
        )
        np.testing.assert_array_equal(and_res.bits, arr_a & arr_b)
        np.testing.assert_array_equal(xor_res.bits, arr_a ^ arr_b)
