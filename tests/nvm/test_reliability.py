"""Tests for the sensing bit-error-rate analysis."""

import numpy as np
import pytest

from repro.nvm.margin import MarginAnalysis
from repro.nvm.reliability import BerPoint, SensingReliability
from repro.nvm.technology import get_technology
from repro.nvm.variation import VariationModel


@pytest.fixture(scope="module")
def pcm():
    return get_technology("pcm")


@pytest.fixture(scope="module")
def rel(pcm):
    return SensingReliability(pcm)


class TestMonteCarloOr:
    def test_negligible_within_supported_fanin(self, rel):
        for n in (2, 32, 128):
            point = rel.monte_carlo_or(n, samples=20_000)
            assert point.worst < 1e-3, n

    def test_negligible_at_electrical_limit(self, rel, pcm):
        limit = MarginAnalysis(pcm).electrical_or_limit()
        assert rel.monte_carlo_or(limit, samples=10_000).worst < 1e-3

    def test_cliff_beyond_electrical_limit(self, rel, pcm):
        limit = MarginAnalysis(pcm).electrical_or_limit()
        far_beyond = rel.monte_carlo_or(8 * limit, samples=10_000)
        assert far_beyond.worst > 1e-2

    def test_ber_grows_with_fanin(self, rel):
        points = rel.ber_curve((128, 2048, 4096), samples=10_000)
        worsts = [p.worst for p in points]
        assert worsts[0] <= worsts[1] <= worsts[2]
        assert worsts[2] > worsts[0]

    def test_read_is_reliable(self, rel):
        point = rel.monte_carlo_read(samples=20_000)
        assert point.worst < 1e-4

    def test_reproducible_with_seeded_rng(self, rel):
        a = rel.monte_carlo_or(64, samples=5_000, rng=np.random.default_rng(3))
        b = rel.monte_carlo_or(64, samples=5_000, rng=np.random.default_rng(3))
        assert a == b

    def test_validation(self, rel):
        with pytest.raises(ValueError):
            rel.monte_carlo_or(1)
        with pytest.raises(ValueError):
            rel.monte_carlo_or(4, samples=0)


class TestVariationSensitivity:
    def test_more_spread_more_errors(self, pcm):
        tight = SensingReliability(pcm, VariationModel(0.02, 0.05))
        loose = SensingReliability(pcm, VariationModel(0.30, 0.60))
        n = 512
        p_tight = tight.monte_carlo_or(n, samples=15_000).worst
        p_loose = loose.monte_carlo_or(n, samples=15_000).worst
        assert p_loose > p_tight

    def test_systematic_fraction_is_the_multirow_killer(self, pcm):
        """With iid-only variation, conductance sums concentrate and wide
        ORs would never fail; the systematic component creates the cliff."""
        iid_only = SensingReliability(pcm, systematic_fraction=0.0)
        realistic = SensingReliability(pcm, systematic_fraction=0.3)
        n = 4096
        assert iid_only.monte_carlo_or(n, samples=10_000).worst < 1e-3
        assert realistic.monte_carlo_or(n, samples=10_000).worst > 1e-2

    def test_stt_multirow_is_risky(self):
        """The analytical tail shows why STT stops at 2 rows: the error
        floor climbs ~8 orders of magnitude from n=2 to n=8."""
        stt = get_technology("stt")
        rel = SensingReliability(stt)
        two = rel.analytical_or(2)
        eight = rel.analytical_or(8)
        assert eight.worst > two.worst
        assert eight.worst > 1e-8
        assert rel.monte_carlo_or(2, samples=20_000).worst < 1e-3


class TestAnalyticalApproximation:
    @pytest.mark.parametrize("n", [2, 64, 1024])
    def test_fw_matches_monte_carlo_regime(self, rel, n):
        """Fenton-Wilkinson and MC must agree on negligible-vs-severe."""
        mc = rel.monte_carlo_or(n, samples=30_000)
        fw = rel.analytical_or(n)
        for mc_p, fw_p in ((mc.p_miss, fw.p_miss), (mc.p_false, fw.p_false)):
            if mc_p < 1e-4:
                assert fw_p < 1e-2
            else:
                assert fw_p == pytest.approx(mc_p, rel=1.0, abs=0.02)

    def test_fw_monotone_in_fanin(self, rel):
        worsts = [rel.analytical_or(n).worst for n in (128, 512, 2048)]
        assert worsts == sorted(worsts)

    def test_fw_validation(self, rel):
        with pytest.raises(ValueError):
            rel.analytical_or(1)


class TestBerPoint:
    def test_worst(self):
        assert BerPoint(2, 0.1, 0.2).worst == 0.2
