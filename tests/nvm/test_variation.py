"""Tests for the lognormal variation model."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nvm.technology import get_technology
from repro.nvm.variation import DEFAULT_CORNER_SIGMAS, VariationModel


@pytest.fixture
def pcm():
    return get_technology("pcm")


@pytest.fixture
def model(pcm):
    return VariationModel.for_technology(pcm)


class TestCorners:
    def test_corners_bracket_nominal(self, model):
        lo, hi = model.corner_interval(1e4, "low")
        assert lo < 1e4 < hi

    def test_corner_symmetry_in_log_domain(self, model):
        lo, hi = model.corner_interval(1e4, "low")
        assert math.log(1e4 / lo) == pytest.approx(math.log(hi / 1e4))

    def test_corner_magnitude(self, pcm):
        model = VariationModel(0.1, 0.2, corner_sigmas=3.0)
        assert model.upper_corner(100.0, "low") == pytest.approx(100.0 * math.exp(0.3))
        assert model.lower_corner(100.0, "high") == pytest.approx(100.0 * math.exp(-0.6))

    def test_state_selects_sigma(self, model, pcm):
        # HRS sigma is larger for PCM, so its corners are wider.
        lo_l, hi_l = model.corner_interval(1.0, "low")
        lo_h, hi_h = model.corner_interval(1.0, "high")
        assert hi_h > hi_l
        assert lo_h < lo_l

    def test_bad_state_rejected(self, model):
        with pytest.raises(ValueError, match="state"):
            model.lower_corner(1.0, "mid")


class TestConstruction:
    def test_for_technology_copies_sigmas(self, pcm):
        model = VariationModel.for_technology(pcm)
        assert model.sigma_low == pcm.sigma_log_r_low
        assert model.sigma_high == pcm.sigma_log_r_high
        assert model.corner_sigmas == DEFAULT_CORNER_SIGMAS

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            VariationModel(-0.1, 0.1)

    def test_nonpositive_corner_rejected(self):
        with pytest.raises(ValueError):
            VariationModel(0.1, 0.1, corner_sigmas=0.0)


class TestSampling:
    def test_sample_state_shape(self, model):
        rng = np.random.default_rng(7)
        samples = model.sample_state(1e4, "low", rng, size=1000)
        assert samples.shape == (1000,)
        assert np.all(samples > 0)

    def test_sample_state_log_mean(self, model):
        rng = np.random.default_rng(7)
        samples = model.sample_state(1e4, "low", rng, size=200_000)
        assert np.mean(np.log(samples)) == pytest.approx(math.log(1e4), abs=0.005)

    def test_sample_state_log_std(self, model):
        rng = np.random.default_rng(7)
        samples = model.sample_state(1e4, "high", rng, size=200_000)
        assert np.std(np.log(samples)) == pytest.approx(model.sigma_high, rel=0.02)

    def test_zero_sigma_is_deterministic(self):
        model = VariationModel(0.0, 0.0)
        rng = np.random.default_rng(7)
        samples = model.sample_state(5e3, "low", rng, size=10)
        assert np.all(samples == 5e3)

    def test_sample_bits_uses_state_nominals(self, pcm):
        model = VariationModel(0.0, 0.0)
        rng = np.random.default_rng(7)
        bits = np.array([0, 1, 0, 1], dtype=np.uint8)
        r = model.sample_bits(bits, pcm, rng)
        np.testing.assert_allclose(r, [pcm.r_high, pcm.r_low, pcm.r_high, pcm.r_low])

    def test_sample_bits_spread_matches_state(self, pcm, model):
        rng = np.random.default_rng(7)
        bits = np.concatenate([np.zeros(100_000, np.uint8), np.ones(100_000, np.uint8)])
        r = model.sample_bits(bits, pcm, rng)
        std_high = np.std(np.log(r[:100_000]))
        std_low = np.std(np.log(r[100_000:]))
        assert std_high == pytest.approx(pcm.sigma_log_r_high, rel=0.05)
        assert std_low == pytest.approx(pcm.sigma_log_r_low, rel=0.05)

    def test_nonpositive_nominal_rejected(self, model):
        rng = np.random.default_rng(7)
        with pytest.raises(ValueError):
            model.sample_state(-1.0, "low", rng)


class TestDisjointness:
    def test_disjoint_intervals(self):
        assert VariationModel.intervals_disjoint((1, 2), (3, 4))
        assert VariationModel.intervals_disjoint((3, 4), (1, 2))

    def test_overlapping_intervals(self):
        assert not VariationModel.intervals_disjoint((1, 3), (2, 4))
        assert not VariationModel.intervals_disjoint((1, 10), (2, 3))


class TestProperties:
    @given(
        nominal=st.floats(min_value=1e2, max_value=1e8),
        sigma=st.floats(min_value=0.0, max_value=1.0),
        k=st.floats(min_value=0.5, max_value=6.0),
    )
    @settings(max_examples=60)
    def test_corners_always_bracket(self, nominal, sigma, k):
        model = VariationModel(sigma, sigma, corner_sigmas=k)
        lo, hi = model.corner_interval(nominal, "low")
        assert lo <= nominal <= hi
        assert lo > 0

    @given(
        sigma=st.floats(min_value=0.01, max_value=0.5),
        k1=st.floats(min_value=1.0, max_value=3.0),
        k2=st.floats(min_value=3.5, max_value=6.0),
    )
    @settings(max_examples=40)
    def test_wider_corner_widens_interval(self, sigma, k1, k2):
        narrow = VariationModel(sigma, sigma, corner_sigmas=k1)
        wide = VariationModel(sigma, sigma, corner_sigmas=k2)
        assert wide.upper_corner(1e4, "low") > narrow.upper_corner(1e4, "low")
        assert wide.lower_corner(1e4, "low") < narrow.lower_corner(1e4, "low")
