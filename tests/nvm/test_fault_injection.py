"""Failure-injection tests: stuck cells through the sensing modes."""

import numpy as np
import pytest

from repro.nvm.array import ResistiveMat
from repro.nvm.sense_amp import SenseMode
from repro.nvm.technology import get_technology


@pytest.fixture
def mat():
    return ResistiveMat(get_technology("pcm"), n_rows=16, n_cols=64, mux_ratio=8)


def _write(mat, row, bits):
    mat.write_row(row, np.array(bits + [0] * (mat.n_cols - len(bits)), np.uint8))


class TestStuckCellBehaviour:
    def test_stuck_at_one_defeats_reset(self, mat):
        mat.inject_stuck_fault(0, 2, stuck_bit=1)
        _write(mat, 0, [0, 0, 0, 0])
        got = mat.read_row(0).bits
        assert got[2] == 1  # the cell cannot store a 0 any more
        assert got[0] == 0

    def test_stuck_at_zero_defeats_set(self, mat):
        mat.inject_stuck_fault(0, 1, stuck_bit=0)
        _write(mat, 0, [1, 1, 1, 1])
        got = mat.read_row(0).bits
        assert got[1] == 0
        assert got[0] == 1

    def test_write_verify_detects_fault(self, mat):
        """The standard NVM defence: read back after program."""
        mat.inject_stuck_fault(0, 3, stuck_bit=1)
        data = np.zeros(mat.n_cols, np.uint8)
        mat.write_row(0, data)
        readback = mat.read_row(0).bits
        mismatches = np.nonzero(readback != data)[0]
        assert mismatches.tolist() == [3]

    def test_fault_survives_many_writes(self, mat):
        mat.inject_stuck_fault(0, 0, stuck_bit=1)
        for _ in range(5):
            _write(mat, 0, [0, 1, 0, 1])
            assert mat.read_row(0).bits[0] == 1

    def test_clear_faults(self, mat):
        mat.inject_stuck_fault(0, 0, stuck_bit=1)
        assert mat.fault_count == 1
        mat.clear_faults()
        _write(mat, 0, [0])
        assert mat.read_row(0).bits[0] == 0
        assert mat.fault_count == 0

    def test_validation(self, mat):
        with pytest.raises(IndexError):
            mat.inject_stuck_fault(0, 999, 1)
        with pytest.raises(IndexError):
            mat.inject_stuck_fault(99, 0, 1)
        with pytest.raises(ValueError):
            mat.inject_stuck_fault(0, 0, 2)


class TestFaultPropagationThroughOps:
    def test_stuck_one_poisons_or(self, mat):
        """A stuck-at-1 cell makes every OR involving its row read 1 in
        that column -- silent data corruption OR cannot mask."""
        mat.inject_stuck_fault(0, 5, stuck_bit=1)
        _write(mat, 0, [0] * 8)
        _write(mat, 1, [0] * 8)
        result = mat.bitwise(SenseMode.OR, [0, 1])
        assert result.bits[5] == 1

    def test_stuck_zero_hides_in_or_of_ones(self, mat):
        """OR is fault-tolerant to stuck-at-0 when another operand has a
        1 in that column -- the parallel path carries the current."""
        mat.inject_stuck_fault(0, 5, stuck_bit=0)
        _write(mat, 0, [1] * 8)
        _write(mat, 1, [1] * 8)
        result = mat.bitwise(SenseMode.OR, [0, 1])
        assert result.bits[5] == 1  # masked by row 1's healthy cell

    def test_stuck_zero_breaks_and(self, mat):
        mat.inject_stuck_fault(0, 2, stuck_bit=0)
        _write(mat, 0, [1] * 8)
        _write(mat, 1, [1] * 8)
        result = mat.bitwise(SenseMode.AND, [0, 1])
        assert result.bits[2] == 0  # AND exposes the stuck-at-0

    def test_xor_flips_on_either_fault(self, mat):
        mat.inject_stuck_fault(0, 4, stuck_bit=1)
        _write(mat, 0, [0] * 8)
        _write(mat, 1, [0] * 8)
        result = mat.bitwise(SenseMode.XOR, [0, 1])
        assert result.bits[4] == 1

    def test_healthy_columns_unaffected(self, mat):
        rng = np.random.default_rng(5)
        mat.inject_stuck_fault(0, 7, stuck_bit=1)
        a = rng.integers(0, 2, mat.n_cols).astype(np.uint8)
        b = rng.integers(0, 2, mat.n_cols).astype(np.uint8)
        mat.write_row(0, a)
        mat.write_row(1, b)
        result = mat.bitwise(SenseMode.OR, [0, 1])
        expected = a | b
        expected[7] = 1
        np.testing.assert_array_equal(result.bits, expected)
