"""Tests for the functional resistive mat."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nvm.array import ResistiveMat, oracle_bitwise
from repro.nvm.sense_amp import SenseMode
from repro.nvm.technology import get_technology
from repro.nvm.variation import VariationModel


@pytest.fixture
def pcm():
    return get_technology("pcm")


@pytest.fixture
def mat(pcm):
    return ResistiveMat(pcm, n_rows=64, n_cols=128, mux_ratio=8)


def _random_rows(mat, n, seed=0):
    rng = np.random.default_rng(seed)
    rows = []
    for i in range(n):
        bits = rng.integers(0, 2, size=mat.n_cols).astype(np.uint8)
        mat.write_row(i, bits)
        rows.append(bits)
    return rows


class TestGeometry:
    def test_sas_per_mat(self, mat):
        assert mat.sas_per_mat == 16

    def test_mux_must_divide_columns(self, pcm):
        with pytest.raises(ValueError, match="divide"):
            ResistiveMat(pcm, n_rows=4, n_cols=100, mux_ratio=32)

    def test_bad_geometry_rejected(self, pcm):
        with pytest.raises(ValueError):
            ResistiveMat(pcm, n_rows=0, n_cols=128)

    def test_variation_requires_rng(self, pcm):
        with pytest.raises(ValueError, match="rng"):
            ResistiveMat(pcm, variation=VariationModel.for_technology(pcm))

    def test_limits_from_margin(self, mat):
        # The reported limit is the technology sensing limit (PCM: 128),
        # independent of how many rows this particular mat happens to have.
        assert mat.max_or_rows == 128
        assert mat.max_and_rows == 2


class TestReadWrite:
    def test_fresh_mat_reads_zero(self, mat):
        result = mat.read_row(0)
        np.testing.assert_array_equal(result.bits, np.zeros(mat.n_cols, np.uint8))

    def test_write_then_read_roundtrip(self, mat):
        rng = np.random.default_rng(1)
        bits = rng.integers(0, 2, size=mat.n_cols).astype(np.uint8)
        mat.write_row(3, bits)
        np.testing.assert_array_equal(mat.read_row(3).bits, bits)

    def test_stored_bits_oracle(self, mat):
        bits = np.ones(mat.n_cols, dtype=np.uint8)
        mat.write_row(5, bits)
        np.testing.assert_array_equal(mat.stored_bits(5), bits)

    def test_write_wrong_shape_rejected(self, mat):
        with pytest.raises(ValueError, match="shape"):
            mat.write_row(0, np.zeros(7, np.uint8))

    def test_row_bounds_checked(self, mat):
        with pytest.raises(IndexError):
            mat.read_row(64)
        with pytest.raises(IndexError):
            mat.write_row(-1, np.zeros(mat.n_cols, np.uint8))

    def test_read_latency_includes_mux_serialisation(self, mat, pcm):
        result = mat.read_row(0)
        assert result.sense_steps == mat.mux_ratio
        assert result.latency >= mat.mux_ratio * pcm.sense_time


class TestBitwiseOps:
    @pytest.mark.parametrize("mode,n", [
        (SenseMode.OR, 2),
        (SenseMode.OR, 8),
        (SenseMode.OR, 32),
        (SenseMode.AND, 2),
        (SenseMode.XOR, 2),
        (SenseMode.INV, 1),
    ])
    def test_matches_oracle(self, mat, mode, n):
        rows = _random_rows(mat, n, seed=n)
        result = mat.bitwise(mode, range(n))
        np.testing.assert_array_equal(result.bits, oracle_bitwise(mode, rows))

    def test_or_operand_count_enforced(self, mat):
        _random_rows(mat, 2)
        with pytest.raises(ValueError):
            mat.bitwise(SenseMode.OR, [0])

    def test_duplicate_operands_rejected(self, mat):
        _random_rows(mat, 2)
        with pytest.raises(ValueError, match="distinct"):
            mat.bitwise(SenseMode.OR, [0, 0])

    def test_xor_needs_exactly_two(self, mat):
        _random_rows(mat, 3)
        with pytest.raises(ValueError):
            mat.bitwise(SenseMode.XOR, [0, 1, 2])

    def test_xor_costs_two_passes(self, mat):
        _random_rows(mat, 2)
        xor = mat.bitwise(SenseMode.XOR, [0, 1])
        orr = mat.bitwise(SenseMode.OR, [0, 1])
        assert xor.sense_steps == 2 * orr.sense_steps
        assert xor.latency > orr.latency

    def test_multirow_or_latency_sublinear(self, mat):
        """One-step multi-row OR: 32 operands cost far less than 31 2-row ops."""
        _random_rows(mat, 32)
        one_step = mat.bitwise(SenseMode.OR, range(32))
        two_row = mat.bitwise(SenseMode.OR, [0, 1])
        assert one_step.latency < 31 * two_row.latency / 4


class TestWriteBack:
    def test_in_place_update(self, mat):
        rows = _random_rows(mat, 2)
        result = mat.bitwise(SenseMode.OR, [0, 1])
        mat.write_back(result, dest_row=10)
        np.testing.assert_array_equal(mat.stored_bits(10), rows[0] | rows[1])

    def test_write_back_cost_accumulates(self, mat):
        _random_rows(mat, 2)
        sensed = mat.bitwise(SenseMode.OR, [0, 1])
        total = mat.write_back(sensed, dest_row=10)
        assert total.latency > sensed.latency
        assert total.energy > sensed.energy


class TestWithVariation:
    """Ops must stay correct with realistic lognormal cell variation."""

    @pytest.mark.parametrize("mode,n", [
        (SenseMode.OR, 2),
        (SenseMode.OR, 64),
        (SenseMode.AND, 2),
        (SenseMode.XOR, 2),
    ])
    def test_ops_correct_under_variation(self, pcm, mode, n):
        rng = np.random.default_rng(42)
        mat = ResistiveMat(
            pcm, n_rows=80, n_cols=256, mux_ratio=8,
            variation=VariationModel.for_technology(pcm), rng=rng,
        )
        rows = _random_rows(mat, n, seed=7)
        result = mat.bitwise(mode, range(n))
        np.testing.assert_array_equal(result.bits, oracle_bitwise(mode, rows))

    def test_read_correct_under_variation(self, pcm):
        rng = np.random.default_rng(3)
        mat = ResistiveMat(
            pcm, n_rows=16, n_cols=512, mux_ratio=8,
            variation=VariationModel.for_technology(pcm), rng=rng,
        )
        bits = rng.integers(0, 2, size=512).astype(np.uint8)
        mat.write_row(0, bits)
        np.testing.assert_array_equal(mat.read_row(0).bits, bits)


class TestPropertyBased:
    @given(
        seed=st.integers(0, 2**16),
        n=st.integers(min_value=2, max_value=16),
        mode=st.sampled_from([SenseMode.OR, SenseMode.AND, SenseMode.XOR]),
    )
    @settings(max_examples=30, deadline=None)
    def test_any_operands_match_oracle(self, seed, n, mode):
        if mode in (SenseMode.AND, SenseMode.XOR):
            n = 2
        pcm = get_technology("pcm")
        mat = ResistiveMat(pcm, n_rows=20, n_cols=64, mux_ratio=8)
        rows = _random_rows(mat, n, seed=seed)
        result = mat.bitwise(mode, range(n))
        np.testing.assert_array_equal(result.bits, oracle_bitwise(mode, rows))
