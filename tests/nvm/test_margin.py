"""Tests for the sensing-margin analysis (paper Section 4.2 limits)."""

import pytest

from repro.nvm.margin import MarginAnalysis, max_multirow_or
from repro.nvm.technology import get_technology
from repro.nvm.variation import VariationModel


@pytest.fixture
def pcm():
    return get_technology("pcm")


@pytest.fixture
def analysis(pcm):
    return MarginAnalysis(pcm)


class TestPaperLimits:
    """E10: the paper's multi-row operation limits per technology."""

    def test_pcm_supports_128_row_or(self):
        assert max_multirow_or(get_technology("pcm")) == 128

    def test_stt_limited_to_2_rows(self):
        assert max_multirow_or(get_technology("stt")) == 2

    def test_reram_supports_multirow(self):
        n = max_multirow_or(get_technology("reram"))
        assert 2 < n <= 128

    def test_pcm_limit_is_tcam_capped_not_electrical(self, analysis, pcm):
        # The electrical margin allows more than 128; the paper's cap is
        # the published TCAM sensing demonstration.
        assert analysis.electrical_or_limit() > 128
        assert analysis.max_or_rows() == pcm.tcam_row_limit

    def test_stt_limit_is_conservative_cap(self):
        stt = get_technology("stt")
        analysis = MarginAnalysis(stt)
        assert analysis.electrical_or_limit() >= 2
        assert analysis.max_or_rows() == 2


class TestFeasibility:
    def test_read_always_feasible(self):
        for name in ("pcm", "reram", "stt"):
            assert MarginAnalysis(get_technology(name)).read_feasible()

    def test_and_feasible_for_all_technologies(self):
        for name in ("pcm", "reram", "stt"):
            assert MarginAnalysis(get_technology(name)).and_feasible(2)

    def test_multirow_and_never_feasible(self, analysis):
        assert not analysis.and_feasible(3)
        assert not analysis.and_feasible(128)

    def test_or_feasibility_is_monotone(self, analysis):
        limit = analysis.electrical_or_limit()
        assert analysis.or_feasible(limit)
        assert not analysis.or_feasible(limit + 1)

    def test_or_margin_positive_within_limit(self, analysis):
        for n in (2, 16, 128):
            assert analysis.or_margin_log(n) > 0

    def test_or_margin_shrinks_with_n(self, analysis):
        margins = [analysis.or_margin_log(n) for n in (2, 8, 32, 128)]
        assert margins == sorted(margins, reverse=True)


class TestVariationSensitivity:
    def test_huge_variation_kills_multirow(self, pcm):
        noisy = VariationModel(0.6, 0.6)
        analysis = MarginAnalysis(pcm, noisy)
        assert analysis.electrical_or_limit() < 128

    def test_zero_variation_maximises_margin(self, pcm):
        perfect = VariationModel(0.0, 0.0)
        loose = VariationModel.for_technology(pcm)
        assert (
            MarginAnalysis(pcm, perfect).electrical_or_limit()
            >= MarginAnalysis(pcm, loose).electrical_or_limit()
        )

    def test_tighter_corners_allow_more_rows(self, pcm):
        tight = MarginAnalysis(pcm, VariationModel.for_technology(pcm, corner_sigmas=2))
        loose = MarginAnalysis(pcm, VariationModel.for_technology(pcm, corner_sigmas=6))
        assert tight.electrical_or_limit() >= loose.electrical_or_limit()


class TestCompositeCases:
    def test_case_corners_bracket_nominal(self, analysis):
        case = analysis.or_case(4, 1)
        assert case.lower < case.nominal < case.upper

    def test_all_zero_case_nominal(self, analysis, pcm):
        case = analysis.or_case(8, 0)
        assert case.nominal == pytest.approx(pcm.r_high / 8)

    def test_invalid_case_rejected(self, analysis):
        with pytest.raises(ValueError):
            analysis.or_case(2, 3)
        with pytest.raises(ValueError):
            analysis.or_case(0, 0)


class TestFigure5Data:
    """E1: the reference-placement picture of paper Fig. 5."""

    def test_read_reference_separates_read_cases(self, analysis):
        data = analysis.figure5_cases(2)
        one, zero = data["read_cases"]
        assert one.upper < data["ref_read"] < zero.lower

    def test_or_reference_separates_or_cases(self, analysis):
        data = analysis.figure5_cases(2)
        cases = {c.label: c for c in data["or_cases"]}
        weakest_one = cases["1x1+1x0"]
        strongest_zero = cases["0x1+2x0"]
        assert weakest_one.upper < data["ref_or"] < strongest_zero.lower

    def test_or_cases_ordered_by_resistance(self, analysis):
        data = analysis.figure5_cases(4)
        nominals = [c.nominal for c in data["or_cases"]]
        assert nominals == sorted(nominals)
