"""Tests for technology dict/JSON round-tripping."""

import json

import pytest

from repro.nvm.margin import max_multirow_or
from repro.nvm.technology import NVMTechnology, get_technology


class TestSerialization:
    @pytest.mark.parametrize("name", ["pcm", "reram", "stt"])
    def test_roundtrip(self, name):
        tech = get_technology(name)
        rebuilt = NVMTechnology.from_dict(tech.to_dict())
        assert rebuilt == tech

    def test_json_roundtrip(self):
        tech = get_technology("pcm")
        payload = json.dumps(tech.to_dict())
        rebuilt = NVMTechnology.from_dict(json.loads(payload))
        assert rebuilt == tech

    def test_rebuilt_technology_behaves(self):
        rebuilt = NVMTechnology.from_dict(get_technology("pcm").to_dict())
        assert max_multirow_or(rebuilt) == 128

    def test_custom_technology_from_config(self):
        data = get_technology("pcm").to_dict()
        data["name"] = "MyPCM"
        data["r_high"] = data["r_low"] * 50  # weaker contrast
        tech = NVMTechnology.from_dict(data)
        assert tech.name == "MyPCM"
        assert 2 <= max_multirow_or(tech) < 128

    def test_unknown_field_rejected(self):
        data = get_technology("pcm").to_dict()
        data["volatage"] = 1.2  # typo
        with pytest.raises(ValueError, match="unknown technology fields"):
            NVMTechnology.from_dict(data)

    def test_unknown_write_field_rejected(self):
        data = get_technology("pcm").to_dict()
        data["write"]["pulse_shape"] = "triangular"
        with pytest.raises(ValueError, match="write-scheme"):
            NVMTechnology.from_dict(data)

    def test_invalid_values_still_validated(self):
        data = get_technology("pcm").to_dict()
        data["r_low"], data["r_high"] = data["r_high"], data["r_low"]
        with pytest.raises(ValueError, match="must exceed"):
            NVMTechnology.from_dict(data)
