"""Tests for the multi-row activation wordline driver."""

import pytest

from repro.nvm.wordline import LocalWordlineDriver, WordlineError


@pytest.fixture
def driver():
    return LocalWordlineDriver(n_rows=512, max_open_rows=128)


class TestProtocol:
    def test_fresh_driver_has_no_open_rows(self, driver):
        assert driver.open_rows == ()
        assert driver.n_open == 0

    def test_single_activation(self, driver):
        driver.reset()
        driver.activate(7)
        assert driver.open_rows == (7,)

    def test_multi_activation_latches_all(self, driver):
        driver.reset()
        for row in (3, 99, 42):
            driver.activate(row)
        assert driver.open_rows == (3, 42, 99)

    def test_reset_clears_latches(self, driver):
        driver.activate_many([1, 2, 3])
        driver.reset()
        assert driver.open_rows == ()

    def test_precharge_closes_and_requires_reset(self, driver):
        driver.activate_many([5])
        driver.precharge()
        assert driver.open_rows == ()
        with pytest.raises(WordlineError, match="RESET"):
            driver.activate(6)

    def test_double_latch_rejected(self, driver):
        driver.reset()
        driver.activate(9)
        with pytest.raises(WordlineError, match="already latched"):
            driver.activate(9)

    def test_out_of_range_rejected(self, driver):
        driver.reset()
        with pytest.raises(WordlineError, match="out of range"):
            driver.activate(512)
        with pytest.raises(WordlineError, match="out of range"):
            driver.activate(-1)

    def test_open_row_limit_enforced(self):
        driver = LocalWordlineDriver(n_rows=16, max_open_rows=2)
        driver.reset()
        driver.activate(0)
        driver.activate(1)
        with pytest.raises(WordlineError, match="sensing limit"):
            driver.activate(2)


class TestCosts:
    def test_first_activation_pays_trcd(self, driver):
        driver.reset()
        cost = driver.activate(0)
        assert cost.latency == pytest.approx(driver.activate_time)

    def test_subsequent_activations_pay_issue_time(self, driver):
        driver.reset()
        driver.activate(0)
        cost = driver.activate(1)
        assert cost.latency == pytest.approx(driver.address_issue_time)

    def test_activate_many_total(self, driver):
        cost = driver.activate_many(range(8))
        expected = (
            driver.address_issue_time  # RESET
            + driver.activate_time  # first row
            + 7 * driver.address_issue_time  # remaining rows
        )
        assert cost.latency == pytest.approx(expected)
        assert cost.energy == pytest.approx(9 * driver.wl_energy)

    def test_precharge_energy_scales_with_open_rows(self, driver):
        driver.activate_many(range(4))
        cost = driver.precharge()
        assert cost.energy == pytest.approx(4 * driver.wl_energy)


class TestValidation:
    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            LocalWordlineDriver(n_rows=0)
        with pytest.raises(ValueError):
            LocalWordlineDriver(n_rows=8, max_open_rows=0)
