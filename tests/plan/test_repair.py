"""Tests for delta repair of cached sub-results (incremental maintenance).

The write path's delta listener hands the planner per-frame ``old XOR
new`` bitmaps; :class:`repro.plan.repair.RepairEngine` fixes cached
entries in place instead of dropping them.  These tests pin the repair
algebra (XOR/NOT linear, AND/OR delta-masked recompute), the cache/LRU
interaction under repair, the ProgramCache's geometry-staleness guard,
and the interpreted/compiled pricing parity of the repair path.
"""

import numpy as np
import pytest

from repro import telemetry
from repro.core.pinatubo import PinatuboSystem
from repro.memsim.geometry import MemoryGeometry
from repro.nvm.technology import get_technology
from repro.plan.cache import SubResultCache
from repro.runtime.api import PimRuntime

GEOM = MemoryGeometry(
    channels=1,
    ranks_per_channel=1,
    chips_per_rank=1,
    banks_per_chip=4,
    subarrays_per_bank=16,
    rows_per_subarray=64,
    mats_per_subarray=1,
    cols_per_mat=1024,
    mux_ratio=8,
)

N = 3 * GEOM.row_bits  # three chunks per vector


def _runtime(geometry=GEOM, **kwargs) -> PimRuntime:
    system = PinatuboSystem(
        get_technology("pcm"), geometry, batch_commands=True
    )
    return PimRuntime(system, plan=True, **kwargs)


def _loaded(rt, n_vectors=3, seed=5):
    rng = np.random.default_rng(seed)
    handles, bits = [], []
    for _ in range(n_vectors):
        b = rng.integers(0, 2, N, dtype=np.uint8)
        h = rt.pim_malloc(N)
        rt.pim_write(h, b)
        handles.append(h)
        bits.append(b)
    return handles, bits


def _oracle(op, operands):
    out = operands[0].copy()
    for o in operands[1:]:
        if op == "or":
            out |= o
        elif op == "and":
            out &= o
        else:
            out ^= o
    if op == "inv":
        out ^= 1
    return out


class TestRepairCorrectness:
    @pytest.mark.parametrize("op", ["or", "and", "xor"])
    def test_partial_write_repairs_one_chunk(self, op):
        """A one-row write repairs exactly the dirtied chunk in place:
        the entry stays resident, the re-issued query is a cache hit,
        and the served bits match the numpy oracle on the new data."""
        rt = _runtime()
        (a, b, _), (ba, bb, _) = _loaded(rt)
        d1 = rt.pim_malloc(N)
        rt.pim_op(op, d1, [a, b])
        assert len(rt.planner.cache) == 1

        row = np.random.default_rng(9).integers(
            0, 2, GEOM.row_bits, dtype=np.uint8
        )
        rt.pim_write(a, row)  # overwrites only the first row frame
        new_a = ba.copy()
        new_a[: GEOM.row_bits] = row

        stats = rt.plan_stats
        assert stats.repairs == 1
        assert stats.repaired_chunks == 1
        assert stats.repair_fallbacks == 0
        assert rt.planner.cache.invalidations == 0
        assert len(rt.planner.cache) == 1
        assert stats.repair_latency_s > 0  # priced through the controller

        hits0 = stats.cache_hits
        d2 = rt.pim_malloc(N)
        rt.pim_op(op, d2, [a, b])
        assert stats.cache_hits == hits0 + 1
        assert np.array_equal(rt.pim_read(d2), _oracle(op, [new_a, bb]))

    def test_inv_repair(self):
        rt = _runtime()
        (a, _, _), (ba, _, _) = _loaded(rt)
        d1 = rt.pim_malloc(N)
        rt.pim_op("inv", d1, [a])
        row = np.random.default_rng(11).integers(
            0, 2, GEOM.row_bits, dtype=np.uint8
        )
        rt.pim_write(a, row)
        new_a = ba.copy()
        new_a[: GEOM.row_bits] = row
        assert rt.plan_stats.repairs == 1
        d2 = rt.pim_malloc(N)
        rt.pim_op("inv", d2, [a])
        assert rt.plan_stats.cache_hits == 1
        assert np.array_equal(rt.pim_read(d2), new_a ^ 1)

    def test_full_overwrite_repairs_every_chunk(self):
        rt = _runtime()
        (a, b, _), (_, bb, _) = _loaded(rt)
        d1 = rt.pim_malloc(N)
        rt.pim_op("xor", d1, [a, b])
        new_a = np.random.default_rng(13).integers(0, 2, N, dtype=np.uint8)
        rt.pim_write(a, new_a)
        # the host write lands row by row, so each dirtied frame takes
        # its own repair pass; all three chunks end up repaired in place
        assert rt.plan_stats.repairs >= 1
        assert rt.plan_stats.repaired_chunks == 3
        d2 = rt.pim_malloc(N)
        rt.pim_op("xor", d2, [a, b])
        assert rt.plan_stats.cache_hits == 1
        assert np.array_equal(rt.pim_read(d2), new_a ^ bb)

    def test_nested_child_falls_back_to_invalidation(self):
        """An entry whose child is itself a sub-expression is out of
        frame-delta reach: the write must invalidate it (counted as a
        fallback) while still repairing the leaf-level entry."""
        rt = _runtime()
        (a, b, c), (ba, bb, bc) = _loaded(rt)
        p1, out = rt.pim_malloc(N), rt.pim_malloc(N)
        rt.pim_op("or", p1, [a, b])
        rt.pim_op("and", out, [p1, c])  # caches and(or(a, b), c)
        assert len(rt.planner.cache) == 2

        row = np.random.default_rng(17).integers(
            0, 2, GEOM.row_bits, dtype=np.uint8
        )
        rt.pim_write(a, row)  # one-row write: exactly one repair pass
        new_a = ba.copy()
        new_a[: GEOM.row_bits] = row
        stats = rt.plan_stats
        assert stats.repairs == 1  # the or(a, b) leaf entry
        assert stats.repair_fallbacks == 1  # the nested and(...)
        assert rt.planner.cache.invalidations == 1
        assert len(rt.planner.cache) == 1

        d2 = rt.pim_malloc(N)
        rt.pim_op("or", d2, [a, b])
        assert stats.cache_hits == 1  # repaired entry serves
        assert np.array_equal(rt.pim_read(d2), new_a | bb)

    def test_repair_disabled_still_invalidates(self):
        rt = _runtime(repair=False)
        (a, b, _), (_, bb, _) = _loaded(rt)
        d1 = rt.pim_malloc(N)
        rt.pim_op("or", d1, [a, b])
        row = np.zeros(GEOM.row_bits, dtype=np.uint8)
        rt.pim_write(a, row)
        assert rt.plan_stats.repairs == 0
        assert len(rt.planner.cache) == 0
        assert rt.planner.cache.invalidations > 0


class TestLruUnderRepair:
    """Satellite: the cache's LRU discipline under the repair path."""

    def _small_cache_runtime(self):
        rt = _runtime()
        # one shard holding exactly two 3-chunk entries: a third insert
        # evicts the least recently used one
        rt.planner.cache = SubResultCache(
            max_bytes=6 * GEOM.row_bytes, shards=1
        )
        return rt

    def test_repair_refreshes_recency(self):
        """A repaired entry is a re-insert: it must become the most
        recently used, so the next eviction takes the untouched entry."""
        rt = self._small_cache_runtime()
        (a, b, c), (ba, bb, bc) = _loaded(rt)
        dA, dB, dC = (rt.pim_malloc(N) for _ in range(3))
        rt.pim_op("or", dA, [a, b])  # entry A (LRU-oldest)
        rt.pim_op("xor", dB, [b, c])  # entry B

        row = np.random.default_rng(23).integers(
            0, 2, GEOM.row_bits, dtype=np.uint8
        )
        rt.pim_write(a, row)  # repairs A -> A is now the newest
        new_a = ba.copy()
        new_a[: GEOM.row_bits] = row
        assert rt.plan_stats.repairs == 1

        rt.pim_op("and", dC, [a, c])  # entry C -> evicts B, not A
        assert rt.planner.cache.evictions == 1

        hits0 = rt.plan_stats.cache_hits
        d2 = rt.pim_malloc(N)
        rt.pim_op("or", d2, [a, b])  # repaired A still serves
        assert rt.plan_stats.cache_hits == hits0 + 1
        assert np.array_equal(rt.pim_read(d2), new_a | bb)

        d3 = rt.pim_malloc(N)
        rt.pim_op("xor", d3, [b, c])  # B was evicted: recompute
        assert rt.plan_stats.cache_hits == hits0 + 1
        assert np.array_equal(rt.pim_read(d3), bb ^ bc)

    def test_write_after_eviction_does_not_resurrect(self):
        """Repair races eviction: once the LRU dropped an entry, a write
        to its operands must not bring it back (the repair path only
        re-inserts entries it popped live from the cache)."""
        rt = self._small_cache_runtime()
        (a, b, c), (ba, bb, _) = _loaded(rt)
        dA, dB, dC = (rt.pim_malloc(N) for _ in range(3))
        rt.pim_op("or", dA, [a, b])  # entry A
        rt.pim_op("xor", dB, [b, c])  # entry B
        rt.pim_op("and", dC, [b, c])  # entry C -> evicts A
        assert rt.planner.cache.evictions == 1
        assert len(rt.planner.cache) == 2

        row = np.random.default_rng(29).integers(
            0, 2, GEOM.row_bits, dtype=np.uint8
        )
        rt.pim_write(a, row)  # nothing live reads a any more
        assert rt.plan_stats.repairs == 0
        assert len(rt.planner.cache) == 2

        new_a = ba.copy()
        new_a[: GEOM.row_bits] = row
        hits0 = rt.plan_stats.cache_hits
        d2 = rt.pim_malloc(N)
        rt.pim_op("or", d2, [a, b])  # must recompute, not hit a ghost
        assert rt.plan_stats.cache_hits == hits0
        assert np.array_equal(rt.pim_read(d2), new_a | bb)


class TestRepairProgramCache:
    """Satellite: compiled repair programs and the geometry guard."""

    @staticmethod
    def _repair_keys(planner):
        return [
            k
            for k in planner.programs._entries
            if isinstance(k, tuple) and k and k[0] == "repair"
        ]

    def test_recurring_repair_replays_frozen_program(self):
        rt = _runtime(compile=True)
        (a, b, _), _ = _loaded(rt)
        d1 = rt.pim_malloc(N)
        rt.pim_op("xor", d1, [a, b])
        rng = np.random.default_rng(31)

        rt.pim_write(a, rng.integers(0, 2, GEOM.row_bits, dtype=np.uint8))
        assert rt.plan_stats.repairs == 1
        assert len(self._repair_keys(rt.planner)) == 1

        hits0 = rt.plan_stats.program_hits
        rt.pim_write(a, rng.integers(0, 2, GEOM.row_bits, dtype=np.uint8))
        assert rt.plan_stats.repairs == 2
        # same repair shape: the frozen program replays
        assert rt.plan_stats.program_hits == hits0 + 1
        assert len(self._repair_keys(rt.planner)) == 1

    def test_geometry_change_cannot_replay_stale_program(self):
        """Repair program keys embed the chunks' sense-step resolution:
        after a geometry change (here a different SA mux ratio) the same
        logical repair computes a different key, so a transplanted
        program cache can never serve the stale command stream."""

        def prime(rt):
            (a, b, _), (ba, bb, _) = _loaded(rt)
            d1 = rt.pim_malloc(N)
            rt.pim_op("xor", d1, [a, b])
            return a, b, ba, bb

        rt1 = _runtime(compile=True)
        a1, _, _, _ = prime(rt1)
        row = np.random.default_rng(37).integers(
            0, 2, GEOM.row_bits, dtype=np.uint8
        )
        rt1.pim_write(a1, row)
        keys1 = self._repair_keys(rt1.planner)
        assert len(keys1) == 1

        geom16 = MemoryGeometry(
            channels=1,
            ranks_per_channel=1,
            chips_per_rank=1,
            banks_per_chip=4,
            subarrays_per_bank=16,
            rows_per_subarray=64,
            mats_per_subarray=1,
            cols_per_mat=1024,
            mux_ratio=16,  # same row_bits, different sense resolution
        )
        rt2 = _runtime(geometry=geom16, compile=True)
        a2, b2, ba2, bb2 = prime(rt2)
        # transplant rt1's repair program, simulating a shared cache
        # surviving a geometry change
        for key in keys1:
            rt2.planner.programs.put(key, rt1.planner.programs._entries[key])

        hits0 = rt2.plan_stats.program_hits
        rt2.pim_write(a2, row)
        assert rt2.plan_stats.repairs == 1
        assert rt2.plan_stats.program_hits == hits0  # no stale replay
        keys2 = self._repair_keys(rt2.planner)
        assert len(keys2) == 2  # the transplant plus rt2's own key
        assert set(keys2) != set(keys1)

        new_a = ba2.copy()
        new_a[: GEOM.row_bits] = row
        d2 = rt2.pim_malloc(N)
        rt2.pim_op("xor", d2, [a2, b2])  # repaired entry serves
        assert rt2.plan_stats.cache_hits == 1
        assert np.array_equal(rt2.pim_read(d2), new_a ^ bb2)


class TestRepairPricingParity:
    def test_interpreted_and_compiled_repairs_price_identically(self):
        """The frozen repair program is an execution strategy, never a
        pricing change: both planners must report the same simulated
        latency/energy to 1e-9 relative, with byte-identical reads."""

        def play(compile_):
            rt = _runtime(compile=compile_)
            (a, b, c), _ = _loaded(rt)
            rng = np.random.default_rng(41)
            reads = []
            for op, srcs in (("xor", [a, b]), ("or", [b, c]), ("and", [a, c])):
                d = rt.pim_malloc(N)
                rt.pim_op(op, d, srcs)
                reads.append(d)
            for _ in range(2):
                rt.pim_write(
                    a, rng.integers(0, 2, GEOM.row_bits, dtype=np.uint8)
                )
                for op, d, srcs in (
                    ("xor", rt.pim_malloc(N), [a, b]),
                    ("and", rt.pim_malloc(N), [a, c]),
                ):
                    rt.pim_op(op, d, srcs)
                    reads.append(d)
            bits = [rt.pim_read(d).tobytes() for d in reads]
            assert rt.plan_stats.repairs > 0
            acct = rt.pim_accounting
            return bits, acct.latency, acct.energy

        bits_i, lat_i, en_i = play(False)
        bits_c, lat_c, en_c = play(True)
        assert bits_i == bits_c
        assert lat_c == pytest.approx(lat_i, rel=1e-9)
        assert en_c == pytest.approx(en_i, rel=1e-9)


class TestServeReplayCounterAlias:
    def test_compat_counter_tracks_canonical(self):
        """Satellite: the serve-replay tally lives under the canonical
        ``plan.serve.replays`` name; the historical
        ``plan.compile.serve_replays`` alias bumps in lock-step."""
        new0 = telemetry.counter("plan.serve.replays").value
        old0 = telemetry.counter("plan.compile.serve_replays").value
        rt = _runtime()
        (a, b, c), _ = _loaded(rt)
        # pass 1 executes, pass 2 serves interpreted (recording the
        # resident run), pass 3 replays the recorded serve
        for _ in range(3):
            d1, d2 = rt.pim_malloc(N), rt.pim_malloc(N)
            rt.pim_op_many([("or", d1, [a, b]), ("xor", d2, [a, c])])
        assert rt.plan_stats.serve_replays >= 1
        d_new = telemetry.counter("plan.serve.replays").value - new0
        d_old = telemetry.counter("plan.compile.serve_replays").value - old0
        assert d_new == d_old == rt.plan_stats.serve_replays
