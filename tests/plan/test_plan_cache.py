"""Tests for the query-plan compiler and the write-invalidated cache."""

import numpy as np
import pytest

from repro import telemetry
from repro.core.pinatubo import PinatuboSystem
from repro.memsim.geometry import MemoryGeometry
from repro.nvm.technology import get_technology
from repro.plan.cache import SubResultCache
from repro.runtime.api import PimRuntime

GEOM = MemoryGeometry(
    channels=1,
    ranks_per_channel=1,
    chips_per_rank=1,
    banks_per_chip=4,
    subarrays_per_bank=16,
    rows_per_subarray=64,
    mats_per_subarray=1,
    cols_per_mat=1024,
    mux_ratio=8,
)

N = 3 * GEOM.row_bits  # three chunks per vector


def _runtime(**kwargs) -> PimRuntime:
    system = PinatuboSystem(get_technology("pcm"), GEOM, batch_commands=True)
    return PimRuntime(system, plan=True, **kwargs)


def _loaded(rt, n_vectors=3, seed=5):
    rng = np.random.default_rng(seed)
    handles, bits = [], []
    for _ in range(n_vectors):
        b = rng.integers(0, 2, N, dtype=np.uint8)
        h = rt.pim_malloc(N)
        rt.pim_write(h, b)
        handles.append(h)
        bits.append(b)
    return handles, bits


class TestPlannerCorrectness:
    def test_cse_within_batch_byte_identical(self):
        rt = _runtime()
        (a, b, c), (ba, bb, bc) = _loaded(rt)
        d = [rt.pim_malloc(N) for _ in range(4)]
        rt.pim_op_many(
            [
                ("or", d[0], [a, b]),
                ("or", d[1], [b, a]),  # commuted duplicate
                ("or", d[2], [a, b, a]),  # idempotent duplicate
                ("xor", d[3], [a, c]),
            ]
        )
        assert rt.plan_stats.cse_hits == 2
        expected = ba | bb
        for dest in d[:3]:
            assert np.array_equal(rt.pim_read(dest), expected)
        assert np.array_equal(rt.pim_read(d[3]), ba ^ bc)

    def test_cache_hit_across_streams(self):
        rt = _runtime()
        (a, b, _), (ba, bb, _) = _loaded(rt)
        d1 = rt.pim_malloc(N)
        rt.pim_op("or", d1, [a, b])
        assert rt.plan_stats.cache_hits == 0
        d2 = rt.pim_malloc(N)
        rt.pim_op("or", d2, [a, b])
        assert rt.plan_stats.cache_hits == 1
        assert np.array_equal(rt.pim_read(d2), ba | bb)

    def test_expression_rebinding_chains_across_queries(self):
        """and(or1, or2) matches across queries despite fresh scratch."""
        rt = _runtime()
        (a, b, c), (ba, bb, bc) = _loaded(rt)
        for i in range(2):
            p1, p2, out = (rt.pim_malloc(N) for _ in range(3))
            rt.pim_op_many(
                [
                    ("or", p1, [a, b]),
                    ("or", p2, [b, c]),
                ]
            )
            rt.pim_op("and", out, [p1, p2])
            assert np.array_equal(
                rt.pim_read(out), (ba | bb) & (bb | bc)
            )
        # second round: both ORs and the AND serve from the cache
        assert rt.plan_stats.cache_hits == 3

    def test_aliased_dest_executes_correctly(self):
        rt = _runtime()
        (a, b, _), (ba, bb, _) = _loaded(rt)
        rt.pim_op("or", a, [a, b])  # in-place accumulation
        assert np.array_equal(rt.pim_read(a), ba | bb)
        # aliased expressions are never inserted into the cache
        assert rt.planner.cache.hits == 0


class TestInvalidation:
    def test_write_to_operand_invalidate_and_recompute(self):
        """The satellite test: write to a row feeding a cached sub-result,
        re-issue the query, result is byte-identical to the numpy oracle
        and the invalidation is counted.  ``repair=False`` pins the
        eager-invalidation semantics this asserts (the default now
        repairs the entry in place -- see test_repair)."""
        rt = _runtime(repair=False)
        (a, b, _), (ba, bb, _) = _loaded(rt)
        inv0 = telemetry.counter("plan.cache.invalidations").value
        d1 = rt.pim_malloc(N)
        rt.pim_op("or", d1, [a, b])
        assert len(rt.planner.cache) == 1
        new_a = np.zeros(N, dtype=np.uint8)
        new_a[::3] = 1
        rt.pim_write(a, new_a)  # hits every row frame of a
        assert len(rt.planner.cache) == 0
        assert rt.planner.cache.invalidations > 0
        assert telemetry.counter("plan.cache.invalidations").value > inv0
        d2 = rt.pim_malloc(N)
        rt.pim_op("or", d2, [a, b])
        assert np.array_equal(rt.pim_read(d2), new_a | bb)
        # the stale entry must not have been served
        assert rt.plan_stats.cache_hits == 0

    def test_free_drops_dependent_entries(self):
        rt = _runtime()
        (a, b, _), _ = _loaded(rt)
        d = rt.pim_malloc(N)
        rt.pim_op("or", d, [a, b])
        assert len(rt.planner.cache) == 1
        rt.pim_free(a)
        assert len(rt.planner.cache) == 0
        assert rt.planner.cache.invalidations > 0

    def test_serve_write_invalidates_dependents(self):
        """A served result is itself a write: entries reading the serve
        destination must go."""
        rt = _runtime()
        (a, b, c), (ba, bb, bc) = _loaded(rt)
        d1, d2 = rt.pim_malloc(N), rt.pim_malloc(N)
        rt.pim_op("or", d1, [a, b])
        rt.pim_op("and", d2, [d1, c])  # caches and(or_ab, c) reading d1
        d3 = rt.pim_malloc(N)
        rt.pim_op("or", d1, [a, c])  # overwrites d1 (exec, new expr)
        rt.pim_op("and", d3, [d1, c])
        assert np.array_equal(rt.pim_read(d3), (ba | bc) & bc)


class TestHitPricing:
    def test_served_results_priced_nonzero_and_cheaper(self):
        rt = _runtime()
        (a, b, _), _ = _loaded(rt)
        d1 = rt.pim_malloc(N)
        executed = rt.pim_op("or", d1, [a, b])
        d2 = rt.pim_malloc(N)
        served = rt.pim_op("or", d2, [a, b])
        assert rt.plan_stats.cache_hits == 1
        assert served.latency > 0
        assert served.energy > 0
        assert served.latency < executed.latency
        assert served.energy < executed.energy

    def test_totals_reconcile_with_driver_accounting(self):
        """Per-result latency/energy sums to the runtime's accounting on
        a single-channel system (serial critical path)."""
        rt = _runtime()
        (a, b, c), _ = _loaded(rt)
        dests = [rt.pim_malloc(N) for _ in range(4)]
        results = rt.pim_op_many(
            [
                ("or", dests[0], [a, b]),
                ("or", dests[1], [a, b]),  # CSE-served
                ("and", dests[2], [b, c]),
                ("and", dests[3], [b, c]),  # CSE-served
            ]
        )
        acct = rt.pim_accounting
        assert acct.latency == pytest.approx(
            sum(r.latency for r in results)
        )
        assert acct.energy == pytest.approx(sum(r.energy for r in results))
        assert rt.plan_stats.served_latency_s > 0
        assert rt.plan_stats.served_energy_j > 0


class TestSubResultCache:
    def test_lru_eviction_under_byte_budget(self):
        cache = SubResultCache(max_bytes=4096, shards=1)
        rows = np.ones((1, 1024), dtype=np.uint8)
        for i in range(6):
            cache.put(f"k{i}", rows, 8192, {i})
        assert cache.evictions > 0
        assert cache.bytes_used <= 4096
        assert cache.get("k0") is None  # oldest evicted
        assert cache.get("k5") is not None

    def test_oversized_entry_rejected(self):
        cache = SubResultCache(max_bytes=1024, shards=1)
        rows = np.ones((4, 1024), dtype=np.uint8)
        assert not cache.put("big", rows, 4 * 8192, {1})
        assert len(cache) == 0

    def test_invalidate_frame_counts(self):
        cache = SubResultCache()
        rows = np.ones((1, 64), dtype=np.uint8)
        cache.put("x", rows, 512, {1, 2})
        cache.put("y", rows, 512, {2, 3})
        assert cache.invalidate_frame(2) == 2
        assert cache.invalidations == 2
        assert len(cache) == 0
        # the frame index must be fully cleaned up
        assert cache.invalidate_frame(1) == 0
        assert cache.invalidate_frame(3) == 0

    def test_planner_eviction_still_correct(self):
        rt = _runtime()
        # one-shard cache big enough for a single 3-chunk entry: every
        # further insert evicts the previous one
        rt.planner.cache = SubResultCache(
            max_bytes=4 * GEOM.row_bytes, shards=1
        )
        (a, b, c), (ba, bb, bc) = _loaded(rt)
        d = [rt.pim_malloc(N) for _ in range(3)]
        rt.pim_op("or", d[0], [a, b])
        rt.pim_op("or", d[1], [b, c])
        rt.pim_op("xor", d[2], [a, c])
        assert rt.planner.cache.evictions > 0
        assert np.array_equal(rt.pim_read(d[0]), ba | bb)
        assert np.array_equal(rt.pim_read(d[1]), bb | bc)
        assert np.array_equal(rt.pim_read(d[2]), ba ^ bc)


class TestPlannedVsUnplanned:
    def test_streams_byte_identical_to_unplanned_runtime(self):
        def run(plan):
            system = PinatuboSystem(
                get_technology("pcm"), GEOM, batch_commands=True
            )
            rt = PimRuntime(system, plan=plan)
            (a, b, c), _ = _loaded(rt)
            dests = [rt.pim_malloc(N) for _ in range(6)]
            rt.pim_op_many(
                [
                    ("or", dests[0], [a, b]),
                    ("or", dests[1], [b, a]),
                    ("and", dests[2], [a, c]),
                    ("xor", dests[3], [a, b, c]),
                    ("and", dests[4], [dests[0], c]),
                    ("inv", dests[5], [dests[2]]),
                ]
            )
            return [rt.pim_read(dst) for dst in dests]

        for got, want in zip(run(True), run(False)):
            assert np.array_equal(got, want)
