"""Tests for the kernel compiler: compiled vs interpreted parity.

The compiled path is an *execution strategy*, never a semantic or
pricing change: every test here runs the same request stream through
``PimRuntime(plan=True)`` (kernel compiler on, the default) and
``PimRuntime(plan=True, compile=False)`` (interpreted planner) and
asserts byte-identical bitvector outputs plus simulated latency/energy
agreement to 1e-9 relative.
"""

import numpy as np
import pytest

from repro.apps.fastbit import FastBitDB, RangeQuery
from repro.apps.fastbit_pim import PimFastBit
from repro.apps.star import ColumnSpec, synthetic_star_table
from repro.core.pinatubo import PinatuboSystem
from repro.memsim.geometry import MemoryGeometry
from repro.nvm.technology import get_technology
from repro.plan.cache import ProgramCache
from repro.plan.compile import SEEN_ONCE, UNCOMPILABLE
from repro.runtime.api import PimRuntime

GEOM = MemoryGeometry(
    channels=1,
    ranks_per_channel=1,
    chips_per_rank=1,
    banks_per_chip=4,
    subarrays_per_bank=16,
    rows_per_subarray=64,
    mats_per_subarray=1,
    cols_per_mat=1024,
    mux_ratio=8,
)

N = 3 * GEOM.row_bits  # three chunks per vector

RTOL = 1e-9


def _runtime(compile_: bool = True, repair: bool = True) -> PimRuntime:
    system = PinatuboSystem(get_technology("pcm"), GEOM, batch_commands=True)
    return PimRuntime(system, plan=True, compile=compile_, repair=repair)


def _loaded(rt, n_vectors=3, seed=5):
    rng = np.random.default_rng(seed)
    handles, bits = [], []
    for _ in range(n_vectors):
        b = rng.integers(0, 2, N, dtype=np.uint8)
        h = rt.pim_malloc(N)
        rt.pim_write(h, b)
        handles.append(h)
        bits.append(b)
    return handles, bits


def _rel_close(a: float, b: float, rtol: float = RTOL) -> bool:
    return abs(a - b) <= rtol * max(abs(a), abs(b), 1.0)


def _random_batches(rng, n_handles, n_batches=6, batch_size=4):
    """Seeded random op batches over handle *indices* (dests appended)."""
    ops = ("or", "and", "xor")
    batches = []
    for _ in range(n_batches):
        batch = []
        for _ in range(batch_size):
            op = ops[int(rng.integers(0, len(ops)))]
            n_src = int(rng.integers(2, 4))
            srcs = rng.choice(n_handles, size=n_src, replace=False)
            batch.append((op, [int(s) for s in srcs]))
        batches.append(batch)
    return batches


def _play(rt, batches, passes=3, seed=11):
    """Run the batches ``passes`` times; returns (out bits, results).

    Each pass rewrites every operand with fresh random contents: the
    writes invalidate the sub-result cache, so every pass re-executes
    and the recurring wave *shapes* hit the kernel compiler (pass one
    records, later passes replay the compiled programs).
    """
    rng = np.random.default_rng(seed)
    handles, _ = _loaded(rt, n_vectors=6, seed=seed)
    outs, results = [], []
    for _ in range(passes):
        for h in handles:
            rt.pim_write(h, rng.integers(0, 2, N, dtype=np.uint8))
        for batch in batches:
            dests = [rt.pim_malloc(N) for _ in batch]
            reqs = [
                (op, dest, [handles[i] for i in srcs])
                for (op, srcs), dest in zip(batch, dests)
            ]
            results.extend(rt.pim_op_many(reqs))
            outs.extend(rt.pim_read(d) for d in dests)
    return outs, results


class TestCompiledVsInterpretedOps:
    """Raw randomized op streams through both planner paths."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_randomized_streams_byte_identical(self, seed):
        rng = np.random.default_rng(seed)
        batches = _random_batches(rng, n_handles=6)

        # repair=False pins the PR-6 write=>invalidate semantics this
        # test asserts (every pass re-executes and hits the compiler);
        # the repair path has its own differential suite in test_repair
        rt_c = _runtime(compile_=True, repair=False)
        outs_c, res_c = _play(rt_c, batches)
        rt_i = _runtime(compile_=False, repair=False)
        outs_i, res_i = _play(rt_i, batches)

        assert len(outs_c) == len(outs_i)
        for bc, bi in zip(outs_c, outs_i):
            assert np.array_equal(bc, bi)
        # per-op simulated pricing identical to float noise
        for rc, ri in zip(res_c, res_i):
            assert rc.steps == ri.steps
            assert _rel_close(rc.latency, ri.latency)
            assert _rel_close(rc.energy, ri.energy)
        # aggregate ExecutionStats agree too
        assert _rel_close(
            rt_c.pim_accounting.latency, rt_i.pim_accounting.latency
        )
        assert _rel_close(
            rt_c.pim_accounting.energy, rt_i.pim_accounting.energy
        )
        # and the compiled arm really exercised the compiler
        assert rt_c.plan_stats.compilations >= 1
        assert rt_c.plan_stats.program_hits >= 1
        assert rt_i.plan_stats.compilations == 0

    def test_to_host_parity(self):
        rt_c = _runtime(compile_=True)
        rt_i = _runtime(compile_=False)
        for rt in (rt_c, rt_i):
            (a, b, c), bits = _loaded(rt)
            scratch = rt.pim_malloc(N)
            outs = [
                rt.pim_op_to_host("and", scratch, [a, b]) for _ in range(3)
            ]
            expected = bits[0] & bits[1]
            for out in outs:
                assert np.array_equal(out, expected)
        assert _rel_close(
            rt_c.pim_accounting.latency, rt_i.pim_accounting.latency
        )
        assert _rel_close(
            rt_c.pim_accounting.energy, rt_i.pim_accounting.energy
        )


#: small FastBit schema for the end-to-end differential
COLUMNS = (
    ColumnSpec("energy", 16, "exponential"),
    ColumnSpec("charge", 8, "normal"),
)

FB_GEOM = MemoryGeometry(
    channels=1,
    ranks_per_channel=1,
    chips_per_rank=1,
    banks_per_chip=2,
    subarrays_per_bank=8,
    rows_per_subarray=64,
    mats_per_subarray=1,
    cols_per_mat=2048,
    mux_ratio=8,
)

N_EVENTS = 2048


def _fastbit_stream(seed, n_unique=6, repeats=3):
    rng = np.random.default_rng(seed)
    pool = []
    for _ in range(n_unique):
        predicates = []
        for spec in COLUMNS:
            lo = int(rng.integers(0, spec.n_bins - 2))
            hi = int(rng.integers(lo + 1, spec.n_bins))
            predicates.append((spec.name, lo, hi))
        pool.append(RangeQuery(tuple(predicates)))
    stream = []
    for _ in range(repeats):
        order = rng.permutation(n_unique)
        stream.extend(pool[i] for i in order)
    return stream


class TestCompiledVsInterpretedFastBit:
    """The satellite differential: seeded randomized FastBit streams
    through both paths, byte-identical answers, 1e-9 pricing parity."""

    @pytest.mark.parametrize("seed", [7, 19])
    def test_fastbit_stream_differential(self, seed):
        table = synthetic_star_table(N_EVENTS, columns=COLUMNS, seed=seed)
        stream = _fastbit_stream(seed)
        oracle = FastBitDB(table, functional=False)

        def build(compile_):
            system = PinatuboSystem(
                get_technology("pcm"), FB_GEOM, batch_commands=True
            )
            rt = PimRuntime(system, plan=True, compile=compile_)
            return PimFastBit(rt, table)

        db_c = build(True)
        db_i = build(False)
        # three passes: execute, record, steady-state replay
        for _ in range(3):
            res_c = db_c.query_many(list(stream))
            res_i = db_i.query_many(list(stream))
        for rc, ri, query in zip(res_c, res_i, stream):
            assert rc.hits == ri.hits == oracle.query_oracle(query)
            assert rc.in_memory_steps == ri.in_memory_steps
            assert _rel_close(rc.latency, ri.latency)
            assert _rel_close(rc.energy, ri.energy)
        assert _rel_close(
            sum(r.latency for r in res_c), sum(r.latency for r in res_i)
        )
        assert _rel_close(
            sum(r.energy for r in res_c), sum(r.energy for r in res_i)
        )
        # steady state must actually run compiled: whole cache-served
        # runs replayed without re-planning
        stats = db_c.runtime.plan_stats
        assert stats.compilations >= 1
        assert stats.serve_replays >= 1
        assert db_i.runtime.plan_stats.serve_replays == 0


class TestRecompilationAfterWrite:
    def test_write_invalidation_reexecutes_compiled(self):
        """The satellite test: a write to an operand row drops the stale
        sub-results; the compiled path re-executes (reusing the
        frame-agnostic program) and matches the numpy oracle.
        ``repair=False``: this asserts the eager-invalidation path."""
        rt = _runtime(compile_=True, repair=False)
        (a, b, c), (ba, bb, bc) = _loaded(rt)

        def issue():
            d1, d2 = rt.pim_malloc(N), rt.pim_malloc(N)
            rt.pim_op_many([("or", d1, [a, b]), ("and", d2, [b, c])])
            return rt.pim_read(d1), rt.pim_read(d2)

        issue()  # executes (shape seen once), fills the sub-result cache
        issue()  # serves; compiler records the served-run shapes
        issue()  # replays the served run
        replays = rt.plan_stats.serve_replays
        programs = len(rt.planner.programs)
        assert replays >= 1

        rng = np.random.default_rng(17)
        for _ in range(3):
            new_b = rng.integers(0, 2, N, dtype=np.uint8)
            rt.pim_write(b, new_b)  # invalidates both cached sub-results
            r1, r2 = issue()  # must re-execute against the new contents
            assert np.array_equal(r1, ba | new_b)
            assert np.array_equal(r2, new_b & bc)
            r1, r2 = issue()  # repopulated cache serves again
            assert np.array_equal(r1, ba | new_b)
            assert np.array_equal(r2, new_b & bc)
        # the stale served runs were never replayed against old contents
        # (the post-write passes re-executed, then re-served)...
        assert rt.plan_stats.serve_replays >= replays
        # ...and by the second write-invalidation cycle the recurring
        # exec-wave shape compiled and replayed as a flat program
        assert rt.plan_stats.compilations >= 1
        assert rt.plan_stats.program_hits >= 1
        # programs are frame-agnostic: recompilation reuses cache slots
        # (seen-once markers upgrade in place, no unbounded growth)
        assert len(rt.planner.programs) <= programs + 2

    def test_recompiled_results_reprice_identically(self):
        """Pricing parity must survive a write-invalidation cycle."""

        def run(compile_):
            rt = _runtime(compile_=compile_, repair=False)
            (a, b, _), (ba, bb, _) = _loaded(rt)
            for _ in range(3):
                d = rt.pim_malloc(N)
                rt.pim_op("or", d, [a, b])
            new_a = np.ones(N, dtype=np.uint8)
            rt.pim_write(a, new_a)
            d = rt.pim_malloc(N)
            rt.pim_op("or", d, [a, b])
            return rt.pim_read(d), rt.pim_accounting

        bits_c, acct_c = run(True)
        bits_i, acct_i = run(False)
        assert np.array_equal(bits_c, bits_i)
        assert _rel_close(acct_c.latency, acct_i.latency)
        assert _rel_close(acct_c.energy, acct_i.energy)


class TestEscapeHatch:
    def test_compile_false_never_compiles(self):
        rt = _runtime(compile_=False)
        (a, b, _), (ba, bb, _) = _loaded(rt)
        for _ in range(4):
            d = rt.pim_malloc(N)
            rt.pim_op("or", d, [a, b])
            assert np.array_equal(rt.pim_read(d), ba | bb)
        stats = rt.plan_stats
        assert stats.compilations == 0
        assert stats.program_hits == 0
        assert stats.serve_replays == 0
        assert len(rt.planner.programs) == 0

    def test_compile_on_by_default(self):
        system = PinatuboSystem(
            get_technology("pcm"), GEOM, batch_commands=True
        )
        rt = PimRuntime(system, plan=True)
        assert rt.planner.compile_enabled


class TestProgramCache:
    def test_hit_miss_counters(self):
        cache = ProgramCache(max_entries=4)
        assert cache.get("k") is None
        assert cache.misses == 1
        cache.put("k", SEEN_ONCE)
        assert cache.get("k") is SEEN_ONCE
        assert cache.hits == 1

    def test_marker_upgrade_reuses_slot(self):
        cache = ProgramCache(max_entries=4)
        cache.put("k", SEEN_ONCE)
        cache.put("k", UNCOMPILABLE)
        assert len(cache) == 1
        assert cache.get("k") is UNCOMPILABLE

    def test_lru_eviction_order(self):
        cache = ProgramCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a; b is now LRU
        cache.put("c", 3)
        assert cache.evictions == 1
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            ProgramCache(max_entries=0)

    def test_to_dict_tallies(self):
        cache = ProgramCache(max_entries=8)
        cache.put("a", 1)
        cache.get("a")
        cache.get("missing")
        assert cache.to_dict() == {
            "entries": 1,
            "max_entries": 8,
            "hits": 1,
            "misses": 1,
            "evictions": 0,
        }
