"""AnalyticsCompiler: shape-keyed whole-query programs, record-and-replay.

The contract under test: a repeated query *shape* compiles into one
program with the comparison constants as runtime parameters; the third
and later steady sightings of a ``(constants, entry mode)`` pair replay
with answers, bits and simulated pricing identical to interpretation;
writes, frees and cache evictions all invalidate honestly.
"""

import numpy as np
import pytest

from repro.apps.analytics import AnalyticsTable, analytics_oracle
from repro.arith.compile import AnalyticsCompiler, analytics_program_key
from repro.runtime.api import PimRuntime

N = 320


def loaded_table(plan=True, compile_=True, analytics=True, seed=3):
    rt = PimRuntime.pcm(plan=plan, compile=compile_)
    rng = np.random.default_rng(seed)
    table = AnalyticsTable(rt, N, compile_analytics=analytics)
    data = {
        "age": rng.integers(0, 64, N).astype(np.int64),
        "income": rng.integers(0, 128, N).astype(np.int64),
        "region": rng.integers(0, 6, N).astype(np.int64),
    }
    table.load_column("age", data["age"], 6)
    table.load_column("income", data["income"], 7)
    table.load_index("region", data["region"], 6)
    return table, data


class TestProgramKey:
    def test_constants_are_parameters_not_shape(self):
        k1, c1 = analytics_program_key(
            [("cmp", "age", "lt", 30)], ("count",)
        )
        k2, c2 = analytics_program_key(
            [("cmp", "age", "lt", 55)], ("count",)
        )
        assert k1 == k2
        assert c1 == (30,) and c2 == (55,)

    def test_everything_else_is_shape(self):
        base, _ = analytics_program_key([("cmp", "age", "lt", 30)], ("count",))
        for filters, aggregate in [
            ([("cmp", "age", "le", 30)], ("count",)),  # op
            ([("cmp", "income", "lt", 30)], ("count",)),  # column
            ([("cmp", "age", "lt", 30)], ("sum", "income")),  # aggregate
            ([("range", "region", 1, 3)], ("count",)),  # predicate kind
        ]:
            other, _ = analytics_program_key(filters, aggregate)
            assert other != base

    def test_service_five_tuple_keeps_value_bits_in_shape(self):
        k1, c1 = analytics_program_key(
            [("cmp", "age", "lt", 30, 6)], ("count",)
        )
        k2, _ = analytics_program_key([("cmp", "age", "lt", 30, 8)], ("count",))
        assert c1 == (30,)
        assert k1 != k2

    def test_range_bounds_stay_in_shape(self):
        k1, c1 = analytics_program_key([("range", "region", 1, 3)], ("count",))
        k2, _ = analytics_program_key([("range", "region", 1, 4)], ("count",))
        assert c1 == ()
        assert k1 != k2

    def test_scope_separates_tenants(self):
        spec = ([("cmp", "age", "lt", 30, 6)], ("count",))
        ka, _ = analytics_program_key(*spec, scope="a")
        kb, _ = analytics_program_key(*spec, scope="b")
        assert ka != kb


class TestReplay:
    def test_third_sighting_replays_with_identical_answer_and_pricing(self):
        table, data = loaded_table()
        spec = lambda: table.filter(
            ("cmp", "age", "lt", 30), ("range", "region", 1, 3)
        ).sum("income")
        results = [spec() for _ in range(6)]
        stats = table.compiler.stats
        assert stats.programs == 1
        assert stats.replays >= 1
        # every replayed run must match the last interpreted run exactly
        baseline = results[stats.fallbacks - 1]
        for r in results[stats.fallbacks:]:
            assert r.popcount == baseline.popcount
            assert r.value == baseline.value
            assert r.groups == baseline.groups
            assert r.latency_s == pytest.approx(baseline.latency_s, rel=1e-12)
            assert r.energy_j == pytest.approx(baseline.energy_j, rel=1e-12)
        table.verify()

    def test_new_constant_shares_the_program(self):
        table, _ = loaded_table()
        for _ in range(4):
            table.filter(("cmp", "age", "lt", 30)).count()
        assert table.compiler.stats.replays >= 1
        replays_before = table.compiler.stats.replays
        for _ in range(4):
            table.filter(("cmp", "age", "lt", 55)).count()
        stats = table.compiler.stats
        assert stats.programs == 1  # same shape, zero replanning
        assert stats.replays > replays_before  # new constant replays too
        table.verify()

    def test_replay_advances_runtime_accounting(self):
        table, _ = loaded_table()
        rt = table.runtime
        for _ in range(4):
            table.filter(("cmp", "age", "ge", 10)).count()
        assert table.compiler.stats.replays >= 1
        lat0, en0 = rt.total_latency(), rt.total_energy()
        r = table.filter(("cmp", "age", "ge", 10)).count()
        assert rt.total_latency() - lat0 == pytest.approx(
            r.latency_s, rel=1e-12
        )
        assert rt.total_energy() - en0 == pytest.approx(r.energy_j, rel=1e-12)

    def test_disabled_without_planner(self):
        table, _ = loaded_table(plan=False)
        assert not table.compiler.enabled
        for _ in range(4):
            table.filter(("cmp", "age", "lt", 30)).count()
        assert table.compiler.stats.replays == 0
        table.verify()

    def test_disabled_without_wave_compiler(self):
        table, _ = loaded_table(compile_=False)
        assert not table.compiler.enabled

    def test_escape_hatch_flag(self):
        table, _ = loaded_table(analytics=False)
        assert not table.compiler.enabled
        for _ in range(4):
            table.filter(("cmp", "age", "lt", 30)).count()
        assert table.compiler.stats.replays == 0
        table.verify()


class TestInvalidation:
    def test_write_to_a_leaf_drops_records_and_rerecords(self):
        table, data = loaded_table()
        rng = np.random.default_rng(11)
        for _ in range(4):
            table.filter(("cmp", "age", "ge", 10)).count()
        assert table.compiler.stats.replays >= 1

        # overwrite bit plane 0 of "age" (and keep the host shadow true)
        newbits = rng.integers(0, 2, N).astype(np.uint8)
        table.runtime.pim_write(table._slices["age"].planes[0], newbits)
        age2 = (data["age"] & ~1) | newbits.astype(np.int64)
        table._host["age"] = age2

        r = table.filter(("cmp", "age", "ge", 10)).count()
        assert r.popcount == int((age2 >= 10).sum())
        assert table.compiler.stats.invalidations >= 1
        # re-steadies: later repeats replay the *new* answer
        for _ in range(3):
            r2 = table.filter(("cmp", "age", "ge", 10)).count()
        assert r2.popcount == r.popcount
        table.verify()

    def test_free_drops_programs_via_allocator_listener(self):
        table, _ = loaded_table()
        for _ in range(4):
            table.filter(("cmp", "age", "lt", 30)).count()
        assert len(table.compiler.programs) == 1
        table.free()
        assert len(table.compiler.programs) == 0
        assert not table.compiler._frame_index


class TestDifferentialSweep:
    """Randomized constants/ops/value_bits: compiled vs interpreted vs
    the numpy oracle, with simulated-pricing parity on every query."""

    def test_sweep(self):
        rng = np.random.default_rng(2026)
        table_c, data = loaded_table(analytics=True, seed=8)
        table_i, _ = loaded_table(analytics=False, seed=8)

        specs = []
        for _ in range(10):
            op = str(rng.choice(["lt", "le", "gt", "ge", "eq"]))
            k = int(rng.integers(0, 64))
            filters = [("cmp", "age", op, k)]
            if rng.integers(0, 2):
                lo = int(rng.integers(0, 5))
                hi = int(rng.integers(lo, 6))
                filters.append(("range", "region", lo, hi))
            aggregate = [("count",), ("sum", "income"), ("hist", "region")][
                int(rng.integers(0, 3))
            ]
            specs.append((tuple(filters), aggregate))

        # four passes: fill, record (plus entry-mode stragglers), replay
        # -- the interpreted twin runs the same stream so steady-state
        # pricing is comparable pointwise
        for _ in range(4):
            for filters, aggregate in specs:
                rc = table_c.filter(*filters).aggregate(aggregate)
                ri = table_i.filter(*filters).aggregate(aggregate)
                assert rc.popcount == ri.popcount
                assert rc.value == ri.value
                assert rc.groups == ri.groups
                assert rc.latency_s == pytest.approx(ri.latency_s, rel=1e-9)
                assert rc.energy_j == pytest.approx(ri.energy_j, rel=1e-9)
                mask, value, groups = analytics_oracle(
                    data, filters, aggregate
                )
                assert rc.popcount == int(mask.sum())
                assert rc.value == value
                assert rc.groups == groups
        assert table_c.compiler.stats.replays >= len(specs)
        table_c.verify()
        table_i.verify()


class TestCseHitsPinning:
    """Why ``cse_hits: 0`` in BENCH_arith.json is canonical.

    The planner's ``cse_hits`` counts duplicate requests *within one
    wave* only (cross-query reuse is the sub-result cache's job, tallied
    as ``cache_hits``).  Benchmark queries have no duplicate
    sub-expressions inside a single query, so the counter stays 0 by
    construction -- not because fusion broke CSE.  Both directions are
    pinned here: a query with two identical predicates (one fused wave
    since the whole predicate set is emitted together) does fold, and a
    benchmark-shaped query does not.
    """

    def test_duplicate_predicates_in_one_query_fold(self):
        table, data = loaded_table(analytics=False)
        planner = table.runtime.planner
        before = planner.stats.cse_hits
        dup = ("cmp", "age", "lt", 30)
        r = table.filter(dup, dup).count()
        assert planner.stats.cse_hits > before
        assert r.popcount == int((data["age"] < 30).sum())
        table.verify()

    def test_benchmark_shaped_queries_never_fold(self):
        table, _ = loaded_table(analytics=False)
        planner = table.runtime.planner
        table.filter(("cmp", "age", "lt", 30)).count()
        table.filter(
            ("cmp", "age", "ge", 18), ("range", "region", 1, 3)
        ).sum("income")
        table.filter(("cmp", "income", "gt", 60)).histogram("region")
        # repeats reuse via the sub-result cache, never via wave CSE
        table.filter(("cmp", "age", "lt", 30)).count()
        assert planner.stats.cse_hits == 0
        assert planner.stats.cache_hits > 0
