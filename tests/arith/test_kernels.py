"""Differential tests for the bit-serial arithmetic kernels.

Every kernel in :mod:`repro.arith.kernels` is built purely from the
substrate's OR/AND/XOR/INV gates, so its correctness contract is exact
agreement with the numpy oracle on randomized inputs -- across the
interpreted runtime, the planned interpreter, and the kernel-compiled
planner (same semantics, three execution strategies).
"""

import numpy as np
import pytest

from repro.arith import (
    BitSliceTensor,
    ScratchPool,
    compare,
    compare_const,
    combine_masks,
    copy_plane,
    mask_bits,
    mask_count,
    masked_histogram,
    masked_sum,
    oracle_add,
    oracle_compare,
    oracle_compare_const,
    oracle_histogram,
    oracle_masked_sum,
    oracle_sub,
    ripple_add,
    ripple_sub,
)
from repro.arith.kernels import CMP_OPS
from repro.runtime.api import PimRuntime

N = 300
K = 5

MODES = [
    pytest.param({"plan": False}, id="interpreted"),
    pytest.param({"plan": True, "compile": False}, id="planned"),
    pytest.param({"plan": True, "compile": True}, id="compiled"),
]


@pytest.fixture(params=MODES)
def rt(request):
    return PimRuntime.pcm(**request.param)


def _operands(rt, seed, n=N, k=K):
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 1 << k, n).astype(np.int64)
    b = rng.integers(0, 1 << k, n).astype(np.int64)
    ta = BitSliceTensor.from_ints(rt, a, k)
    tb = BitSliceTensor.from_ints(rt, b, k)
    pool = ScratchPool(rt, n)
    return a, b, ta, tb, pool


def _mask_to_bits(rt, pool, mask, n=N):
    return mask_bits(pool, mask)[:n]


class TestRippleAddSub:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_add_matches_oracle(self, rt, seed):
        a, b, ta, tb, pool = _operands(rt, seed)
        out = ripple_add(pool, ta.planes, tb.planes)
        assert len(out) == K + 1  # carry-out plane included
        got = BitSliceTensor(rt, out, N).to_ints()
        np.testing.assert_array_equal(got, oracle_add(a, b))

    @pytest.mark.parametrize("seed", [0, 3])
    def test_sub_matches_oracle_mod_2k(self, rt, seed):
        a, b, ta, tb, pool = _operands(rt, seed)
        out = ripple_sub(pool, ta.planes, tb.planes)
        assert len(out) == K
        got = BitSliceTensor(rt, out, N).to_ints()
        np.testing.assert_array_equal(got, oracle_sub(a, b, K))

    def test_add_all_ones_carries(self, rt):
        ones = np.full(64, (1 << K) - 1, dtype=np.int64)
        ta = BitSliceTensor.from_ints(rt, ones, K)
        tb = BitSliceTensor.from_ints(rt, ones, K)
        pool = ScratchPool(rt, 64)
        got = BitSliceTensor(rt, ripple_add(pool, ta.planes, tb.planes), 64)
        np.testing.assert_array_equal(got.to_ints(), ones + ones)


class TestCompareConst:
    @pytest.mark.parametrize("op", CMP_OPS)
    @pytest.mark.parametrize("value", [0, 1, 13, (1 << K) - 1, 1 << K, 100])
    def test_matches_oracle(self, rt, op, value):
        a, _, ta, _, pool = _operands(rt, 11)
        mask = compare_const(pool, ta.planes, op, value)
        got = _mask_to_bits(rt, pool, mask)
        np.testing.assert_array_equal(
            got.astype(bool), oracle_compare_const(a, op, value)
        )

    def test_negative_threshold(self, rt):
        a, _, ta, _, pool = _operands(rt, 12)
        got = _mask_to_bits(rt, pool, compare_const(pool, ta.planes, "lt", -1))
        assert not got.any()  # nothing is below every representable value
        got = _mask_to_bits(rt, pool, compare_const(pool, ta.planes, "ge", -1))
        assert got.all()


class TestCompareTensor:
    @pytest.mark.parametrize("op", CMP_OPS)
    def test_matches_oracle(self, rt, op):
        a, b, ta, tb, pool = _operands(rt, 21)
        mask = compare(pool, ta.planes, op, tb.planes)
        got = _mask_to_bits(rt, pool, mask)
        np.testing.assert_array_equal(
            got.astype(bool), oracle_compare(a, op, b)
        )

    def test_self_comparison_is_equality(self, rt):
        a, _, ta, _, pool = _operands(rt, 22)
        assert mask_count(pool, compare(pool, ta.planes, "eq", ta.planes)) == N
        assert mask_count(pool, compare(pool, ta.planes, "lt", ta.planes)) == 0


class TestAggregation:
    def test_count_and_sum(self, rt):
        a, b, ta, tb, pool = _operands(rt, 31)
        mask = combine_masks(
            pool,
            [
                compare_const(pool, ta.planes, "ge", 8),
                compare(pool, ta.planes, "lt", tb.planes),
            ],
        )
        want = (a >= 8) & (a < b)
        assert mask_count(pool, mask) == int(want.sum())
        assert masked_sum(pool, tb.planes, mask) == oracle_masked_sum(b, want)

    def test_histogram(self, rt):
        rng = np.random.default_rng(32)
        n_bins = 4
        bins = rng.integers(0, n_bins, N)
        bin_planes = []
        for bin_id in range(n_bins):
            h = rt.pim_malloc(N, "arith")
            rt.pim_write(h, (bins == bin_id).astype(np.uint8))
            bin_planes.append(h)
        a, _, ta, _, pool = _operands(rt, 33)
        mask = compare_const(pool, ta.planes, "lt", 16)
        got = masked_histogram(pool, bin_planes, mask)
        np.testing.assert_array_equal(
            got, oracle_histogram(bins, n_bins, a < 16)
        )
        np.testing.assert_array_equal(
            masked_histogram(pool, bin_planes), oracle_histogram(bins, n_bins)
        )


class TestPricing:
    def test_every_gate_is_priced(self, rt):
        """No side-channel arithmetic: the whole kernel sequence shows
        up in the controller's latency/energy books."""
        a, b, ta, tb, pool = _operands(rt, 41)
        lat0, en0 = rt.total_latency(), rt.total_energy()
        instr0 = rt.driver.stats.instructions
        ripple_add(pool, ta.planes, tb.planes)
        compare_const(pool, ta.planes, "le", 9)
        assert rt.total_latency() > lat0
        assert rt.total_energy() > en0
        assert rt.driver.stats.instructions > instr0

    def test_popcount_priced_like_to_host(self):
        """pim_popcount issues the same command stream as pim_op_to_host
        of the same shape -- counting on the host adds no simulated cost."""
        rt_a = PimRuntime.pcm(plan=True)
        rt_b = PimRuntime.pcm(plan=True)
        rng = np.random.default_rng(42)
        bits = rng.integers(0, 2, N, dtype=np.uint8)
        for rt in (rt_a, rt_b):
            h = rt.pim_malloc(N, "arith")
            rt.pim_write(h, bits)
            s = rt.pim_malloc(N, "arith")
            if rt is rt_a:
                count = rt.pim_popcount("or", s, [h, h])
            else:
                out = rt.pim_op_to_host("or", s, [h, h])
        assert count == int(bits.sum()) == int(out[:N].sum())
        assert rt_a.total_latency() == rt_b.total_latency()
        assert rt_a.total_energy() == rt_b.total_energy()

    def test_popcount_inv_masks_padding(self, rt):
        """INV flips the padding bits past n_bits in the last packed
        row; the count must exclude them."""
        n = 1000  # not a multiple of the row size
        rng = np.random.default_rng(43)
        bits = rng.integers(0, 2, n, dtype=np.uint8)
        h = rt.pim_malloc(n, "arith")
        rt.pim_write(h, bits)
        s = rt.pim_malloc(n, "arith")
        for _ in range(2):  # second pass replays the compiled program
            assert rt.pim_popcount("inv", s, [h]) == int((1 - bits).sum())


class TestBitSliceTensor:
    def test_round_trip(self, rt):
        rng = np.random.default_rng(51)
        values = rng.integers(0, 1 << 7, 200).astype(np.int64)
        t = BitSliceTensor.from_ints(rt, values, 7)
        assert t.k == 7
        np.testing.assert_array_equal(t.to_ints(), values)
        t.free()

    def test_out_of_range_rejected(self, rt):
        with pytest.raises(ValueError):
            BitSliceTensor.from_ints(rt, np.array([4]), 2)
        with pytest.raises(ValueError):
            BitSliceTensor.from_ints(rt, np.array([-1]), 2)


class TestScratchPool:
    def test_recycle_reuses_planes(self, rt):
        pool = ScratchPool(rt, N)
        first = pool.take()
        pool.recycle()
        assert pool.take() is first

    def test_reserved_planes_survive_recycle(self, rt):
        pool = ScratchPool(rt, N)
        kept = pool.take()
        pool.reserve(kept)
        pool.recycle()
        assert pool.take() is not kept

    def test_copy_plane_copies(self, rt):
        rng = np.random.default_rng(52)
        bits = rng.integers(0, 2, N, dtype=np.uint8)
        h = rt.pim_malloc(N, "arith")
        rt.pim_write(h, bits)
        pool = ScratchPool(rt, N)
        np.testing.assert_array_equal(
            rt.pim_read(copy_plane(pool, h))[:N], bits
        )


class TestScratchPoolAccounting:
    """The pool's honest books: in_use/high_water, canonical hand-out,
    preallocation, and the post-query leak check."""

    def test_in_use_and_high_water_track_takes(self, rt):
        pool = ScratchPool(rt, N)
        planes = [pool.take() for _ in range(3)]
        assert pool.in_use == 3
        assert pool.high_water == 3
        assert pool.allocated == 3
        pool.recycle()
        assert pool.in_use == 0
        assert pool.high_water == 3  # lifetime peak survives recycle
        pool.take()
        assert pool.high_water == 3
        assert planes  # keep the handles alive through the assertions

    def test_canonical_hand_out_is_history_independent(self, rt):
        # pricing depends on which physical planes a query grabs, so
        # take() must hand out the same planes in the same order no
        # matter what earlier queries did with the pool
        pool = ScratchPool(rt, N)
        first = [pool.take() for _ in range(4)]
        pool.recycle()
        # scramble the history: take 2, recycle, take 3, recycle...
        for k in (2, 3, 1):
            for _ in range(k):
                pool.take()
            pool.recycle()
        again = [pool.take() for _ in range(4)]
        assert again == first
        pool.recycle()
        # ...and pool growth never perturbs the stable prefix
        pool.preallocate(8)
        assert [pool.take() for _ in range(4)] == first

    def test_preallocate_grows_free_list_without_double_alloc(self, rt):
        pool = ScratchPool(rt, N)
        pool.preallocate(5)
        assert pool.allocated == 5
        assert pool.stats()["free"] == 5
        pool.preallocate(3)  # never shrinks, never re-allocates
        assert pool.allocated == 5
        taken = [pool.take() for _ in range(5)]
        assert pool.allocated == 5  # served from the warmed free list
        assert len(taken) == 5

    def test_stats_snapshot(self, rt):
        pool = ScratchPool(rt, N)
        a = pool.take()
        b = pool.take()
        pool.reserve(a)
        assert pool.stats() == {
            "allocated": 2,
            "in_use": 1,
            "free": 0,
            "reserved": 1,
            "high_water": 2,
        }
        assert b is not a

    def test_assert_drained_passes_after_recycle(self, rt):
        pool = ScratchPool(rt, N)
        for _ in range(3):
            pool.take()
        pool.recycle()
        pool.assert_drained()

    def test_assert_drained_catches_leak(self, rt):
        pool = ScratchPool(rt, N)
        pool.take()
        with pytest.raises(AssertionError, match="scratch pool leak"):
            pool.assert_drained()

    def test_assert_drained_catches_unbalanced_books(self, rt):
        pool = ScratchPool(rt, N)
        pool.take()
        pool.recycle()
        pool._free.pop()  # simulate a plane recycled into the wrong pool
        with pytest.raises(AssertionError, match="out of balance"):
            pool.assert_drained()

    def test_free_all_resets_books(self, rt):
        pool = ScratchPool(rt, N)
        for _ in range(3):
            pool.take()
        pool.recycle()
        pool.free_all()
        assert pool.stats() == {
            "allocated": 0,
            "in_use": 0,
            "free": 0,
            "reserved": 0,
            "high_water": 3,
        }
