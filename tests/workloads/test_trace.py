"""Tests for op traces and workload pricing."""

import pytest

from repro.baselines.base import AccessPattern
from repro.baselines.ideal import IdealPim
from repro.baselines.simd import SimdCpu
from repro.core.model import PinatuboModel
from repro.workloads.trace import BitwiseEvent, CpuEvent, OpTrace, WorkloadCost


@pytest.fixture
def trace():
    t = OpTrace(name="t")
    t.bitwise("or", 4, 1 << 14, count=10)
    t.cpu(1e6, "scan")
    t.bitwise("xor", 2, 1 << 14)
    return t


class TestRecording:
    def test_counters(self, trace):
        assert trace.n_bitwise_ops == 11
        assert trace.cpu_ops == 1e6
        assert trace.op_histogram() == {"or": 10, "xor": 1}

    def test_operand_bits(self, trace):
        assert trace.bitwise_operand_bits == 10 * 4 * (1 << 14) + 2 * (1 << 14)

    def test_extend(self, trace):
        other = OpTrace()
        other.bitwise("and", 2, 64)
        trace.extend(other)
        assert trace.n_bitwise_ops == 12

    def test_event_validation(self):
        with pytest.raises(ValueError):
            BitwiseEvent("or", 2, 64, AccessPattern.SEQUENTIAL, count=0)
        with pytest.raises(ValueError):
            BitwiseEvent("or", 0, 64, AccessPattern.SEQUENTIAL)
        with pytest.raises(ValueError):
            BitwiseEvent("or", 2, 0, AccessPattern.SEQUENTIAL)
        with pytest.raises(ValueError):
            CpuEvent(-1.0)


class TestPricing:
    def test_count_scales_linearly(self):
        cpu = SimdCpu.with_pcm()
        one = OpTrace()
        one.bitwise("or", 2, 1 << 14, count=1)
        ten = OpTrace()
        ten.bitwise("or", 2, 1 << 14, count=10)
        assert ten.price(cpu).bitwise_latency == pytest.approx(
            10 * one.price(cpu).bitwise_latency
        )

    def test_cpu_events_priced_on_host(self, trace):
        cost = trace.price(IdealPim())
        assert cost.bitwise_latency == 0.0
        assert cost.other_latency == pytest.approx(1e6 / 3.3e9)
        assert cost.other_energy > 0

    def test_other_part_scheme_independent(self, trace):
        a = trace.price(SimdCpu.with_pcm())
        b = trace.price(PinatuboModel())
        assert a.other_latency == pytest.approx(b.other_latency)
        assert a.other_energy == pytest.approx(b.other_energy)

    def test_bitwise_part_differs(self, trace):
        a = trace.price(SimdCpu.with_pcm())
        b = trace.price(PinatuboModel())
        assert b.bitwise_latency < a.bitwise_latency

    def test_scalar_cores_speedup(self, trace):
        one = trace.price(IdealPim(), cores_for_scalar=1)
        four = trace.price(IdealPim(), cores_for_scalar=4)
        assert four.other_latency == pytest.approx(one.other_latency / 4)

    def test_memoisation_consistent(self):
        """Repeated identical events must price the same as distinct ones."""
        cpu = SimdCpu.with_pcm()
        t1 = OpTrace()
        t1.bitwise("or", 2, 1 << 12)
        t1.bitwise("or", 2, 1 << 12)
        t2 = OpTrace()
        t2.bitwise("or", 2, 1 << 12, count=2)
        assert t1.price(cpu).bitwise_latency == pytest.approx(
            t2.price(cpu).bitwise_latency
        )


class TestWorkloadCost:
    def test_totals(self):
        c = WorkloadCost(1.0, 2.0, 3.0, 4.0)
        assert c.total_latency == 4.0
        assert c.total_energy == 6.0
        assert c.bitwise_latency_fraction == pytest.approx(0.25)

    def test_zero_fraction(self):
        assert WorkloadCost().bitwise_latency_fraction == 0.0
