"""Tests for the synthetic multi-tenant serving load generator."""

import numpy as np
import pytest

from repro.service import BitmapQueryService, ServiceConfig
from repro.workloads.service_load import (
    ServiceLoadSpec,
    build_datasets,
    generate_requests,
    run_service_load,
)

SMALL = ServiceLoadSpec(
    n_tenants=4,
    vectors_per_tenant=3,
    vector_bits=512,
    index_events=256,
    n_requests=40,
    seed=9,
)


class TestSpecValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_tenants": 0},
            {"vectors_per_tenant": 1},
            {"n_requests": 0},
            {"arrival_rate_per_s": 0.0},
            {"zipf_s": -0.5},
            {"mix": ()},
            {"mix": (("and", -1.0),)},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            ServiceLoadSpec(**kwargs)

    def test_tenant_probabilities_normalised_and_skewed(self):
        spec = ServiceLoadSpec(n_tenants=8, zipf_s=1.0)
        p = spec.tenant_probabilities()
        assert p.sum() == pytest.approx(1.0)
        assert (np.diff(p) < 0).all()  # rank 0 is hottest

    def test_zipf_zero_is_uniform(self):
        p = ServiceLoadSpec(n_tenants=5, zipf_s=0.0).tenant_probabilities()
        np.testing.assert_allclose(p, 0.2)


class TestGeneration:
    def test_stream_is_seed_deterministic(self):
        a = generate_requests(SMALL)
        b = generate_requests(SMALL)
        assert a == b

    def test_different_seed_different_stream(self):
        other = ServiceLoadSpec(**{**SMALL.__dict__, "seed": 10})
        assert generate_requests(SMALL) != generate_requests(other)

    def test_arrivals_are_open_loop_and_increasing(self):
        requests = generate_requests(SMALL)
        arrivals = [r.arrival_s for r in requests]
        assert arrivals == sorted(arrivals)
        assert all(a > 0 for a in arrivals)

    def test_requests_reference_loaded_vectors_only(self):
        service = BitmapQueryService(ServiceConfig())
        build_datasets(SMALL, service)
        # submission validates every vector name against the dataset
        for request in generate_requests(SMALL):
            service.submit_request(request)

    def test_mix_controls_kinds(self):
        spec = ServiceLoadSpec(
            **{**SMALL.__dict__, "mix": (("and", 1.0),)}
        )
        assert {r.op for r in generate_requests(spec)} == {"and"}


class TestRun:
    def test_end_to_end_with_oracle_parity(self):
        config = ServiceConfig(keep_bits=True)
        service, stats = run_service_load(SMALL, config)
        assert stats.submitted == SMALL.n_requests
        assert stats.completed + stats.rejected == SMALL.n_requests
        assert service.verify_results() == stats.completed

    def test_runs_on_host_backends_too(self):
        from repro.backends.config import SystemConfig

        config = ServiceConfig(
            system=SystemConfig(backend="ideal"), host_shards=4
        )
        mix = (("and", 1.0), ("or", 1.0), ("range", 0.5))
        spec = ServiceLoadSpec(**{**SMALL.__dict__, "mix": mix})
        _, stats = run_service_load(spec, config)
        assert stats.completed == spec.n_requests

    @pytest.mark.slow
    def test_full_scale_sixteen_tenants_verify_every_result(self):
        spec = ServiceLoadSpec(
            n_tenants=16,
            vectors_per_tenant=4,
            vector_bits=1024,
            index_events=1024,
            n_requests=512,
            arrival_rate_per_s=2e6,
            seed=3,
        )
        config = ServiceConfig(max_batch=16, keep_bits=True)
        service, stats = run_service_load(spec, config)
        assert stats.completed + stats.rejected == spec.n_requests
        assert service.verify_results() == stats.completed
        assert stats.coalesced_requests > 0


class TestAnalyticsMix:
    MIX = (("and", 0.3), ("range", 0.2), ("analyze", 0.5))

    def spec(self, **overrides):
        base = dict(
            n_tenants=4,
            vectors_per_tenant=3,
            vector_bits=512,
            index_events=256,
            n_requests=40,
            mix=self.MIX,
            value_bits=5,
            seed=9,
        )
        base.update(overrides)
        return ServiceLoadSpec(**base)

    def test_analyze_mix_requires_value_bits(self):
        with pytest.raises(ValueError, match="value_bits"):
            self.spec(value_bits=0)

    def test_stream_contains_analytics_requests(self):
        requests = generate_requests(self.spec())
        kinds = {getattr(r, "kind", "") for r in requests}
        assert "analytics" in kinds

    def test_end_to_end_with_oracle_parity(self):
        spec = self.spec()
        service, stats = run_service_load(spec, ServiceConfig(keep_bits=True))
        assert stats.completed + stats.rejected == spec.n_requests
        assert service.verify_results() == stats.completed
        n_analytics = sum(
            1
            for r in service.results
            if getattr(r.request, "kind", "") == "analytics"
        )
        assert n_analytics > 0

    def test_value_bits_zero_keeps_historical_stream(self):
        """Adding the value_bits knob (left at 0) must not perturb the
        seeded request stream of a pre-existing spec."""
        legacy = ServiceLoadSpec(**{**SMALL.__dict__})
        assert legacy.value_bits == 0
        a = generate_requests(SMALL)
        b = generate_requests(legacy)
        assert [r.request_id for r in a] == [r.request_id for r in b]
        assert [r.arrival_s for r in a] == [r.arrival_s for r in b]
        assert [r.op for r in a] == [r.op for r in b]

    def test_cluster_end_to_end(self):
        from repro.cluster import ClusterConfig
        from repro.workloads.service_load import run_cluster_load

        spec = self.spec(n_requests=24)
        router, stats = run_cluster_load(
            spec,
            ClusterConfig(n_nodes=2),
            head_tenants=1,
            head_replicas=2,
        )
        assert router.verify_results() == stats.completed
