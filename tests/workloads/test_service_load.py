"""Tests for the synthetic multi-tenant serving load generator."""

import numpy as np
import pytest

from repro.service import BitmapQueryService, ServiceConfig
from repro.workloads.service_load import (
    ServiceLoadSpec,
    build_datasets,
    generate_requests,
    run_service_load,
)

SMALL = ServiceLoadSpec(
    n_tenants=4,
    vectors_per_tenant=3,
    vector_bits=512,
    index_events=256,
    n_requests=40,
    seed=9,
)


class TestSpecValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_tenants": 0},
            {"vectors_per_tenant": 1},
            {"n_requests": 0},
            {"arrival_rate_per_s": 0.0},
            {"zipf_s": -0.5},
            {"mix": ()},
            {"mix": (("and", -1.0),)},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            ServiceLoadSpec(**kwargs)

    def test_tenant_probabilities_normalised_and_skewed(self):
        spec = ServiceLoadSpec(n_tenants=8, zipf_s=1.0)
        p = spec.tenant_probabilities()
        assert p.sum() == pytest.approx(1.0)
        assert (np.diff(p) < 0).all()  # rank 0 is hottest

    def test_zipf_zero_is_uniform(self):
        p = ServiceLoadSpec(n_tenants=5, zipf_s=0.0).tenant_probabilities()
        np.testing.assert_allclose(p, 0.2)


class TestGeneration:
    def test_stream_is_seed_deterministic(self):
        a = generate_requests(SMALL)
        b = generate_requests(SMALL)
        assert a == b

    def test_different_seed_different_stream(self):
        other = ServiceLoadSpec(**{**SMALL.__dict__, "seed": 10})
        assert generate_requests(SMALL) != generate_requests(other)

    def test_arrivals_are_open_loop_and_increasing(self):
        requests = generate_requests(SMALL)
        arrivals = [r.arrival_s for r in requests]
        assert arrivals == sorted(arrivals)
        assert all(a > 0 for a in arrivals)

    def test_requests_reference_loaded_vectors_only(self):
        service = BitmapQueryService(ServiceConfig())
        build_datasets(SMALL, service)
        # submission validates every vector name against the dataset
        for request in generate_requests(SMALL):
            service.submit_request(request)

    def test_mix_controls_kinds(self):
        spec = ServiceLoadSpec(
            **{**SMALL.__dict__, "mix": (("and", 1.0),)}
        )
        assert {r.op for r in generate_requests(spec)} == {"and"}


class TestRun:
    def test_end_to_end_with_oracle_parity(self):
        config = ServiceConfig(keep_bits=True)
        service, stats = run_service_load(SMALL, config)
        assert stats.submitted == SMALL.n_requests
        assert stats.completed + stats.rejected == SMALL.n_requests
        assert service.verify_results() == stats.completed

    def test_runs_on_host_backends_too(self):
        from repro.backends.config import SystemConfig

        config = ServiceConfig(
            system=SystemConfig(backend="ideal"), host_shards=4
        )
        mix = (("and", 1.0), ("or", 1.0), ("range", 0.5))
        spec = ServiceLoadSpec(**{**SMALL.__dict__, "mix": mix})
        _, stats = run_service_load(spec, config)
        assert stats.completed == spec.n_requests

    @pytest.mark.slow
    def test_full_scale_sixteen_tenants_verify_every_result(self):
        spec = ServiceLoadSpec(
            n_tenants=16,
            vectors_per_tenant=4,
            vector_bits=1024,
            index_events=1024,
            n_requests=512,
            arrival_rate_per_s=2e6,
            seed=3,
        )
        config = ServiceConfig(max_batch=16, keep_bits=True)
        service, stats = run_service_load(spec, config)
        assert stats.completed + stats.rejected == spec.n_requests
        assert service.verify_results() == stats.completed
        assert stats.coalesced_requests > 0
