"""Tests for the beyond-paper extension: channel-striped placement +
overlapped chunk execution.

The paper serialises the chunks of a long vector (Fig. 9 turning point
B).  The extension stripes chunk c of every co-allocated vector onto
channel ``c % channels`` and batches the chunks' command streams, so the
controller overlaps them across channels.
"""

import numpy as np
import pytest

from repro.core.pinatubo import PinatuboSystem
from repro.memsim.address import OpLocality
from repro.memsim.geometry import MemoryGeometry
from repro.runtime.api import PimRuntime
from repro.runtime.os_mm import PimMemoryManager, PlacementPolicy


GEOM = MemoryGeometry(
    channels=4,
    ranks_per_channel=1,
    chips_per_rank=1,
    banks_per_chip=2,
    subarrays_per_bank=4,
    rows_per_subarray=32,
    mats_per_subarray=1,
    cols_per_mat=2048,
    mux_ratio=8,
)

LONG_BITS = 4 * GEOM.row_bits  # four chunks -> one per channel


@pytest.fixture
def striped_rt():
    return PimRuntime(
        PinatuboSystem.pcm(geometry=GEOM), policy=PlacementPolicy.CHANNEL_STRIPED
    )


@pytest.fixture
def serial_rt():
    return PimRuntime(
        PinatuboSystem.pcm(geometry=GEOM), policy=PlacementPolicy.PIM_AWARE
    )


class TestStripedPlacement:
    def test_chunks_land_on_distinct_channels(self, striped_rt):
        h = striped_rt.pim_malloc(LONG_BITS, "g")
        channels = [
            striped_rt.manager.frame_address(f).channel for f in h.frames
        ]
        assert channels == [0, 1, 2, 3]

    def test_chunk_c_of_all_vectors_shares_subarray(self, striped_rt):
        a = striped_rt.pim_malloc(LONG_BITS, "g")
        b = striped_rt.pim_malloc(LONG_BITS, "g")
        for fa, fb in zip(a.frames, b.frames):
            addr_a = striped_rt.manager.frame_address(fa)
            addr_b = striped_rt.manager.frame_address(fb)
            assert addr_a.same_subarray(addr_b)

    def test_spills_stay_on_channel(self, striped_rt):
        # exhaust channel-0 subarray of the group, force a spill
        rows = GEOM.rows_per_subarray
        handles = [striped_rt.pim_malloc(LONG_BITS, "g") for _ in range(rows + 2)]
        channels = {
            striped_rt.manager.frame_address(h.frames[0]).channel
            for h in handles
        }
        assert channels == {0}

    def test_free_and_reuse(self, striped_rt):
        free_before = striped_rt.manager.total_free_rows
        h = striped_rt.pim_malloc(LONG_BITS, "g")
        striped_rt.pim_free(h)
        assert striped_rt.manager.total_free_rows == free_before
        h2 = striped_rt.pim_malloc(LONG_BITS, "g")
        # reallocation keeps the channel striping
        channels = [striped_rt.manager.frame_address(f).channel for f in h2.frames]
        assert channels == [0, 1, 2, 3]


class TestOverlappedExecution:
    def _run(self, rt, overlap):
        rng = np.random.default_rng(1)
        a_bits = rng.integers(0, 2, LONG_BITS).astype(np.uint8)
        b_bits = rng.integers(0, 2, LONG_BITS).astype(np.uint8)
        a = rt.pim_malloc(LONG_BITS, "g")
        b = rt.pim_malloc(LONG_BITS, "g")
        dest = rt.pim_malloc(LONG_BITS, "g")
        rt.pim_write(a, a_bits)
        rt.pim_write(b, b_bits)
        result = rt.pim_op("or", dest, [a, b], overlap_chunks=overlap)
        got = rt.pim_read(dest)
        np.testing.assert_array_equal(got, a_bits | b_bits)
        return result

    def test_functionally_identical(self, striped_rt):
        self._run(striped_rt, overlap=True)  # asserts correctness inside

    def test_overlap_shrinks_latency_when_striped(self, striped_rt, serial_rt):
        serial = self._run(serial_rt, overlap=False)
        overlapped = self._run(striped_rt, overlap=True)
        # 4 chunks on 4 channels: near-4x on the chunk-serial part
        assert overlapped.latency < serial.latency / 2.5

    def test_overlap_without_striping_is_noop(self, serial_rt):
        a = self._run(serial_rt, overlap=False)
        rt2 = PimRuntime(
            PinatuboSystem.pcm(geometry=GEOM), policy=PlacementPolicy.PIM_AWARE
        )
        b = self._run(rt2, overlap=True)
        # same channel -> controller serialises the batch anyway
        assert b.latency == pytest.approx(a.latency, rel=0.05)

    def test_energy_unchanged_by_overlap(self, striped_rt, serial_rt):
        serial = self._run(serial_rt, overlap=False)
        overlapped = self._run(striped_rt, overlap=True)
        # overlap hides latency; it does not create or save energy
        assert overlapped.energy == pytest.approx(serial.energy, rel=0.05)

    def test_ops_stay_intra_subarray(self, striped_rt):
        result = self._run(striped_rt, overlap=True)
        assert set(result.localities) == {OpLocality.INTRA_SUBARRAY}


class TestManagerEdgeCases:
    def test_striped_out_of_memory_on_channel(self):
        mm = PimMemoryManager(GEOM, PlacementPolicy.CHANNEL_STRIPED)
        per_channel = GEOM.total_rows // GEOM.channels
        # fill channel 0 completely via 1-row allocations in one group
        mm.allocate_rows(per_channel * GEOM.channels, "g")
        with pytest.raises(MemoryError):
            mm.allocate_rows(1, "g")
