"""Tests for the area-overhead model (paper Fig. 13)."""

import pytest

from repro.energy.area import AreaModel
from repro.energy.nvsim import ChipModel
from repro.memsim.geometry import DEFAULT_GEOMETRY, MemoryGeometry
from repro.nvm.technology import get_technology


@pytest.fixture(scope="module")
def model():
    return AreaModel()


class TestPaperFigure13:
    """E8: the headline area numbers."""

    def test_pinatubo_total_near_0_9_percent(self, model):
        frac = model.pinatubo().overhead_fraction
        assert 0.007 <= frac <= 0.011  # paper: 0.9 %

    def test_acpim_total_near_6_4_percent(self, model):
        frac = model.acpim().overhead_fraction
        assert 0.055 <= frac <= 0.072  # paper: 6.4 %

    def test_acpim_much_larger_than_pinatubo(self, model):
        ratio = model.acpim().overhead_fraction / model.pinatubo().overhead_fraction
        assert ratio > 5

    def test_inter_sub_dominates_pinatubo(self, model):
        report = model.pinatubo()
        breakdown = report.breakdown()
        assert next(iter(breakdown)) == "inter-sub"
        assert report.fraction("inter-sub") == pytest.approx(0.0072, rel=0.15)

    def test_inter_bank_fraction(self, model):
        assert model.pinatubo().fraction("inter-bank") == pytest.approx(
            0.0009, rel=0.2
        )

    def test_xor_fraction(self, model):
        assert model.pinatubo().fraction("xor") == pytest.approx(0.0006, rel=0.2)

    def test_wl_act_fraction(self, model):
        assert model.pinatubo().fraction("wl act") == pytest.approx(0.0005, rel=0.2)

    def test_and_or_fraction(self, model):
        assert model.pinatubo().fraction("and/or") == pytest.approx(0.0002, rel=0.25)

    def test_intra_sub_total(self, model):
        # paper: intra-sub 0.13 % (xor + wl act + and/or)
        assert model.intra_subarray_fraction() == pytest.approx(0.0013, rel=0.2)


class TestStructure:
    def test_dropping_xor_removes_component(self, model):
        with_xor = model.pinatubo(xor_supported=True)
        without = model.pinatubo(xor_supported=False)
        assert "xor" not in without.components
        assert without.total_overhead < with_xor.total_overhead

    def test_overhead_scales_with_banks(self):
        small = AreaModel(MemoryGeometry(banks_per_chip=4))
        big = AreaModel(MemoryGeometry(banks_per_chip=16))
        # inter-sub buffers are per bank: more banks -> more add-on area,
        # while chip area grows proportionally to capacity too; the
        # *fraction* stays roughly constant but absolute area grows.
        assert (
            big.pinatubo().components["inter-sub"]
            > small.pinatubo().components["inter-sub"]
        )

    def test_report_breakdown_sums_to_total(self, model):
        report = model.pinatubo()
        assert sum(report.components.values()) == pytest.approx(
            report.total_overhead
        )

    def test_breakdown_fractions_sorted(self, model):
        fracs = list(model.pinatubo().breakdown().values())
        assert fracs == sorted(fracs, reverse=True)


class TestChipModel:
    def test_component_counts(self):
        chip = ChipModel(DEFAULT_GEOMETRY, get_technology("pcm"))
        g = DEFAULT_GEOMETRY
        assert chip.subarrays == g.banks_per_chip * g.subarrays_per_bank
        assert chip.mats == chip.subarrays * g.mats_per_subarray
        assert chip.sense_amps == chip.mats * g.cols_per_mat // g.mux_ratio
        assert chip.lwl_drivers == chip.mats * g.rows_per_subarray
        assert chip.cells == 8 * 32 * 512 * g.chip_row_bits

    def test_chip_is_8_gigabit(self):
        chip = ChipModel(DEFAULT_GEOMETRY, get_technology("pcm"))
        assert chip.cells == 8 * (1 << 30)

    def test_energies_positive_and_monotone(self):
        chip = ChipModel(DEFAULT_GEOMETRY, get_technology("pcm"))
        assert chip.activation_energy(2) == pytest.approx(
            2 * chip.activation_energy(1)
        )
        assert chip.sense_energy(100) < chip.sense_energy(100, extra_references=1)
        assert chip.write_energy(10, 10) > 0
        assert chip.buffer_logic_energy(64) > 0

    def test_validation(self):
        chip = ChipModel(DEFAULT_GEOMETRY, get_technology("pcm"))
        with pytest.raises(ValueError):
            chip.activation_energy(0)
        with pytest.raises(ValueError):
            chip.sense_energy(-1)
        with pytest.raises(ValueError):
            chip.write_energy(-1, 0)
        with pytest.raises(ValueError):
            chip.buffer_logic_energy(-1)

    def test_report_contents(self):
        chip = ChipModel(DEFAULT_GEOMETRY, get_technology("pcm"))
        text = chip.report()
        assert "8.0 Gb" in text
        assert "tRCD 18.3" in text
        assert f"{chip.sense_amps:,}" in text
        assert "mm^2" in text
