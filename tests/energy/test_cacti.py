"""Tests for the memory-system cost model."""

import pytest

from repro.energy.cacti import CACHELINE_BYTES, MemorySystemModel
from repro.memsim.timing import DDR3_1600
from repro.nvm.technology import get_technology


@pytest.fixture
def dram():
    return MemorySystemModel.dram()


@pytest.fixture
def pcm():
    return MemorySystemModel.nvm(get_technology("pcm"))


class TestAccessCosts:
    def test_read_latency_components(self, dram):
        cost = dram.cacheline_read()
        t = DDR3_1600
        expected = t.t_rcd + t.t_cl + t.transfer_time(CACHELINE_BYTES)
        assert cost.latency == pytest.approx(expected)

    def test_write_slower_on_pcm(self, dram, pcm):
        assert pcm.cacheline_write().latency > dram.cacheline_write().latency

    def test_pcm_read_faster_activate_slower_sense(self, dram, pcm):
        # PCM tCL(8.9) < DRAM tCL(13.75) but tRCD 18.3 > 13.75; total read
        # latencies are comparable, not orders apart.
        ratio = pcm.cacheline_read().latency / dram.cacheline_read().latency
        assert 0.5 < ratio < 2.0

    def test_energies_positive(self, dram, pcm):
        for model in (dram, pcm):
            assert model.cacheline_read().energy > 0
            assert model.cacheline_write().energy > 0

    def test_pcm_write_energy_exceeds_read(self, pcm):
        assert pcm.cacheline_write().energy > pcm.cacheline_read().energy


class TestStreaming:
    def test_peak_bandwidth(self, dram):
        assert dram.peak_bandwidth == pytest.approx(4 * 12.8e9)

    def test_stream_latency_is_bandwidth_limited(self, dram):
        n = 1 << 20
        cost = dram.stream_cost(n)
        assert cost.latency == pytest.approx(n / dram.peak_bandwidth)

    def test_stream_energy_scales_linearly(self, dram):
        a = dram.stream_cost(1000).energy
        b = dram.stream_cost(2000).energy
        assert b == pytest.approx(2 * a, rel=1e-9)

    def test_write_fraction_raises_energy_on_pcm(self, pcm):
        read_only = pcm.stream_cost(1 << 16, write_fraction=0.0)
        with_writes = pcm.stream_cost(1 << 16, write_fraction=0.5)
        assert with_writes.energy > read_only.energy

    def test_zero_bytes(self, dram):
        cost = dram.stream_cost(0)
        assert cost.latency == 0.0
        assert cost.energy == 0.0


class TestValidation:
    def test_bad_channels(self):
        with pytest.raises(ValueError):
            MemorySystemModel(DDR3_1600, channels=0)

    def test_bad_stream_args(self, dram):
        with pytest.raises(ValueError):
            dram.stream_cost(-1)
        with pytest.raises(ValueError):
            dram.stream_cost(10, write_fraction=1.5)
