"""Registry behaviour + the protocol's own guardrails."""

import numpy as np
import pytest

from repro.backends import (
    ALL_OPS,
    BackendCapabilities,
    BulkBitwiseBackend,
    RunStats,
    SystemConfig,
    bitwise_oracle,
    build_system,
    registry,
)
from repro.backends.registry import BackendRegistry

EXPECTED_BACKENDS = {
    "acpim",
    "ideal",
    "kernel",
    "pinatubo",
    "sdram",
    "sdram_functional",
    "simd",
}


class TestStockRegistry:
    def test_all_stock_backends_registered(self):
        assert set(registry.names()) == EXPECTED_BACKENDS
        assert len(registry) == len(EXPECTED_BACKENDS)
        for name in EXPECTED_BACKENDS:
            assert name in registry
        assert list(iter(registry)) == sorted(EXPECTED_BACKENDS)

    def test_unknown_name_lists_known(self):
        with pytest.raises(ValueError, match="sdram_functional"):
            registry.create("mram")

    def test_build_system_uses_config_backend(self):
        backend = build_system(SystemConfig(backend="pinatubo", max_rows=2))
        assert backend.name == "Pinatubo-2"

    def test_create_without_config_uses_defaults(self):
        assert registry.create("pinatubo").name == "Pinatubo-128"

    def test_every_backend_builds_fresh_instances(self):
        a, b = registry.create("simd"), registry.create("simd")
        assert a is not b


class TestCapabilityListing:
    def test_capabilities_match_backend_instances(self):
        for name in EXPECTED_BACKENDS:
            cached = registry.capabilities(name)
            assert cached == registry.create(name).capabilities()

    def test_capabilities_are_cached(self):
        assert registry.capabilities("simd") is registry.capabilities("simd")

    def test_describe_names_ops_and_flavour(self):
        line = registry.describe("pinatubo")
        assert line.startswith("pinatubo:")
        for op in ("and", "or", "xor", "inv"):
            assert op in line
        assert "functional" in line
        assert "in-memory" in line

    def test_list_covers_every_backend(self):
        lines = registry.list()
        assert len(lines) == len(EXPECTED_BACKENDS)
        for name, line in zip(sorted(EXPECTED_BACKENDS), lines):
            assert line.startswith(f"{name}:")

    def test_repr_includes_capabilities(self):
        text = repr(registry)
        assert f"BackendRegistry({len(EXPECTED_BACKENDS)} backends)" in text
        assert "sdram: ops={and, or}" in text

    def test_caches_are_per_registry(self):
        reg = BackendRegistry()
        reg.register("null", lambda config: _NullBackend(config))
        assert reg.capabilities("null").max_fanin == 2
        other = BackendRegistry()
        with pytest.raises(ValueError, match="unknown backend"):
            other.capabilities("null")


class TestCustomRegistration:
    def test_register_and_create(self):
        reg = BackendRegistry()

        @reg.register("null")
        def build(config):
            return _NullBackend(config)

        backend = reg.create("null")
        assert isinstance(backend, _NullBackend)
        assert reg.names() == ["null"]

    def test_duplicate_name_rejected(self):
        reg = BackendRegistry()
        reg.register("x", lambda config: _NullBackend(config))
        with pytest.raises(ValueError, match="already registered"):
            reg.register("x", lambda config: _NullBackend(config))

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            BackendRegistry().register("")


class _NullBackend(BulkBitwiseBackend):
    name = "null"

    def __init__(self, config):
        self.config = config

    def capabilities(self):
        return BackendCapabilities(
            ops=frozenset(ALL_OPS), max_fanin=2, in_memory=False,
            placement_sensitive=False, functional=False,
        )

    def bitwise(self, op, operands, access=None):
        from repro.backends.protocol import BackendRun

        bits = bitwise_oracle(op, operands)
        stats = RunStats(
            backend=self.name, op=op, latency=0.0, energy=0.0,
            bits_processed=int(bits.size), in_memory=False,
        )
        return BackendRun(bits=bits, stats=stats.validate())


class TestProtocolGuardrails:
    def test_default_bitwise_many_loops(self):
        backend = _NullBackend(SystemConfig(backend="pinatubo"))
        a = np.array([1, 0, 1], dtype=np.uint8)
        b = np.array([0, 0, 1], dtype=np.uint8)
        runs = backend.bitwise_many([("or", [a, b]), ("and", [a, b])])
        assert np.array_equal(runs[0].bits, a | b)
        assert np.array_equal(runs[1].bits, a & b)

    def test_runstats_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            RunStats(
                backend="x", op="or", latency=-1.0, energy=0.0,
                bits_processed=1, in_memory=False,
            ).validate()

    def test_runstats_rejects_energy_without_time(self):
        with pytest.raises(ValueError):
            RunStats(
                backend="x", op="or", latency=0.0, energy=1.0,
                bits_processed=1, in_memory=False,
            ).validate()

    def test_runstats_rejects_unknown_op(self):
        with pytest.raises(ValueError):
            RunStats(
                backend="x", op="nand", latency=1.0, energy=1.0,
                bits_processed=1, in_memory=False,
            ).validate()

    def test_capabilities_reject_unknown_ops(self):
        with pytest.raises(ValueError):
            BackendCapabilities(
                ops=frozenset({"nand"}), max_fanin=2, in_memory=True,
                placement_sensitive=False, functional=False,
            )

    def test_oracle_rejects_bad_requests(self):
        a = np.zeros(8, dtype=np.uint8)
        with pytest.raises(ValueError):
            bitwise_oracle("nand", [a, a])
        with pytest.raises(ValueError):
            bitwise_oracle("inv", [a, a])
