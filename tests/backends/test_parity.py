"""Parity: every registered backend agrees with the numpy oracle.

The protocol's core promise: whatever substrate executes a bulk bitwise
op, the *bits* are the bits, and the :class:`RunStats` record obeys one
contract.  OR/AND/XOR/INV run through both the single-op and the batched
entry points of all seven stock backends.
"""

import numpy as np
import pytest

from repro.backends import (
    ALL_OPS,
    RunStats,
    SystemConfig,
    bitwise_oracle,
    build_system,
    registry,
)

N_BITS = 700  # short of a row on every geometry; exercises padding


@pytest.fixture(scope="module")
def operands():
    rng = np.random.default_rng(2016)
    return [rng.integers(0, 2, N_BITS, dtype=np.uint8) for _ in range(3)]


@pytest.fixture(scope="module", params=sorted(registry.names()))
def backend(request):
    return build_system(SystemConfig(backend=request.param))


def _check_stats(stats, backend, op):
    assert isinstance(stats, RunStats)
    for field in RunStats.FIELDS:
        assert hasattr(stats, field), field
    assert stats.backend == backend.name
    assert stats.op == op
    assert np.isfinite(stats.latency) and stats.latency >= 0
    assert np.isfinite(stats.energy) and stats.energy >= 0
    # zero time must mean zero energy (Ideal), never energy-for-free
    if stats.latency == 0:
        assert stats.energy == 0
    assert stats.bits_processed >= N_BITS
    assert stats.steps >= 0
    assert isinstance(stats.in_memory, bool)
    stats.validate()  # the contract's own self-check must agree


@pytest.mark.parametrize("op", ALL_OPS)
def test_bitwise_matches_oracle(backend, operands, op):
    ops = operands[:1] if op == "inv" else operands
    run = backend.bitwise(op, ops)
    assert np.array_equal(run.bits, bitwise_oracle(op, ops)), backend.name
    assert run.bits.dtype == np.uint8
    _check_stats(run.stats, backend, op)


def test_bitwise_many_matches_oracle(backend, operands):
    calls = [
        ("or", operands),
        ("and", operands[:2]),
        ("xor", operands[:2]),
        ("inv", operands[:1]),
    ]
    runs = backend.bitwise_many(calls)
    assert len(runs) == len(calls)
    for (op, ops), run in zip(calls, runs):
        assert np.array_equal(run.bits, bitwise_oracle(op, ops)), (
            backend.name,
            op,
        )
        _check_stats(run.stats, backend, op)


def test_capabilities_are_honest(backend, operands):
    caps = backend.capabilities()
    assert caps.max_fanin >= 1
    for op in ALL_OPS:
        assert caps.supports(op) == (op in caps.ops)
    # a declared op must actually run
    for op in sorted(caps.ops):
        ops = operands[:1] if op == "inv" else operands[:2]
        backend.bitwise(op, ops)


def test_batched_stats_match_singles_for_cost_models(backend, operands):
    """Cost-model backends: the loop fallback prices each call the same
    as a lone call (the Pinatubo backend legitimately differs -- one
    batch amortises mode switches)."""
    if backend.capabilities().functional:
        pytest.skip("functional backends may amortise across a batch")
    single = backend.bitwise("or", operands).stats
    batched = backend.bitwise_many([("or", operands)])[0].stats
    assert batched.latency == single.latency
    assert batched.energy == single.energy


def test_mismatched_operand_lengths_rejected(backend):
    a = np.zeros(64, dtype=np.uint8)
    b = np.zeros(65, dtype=np.uint8)
    with pytest.raises(ValueError):
        backend.bitwise("or", [a, b])


def test_inv_takes_exactly_one_operand(backend, operands):
    with pytest.raises(ValueError):
        backend.bitwise("inv", operands[:2])
