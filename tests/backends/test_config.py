"""SystemConfig: round-trip fidelity and loud rejection of bad configs."""

import pytest

from repro.backends import GEOMETRIES, SystemConfig
from repro.memsim.geometry import DEFAULT_GEOMETRY, DRAM_GEOMETRY
from repro.runtime.os_mm import PlacementPolicy


class TestRoundTrip:
    def test_default_round_trips(self):
        cfg = SystemConfig()
        assert SystemConfig.from_dict(cfg.to_dict()) == cfg

    @pytest.mark.parametrize(
        "cfg",
        [
            SystemConfig(backend="pinatubo", max_rows=2),
            SystemConfig(backend="simd", cpu_memory="pcm"),
            SystemConfig(backend="sdram", geometry="dram"),
            SystemConfig(backend="acpim", technology="reram"),
            SystemConfig(
                backend="ideal",
                placement="interleaved",
                batch_commands=False,
                timing_scale=2.0,
                energy_scale=0.5,
            ),
        ],
    )
    def test_non_defaults_round_trip(self, cfg):
        data = cfg.to_dict()
        assert isinstance(data, dict)
        rebuilt = SystemConfig.from_dict(data)
        assert rebuilt == cfg
        assert rebuilt.to_dict() == data

    def test_to_dict_is_json_ready(self):
        import json

        blob = json.dumps(SystemConfig(max_rows=8).to_dict())
        assert SystemConfig.from_dict(json.loads(blob)) == SystemConfig(max_rows=8)


class TestResolution:
    def test_geometry_objects(self):
        assert SystemConfig().geometry_object() is DEFAULT_GEOMETRY
        assert SystemConfig(geometry="dram").geometry_object() is DRAM_GEOMETRY
        assert set(GEOMETRIES) == {"default", "dram"}

    def test_technology_object(self):
        assert SystemConfig(technology="stt").technology_object().cell_kind == (
            "STT-MRAM"
        )

    def test_placement_policy(self):
        assert SystemConfig().placement_policy() is PlacementPolicy.PIM_AWARE
        cfg = SystemConfig(placement="interleaved")
        assert cfg.placement_policy() is PlacementPolicy.INTERLEAVED


class TestRejection:
    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown SystemConfig keys"):
            SystemConfig.from_dict({"backend": "pinatubo", "rowz": 2})

    def test_unknown_technology(self):
        with pytest.raises(ValueError, match="unknown technology"):
            SystemConfig(technology="flux-capacitor")

    def test_unknown_geometry(self):
        with pytest.raises(ValueError, match="unknown geometry"):
            SystemConfig(geometry="hbm")

    def test_unknown_placement(self):
        with pytest.raises(ValueError, match="unknown placement"):
            SystemConfig(placement="chaotic")

    def test_unknown_cpu_memory(self):
        with pytest.raises(ValueError, match="unknown cpu_memory"):
            SystemConfig(cpu_memory="sram")

    def test_empty_backend(self):
        with pytest.raises(ValueError, match="backend"):
            SystemConfig(backend="")

    def test_max_rows_below_two(self):
        with pytest.raises(ValueError, match="max_rows"):
            SystemConfig(max_rows=1)

    def test_max_rows_beyond_sensing_limit(self):
        # PCM's validated multi-row OR limit is 128
        with pytest.raises(ValueError, match="sensing limit"):
            SystemConfig(technology="pcm", max_rows=256)

    def test_max_rows_invalid_for_stt(self):
        # STT-MRAM's low TMR contrast caps one-step ops at 2 rows
        with pytest.raises(ValueError, match="sensing limit"):
            SystemConfig(technology="stt", max_rows=4)

    def test_stt_two_rows_allowed(self):
        assert SystemConfig(technology="stt", max_rows=2).max_rows == 2

    @pytest.mark.parametrize("field", ["timing_scale", "energy_scale"])
    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_bad_scales(self, field, bad):
        with pytest.raises(ValueError, match=field):
            SystemConfig(**{field: bad})

    def test_frozen(self):
        with pytest.raises(AttributeError):
            SystemConfig().backend = "simd"
