"""Tests for the Pinatubo execution engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.executor import PinatuboExecutor, PlacementError
from repro.memsim.address import OpLocality, RowAddress
from repro.memsim.geometry import MemoryGeometry
from repro.nvm.technology import get_technology


#: Small geometry: row = 512 bits, 2 channels, enough structure for every
#: locality class, cheap enough for hundreds of tests.
SMALL = MemoryGeometry(
    channels=2,
    ranks_per_channel=1,
    chips_per_rank=1,
    banks_per_chip=2,
    subarrays_per_bank=4,
    rows_per_subarray=16,
    mats_per_subarray=1,
    cols_per_mat=512,
    mux_ratio=8,
)


@pytest.fixture
def ex():
    return PinatuboExecutor(geometry=SMALL, technology=get_technology("pcm"))


def frames_at(ex, channel=0, rank=0, bank=0, subarray=0):
    base = ex.mapper.encode(RowAddress(channel, rank, bank, subarray, 0))
    return list(range(base, base + SMALL.rows_per_subarray))


def fill(ex, frames, seed=0, n_bits=None):
    """Write random bits into frames; returns the bit arrays."""
    rng = np.random.default_rng(seed)
    n_bits = n_bits or SMALL.row_bits
    out = {}
    for f in frames:
        bits = rng.integers(0, 2, size=n_bits).astype(np.uint8)
        ex.memory.write_bits(f, bits)
        out[f] = bits
    return out


class TestFunctionalCorrectness:
    @pytest.mark.parametrize("op,n", [
        ("or", 2), ("or", 5), ("or", 64),
        ("and", 2), ("and", 4),
        ("xor", 2), ("xor", 3),
    ])
    def test_matches_numpy_oracle(self, ex, op, n):
        sub = frames_at(ex)
        extra = frames_at(ex, subarray=1) + frames_at(ex, subarray=2) + frames_at(
            ex, subarray=3
        ) + frames_at(ex, bank=1) + frames_at(ex, bank=1, subarray=1) + frames_at(
            ex, bank=1, subarray=2
        ) + frames_at(ex, bank=1, subarray=3)
        all_frames = sub + extra
        srcs = all_frames[:n]
        dest = all_frames[n]
        data = fill(ex, srcs, seed=n)
        ex.bitwise(op, [dest], [[f] for f in srcs], SMALL.row_bits)
        oracle = data[srcs[0]].copy()
        for f in srcs[1:]:
            if op == "or":
                oracle |= data[f]
            elif op == "and":
                oracle &= data[f]
            else:
                oracle ^= data[f]
        np.testing.assert_array_equal(
            ex.memory.read_bits(dest, SMALL.row_bits), oracle
        )

    def test_inv(self, ex):
        sub = frames_at(ex)
        data = fill(ex, sub[:1])
        ex.bitwise("inv", [sub[1]], [[sub[0]]], SMALL.row_bits)
        np.testing.assert_array_equal(
            ex.memory.read_bits(sub[1], SMALL.row_bits), 1 - data[sub[0]]
        )

    def test_multi_chunk_vector(self, ex):
        # vector of 3 rows: chunks placed in subarrays 0,1,2
        srcs_a, srcs_b, dest = [], [], []
        rng = np.random.default_rng(9)
        bits_a = rng.integers(0, 2, size=3 * SMALL.row_bits).astype(np.uint8)
        bits_b = rng.integers(0, 2, size=3 * SMALL.row_bits).astype(np.uint8)
        for c in range(3):
            sub = frames_at(ex, subarray=c)
            srcs_a.append(sub[0])
            srcs_b.append(sub[1])
            dest.append(sub[2])
        ex.write_vector(srcs_a, bits_a)
        ex.write_vector(srcs_b, bits_b)
        ex.bitwise("or", dest, [srcs_a, srcs_b], 3 * SMALL.row_bits)
        got, _ = ex.read_vector(dest, 3 * SMALL.row_bits)
        np.testing.assert_array_equal(got, bits_a | bits_b)

    def test_partial_last_chunk(self, ex):
        n_bits = SMALL.row_bits + 100
        sub0, sub1 = frames_at(ex, subarray=0), frames_at(ex, subarray=1)
        srcs_a = [sub0[0], sub1[0]]
        srcs_b = [sub0[1], sub1[1]]
        dest = [sub0[2], sub1[2]]
        rng = np.random.default_rng(4)
        a = rng.integers(0, 2, size=n_bits).astype(np.uint8)
        b = rng.integers(0, 2, size=n_bits).astype(np.uint8)
        ex.write_vector(srcs_a, a)
        ex.write_vector(srcs_b, b)
        ex.bitwise("and", dest, [srcs_a, srcs_b], n_bits)
        got, _ = ex.read_vector(dest, n_bits)
        np.testing.assert_array_equal(got, a & b)


class TestDecomposition:
    def test_multirow_or_single_step(self, ex):
        sub = frames_at(ex)
        fill(ex, sub[:8])
        result = ex.bitwise("or", [sub[8]], [[f] for f in sub[:8]], SMALL.row_bits)
        assert result.steps == 1  # 8 <= 128 one-step limit

    def test_pinatubo2_or_decomposes(self):
        ex = PinatuboExecutor(
            geometry=SMALL, technology=get_technology("pcm"), max_rows=2
        )
        sub = frames_at(ex)
        fill(ex, sub[:8])
        result = ex.bitwise("or", [sub[8]], [[f] for f in sub[:8]], SMALL.row_bits)
        assert result.steps == 7  # pairwise accumulation

    def test_and_always_pairwise(self, ex):
        sub = frames_at(ex)
        fill(ex, sub[:5])
        result = ex.bitwise("and", [sub[5]], [[f] for f in sub[:5]], SMALL.row_bits)
        assert result.steps == 4

    def test_xor_pairwise(self, ex):
        sub = frames_at(ex)
        fill(ex, sub[:3])
        result = ex.bitwise("xor", [sub[3]], [[f] for f in sub[:3]], SMALL.row_bits)
        assert result.steps == 2

    def test_xor_costs_double_sense(self, ex):
        sub = frames_at(ex)
        fill(ex, sub[:2])
        xor = ex.bitwise("xor", [sub[2]], [[sub[0]], [sub[1]]], SMALL.row_bits)
        ex2 = PinatuboExecutor(geometry=SMALL, technology=get_technology("pcm"))
        sub2 = frames_at(ex2)
        fill(ex2, sub2[:2])
        orr = ex2.bitwise("or", [sub2[2]], [[sub2[0]], [sub2[1]]], SMALL.row_bits)
        assert xor.latency > orr.latency


class TestLocalityRouting:
    def test_intra_subarray_detected(self, ex):
        sub = frames_at(ex)
        fill(ex, sub[:2])
        result = ex.bitwise("or", [sub[2]], [[sub[0]], [sub[1]]], SMALL.row_bits)
        assert result.localities == {OpLocality.INTRA_SUBARRAY: 1}

    def test_inter_subarray_detected(self, ex):
        a = frames_at(ex, subarray=0)[0]
        b = frames_at(ex, subarray=1)[0]
        d = frames_at(ex, subarray=0)[1]
        fill(ex, [a, b])
        result = ex.bitwise("or", [d], [[a], [b]], SMALL.row_bits)
        assert result.localities == {OpLocality.INTER_SUBARRAY: 1}

    def test_inter_bank_detected(self, ex):
        a = frames_at(ex, bank=0)[0]
        b = frames_at(ex, bank=1)[0]
        d = frames_at(ex, bank=0)[1]
        fill(ex, [a, b])
        result = ex.bitwise("or", [d], [[a], [b]], SMALL.row_bits)
        assert result.localities == {OpLocality.INTER_BANK: 1}

    def test_cross_channel_raises(self, ex):
        a = frames_at(ex, channel=0)[0]
        b = frames_at(ex, channel=1)[0]
        d = frames_at(ex, channel=0)[1]
        fill(ex, [a, b])
        with pytest.raises(PlacementError):
            ex.bitwise("or", [d], [[a], [b]], SMALL.row_bits)

    def test_inter_ops_functionally_correct(self, ex):
        a = frames_at(ex, bank=0)[0]
        b = frames_at(ex, bank=1)[0]
        d = frames_at(ex, bank=0)[1]
        data = fill(ex, [a, b])
        ex.bitwise("xor", [d], [[a], [b]], SMALL.row_bits)
        np.testing.assert_array_equal(
            ex.memory.read_bits(d, SMALL.row_bits), data[a] ^ data[b]
        )

    def test_intra_faster_than_inter(self):
        ex1 = PinatuboExecutor(geometry=SMALL, technology=get_technology("pcm"))
        sub = frames_at(ex1)
        fill(ex1, sub[:2])
        intra = ex1.bitwise("or", [sub[2]], [[sub[0]], [sub[1]]], SMALL.row_bits)

        ex2 = PinatuboExecutor(geometry=SMALL, technology=get_technology("pcm"))
        a = frames_at(ex2, subarray=0)[0]
        b = frames_at(ex2, subarray=1)[0]
        d = frames_at(ex2, subarray=0)[1]
        fill(ex2, [a, b])
        inter = ex2.bitwise("or", [d], [[a], [b]], SMALL.row_bits)
        assert intra.latency < inter.latency


class TestNoBusTraffic:
    def test_intra_op_moves_no_data(self, ex):
        sub = frames_at(ex)
        fill(ex, sub[:2])
        result = ex.bitwise("or", [sub[2]], [[sub[0]], [sub[1]]], SMALL.row_bits)
        assert result.accounting.bus_data_bytes == 0
        assert result.accounting.bus_commands > 0  # commands only

    def test_inter_op_moves_no_ddr_data(self, ex):
        a = frames_at(ex, bank=0)[0]
        b = frames_at(ex, bank=1)[0]
        d = frames_at(ex, bank=0)[1]
        fill(ex, [a, b])
        result = ex.bitwise("or", [d], [[a], [b]], SMALL.row_bits)
        assert result.accounting.bus_data_bytes == 0

    def test_host_read_does_move_data(self, ex):
        sub = frames_at(ex)
        fill(ex, sub[:1])
        _bits, acct = ex.read_vector([sub[0]], SMALL.row_bits)
        assert acct.bus_data_bytes == SMALL.row_bytes


class TestDifferentialWriteback:
    def test_repeated_op_writes_nothing(self, ex):
        sub = frames_at(ex)
        fill(ex, sub[:2])
        first = ex.bitwise("or", [sub[2]], [[sub[0]], [sub[1]]], SMALL.row_bits)
        second = ex.bitwise("or", [sub[2]], [[sub[0]], [sub[1]]], SMALL.row_bits)
        # identical result -> zero changed bits -> cheaper writeback
        assert second.energy < first.energy


class TestModeRegister:
    def test_mode_set_once_per_op_kind(self, ex):
        sub = frames_at(ex)
        fill(ex, sub[:4])
        r1 = ex.bitwise("or", [sub[4]], [[sub[0]], [sub[1]]], SMALL.row_bits)
        r2 = ex.bitwise("or", [sub[5]], [[sub[2]], [sub[3]]], SMALL.row_bits)
        assert r1.accounting.bus_commands > r2.accounting.bus_commands
        # switching ops re-issues MRS
        r3 = ex.bitwise("and", [sub[6]], [[sub[0]], [sub[1]]], SMALL.row_bits)
        assert r3.accounting.bus_commands == r1.accounting.bus_commands


class TestValidation:
    def test_operand_count_checked(self, ex):
        sub = frames_at(ex)
        with pytest.raises(ValueError):
            ex.bitwise("or", [sub[1]], [[sub[0]]], SMALL.row_bits)
        with pytest.raises(ValueError):
            ex.bitwise("inv", [sub[2]], [[sub[0]], [sub[1]]], SMALL.row_bits)

    def test_bad_bits(self, ex):
        sub = frames_at(ex)
        with pytest.raises(ValueError):
            ex.bitwise("or", [sub[2]], [[sub[0]], [sub[1]]], 0)

    def test_too_few_frames(self, ex):
        sub = frames_at(ex)
        with pytest.raises(ValueError, match="fewer row frames"):
            ex.bitwise("or", [sub[2]], [[sub[0]], [sub[1]]], 2 * SMALL.row_bits)

    def test_read_vector_bounds(self, ex):
        sub = frames_at(ex)
        with pytest.raises(ValueError):
            ex.read_vector([sub[0]], 0)
        with pytest.raises(ValueError, match="cover"):
            ex.read_vector([sub[0]], SMALL.row_bits * 2)


class TestPropertyBased:
    @given(
        seed=st.integers(0, 2**16),
        op=st.sampled_from(["or", "and", "xor"]),
        n=st.integers(2, 6),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_operands_match_oracle(self, seed, op, n):
        ex = PinatuboExecutor(geometry=SMALL, technology=get_technology("pcm"))
        sub = frames_at(ex)
        srcs = sub[:n]
        dest = sub[n]
        data = fill(ex, srcs, seed=seed)
        ex.bitwise(op, [dest], [[f] for f in srcs], SMALL.row_bits)
        ufunc = {"or": np.bitwise_or, "and": np.bitwise_and, "xor": np.bitwise_xor}[op]
        oracle = data[srcs[0]].copy()
        for f in srcs[1:]:
            oracle = ufunc(oracle, data[f])
        np.testing.assert_array_equal(
            ex.memory.read_bits(dest, SMALL.row_bits), oracle
        )
