"""Tests for the I/O-bus result emission path (paper Section 3:
"The results can be sent to the I/O bus or written back")."""

import numpy as np
import pytest

from repro.core.executor import PinatuboExecutor
from repro.memsim.address import RowAddress
from repro.memsim.geometry import MemoryGeometry
from repro.nvm.technology import get_technology


SMALL = MemoryGeometry(
    channels=1,
    ranks_per_channel=1,
    chips_per_rank=1,
    banks_per_chip=2,
    subarrays_per_bank=4,
    rows_per_subarray=32,
    mats_per_subarray=1,
    cols_per_mat=512,
    mux_ratio=8,
)


@pytest.fixture
def ex():
    return PinatuboExecutor(geometry=SMALL, technology=get_technology("pcm"))


def fill(ex, frames, seed=0):
    rng = np.random.default_rng(seed)
    data = {}
    for f in frames:
        bits = rng.integers(0, 2, SMALL.row_bits).astype(np.uint8)
        ex.memory.write_bits(f, bits)
        data[f] = bits
    return data


class TestFunctionalCorrectness:
    @pytest.mark.parametrize("op,n", [("or", 2), ("or", 8), ("and", 2), ("xor", 2)])
    def test_matches_oracle(self, ex, op, n):
        frames = list(range(n + 1))
        data = fill(ex, frames[:n], seed=n)
        bits, result = ex.bitwise_to_host(
            op, [frames[n]], [[f] for f in frames[:n]], SMALL.row_bits
        )
        ufunc = {"or": np.bitwise_or, "and": np.bitwise_and, "xor": np.bitwise_xor}[op]
        oracle = data[0]
        for f in frames[1:n]:
            oracle = ufunc(oracle, data[f])
        np.testing.assert_array_equal(bits, oracle)

    def test_inv_to_host(self, ex):
        data = fill(ex, [0])
        bits, _ = ex.bitwise_to_host("inv", [1], [[0]], SMALL.row_bits)
        np.testing.assert_array_equal(bits, 1 - data[0])

    def test_partial_bits(self, ex):
        data = fill(ex, [0, 1])
        bits, _ = ex.bitwise_to_host("or", [2], [[0], [1]], 100)
        np.testing.assert_array_equal(bits, (data[0] | data[1])[:100])


class TestNoDestinationWear:
    def test_single_step_writes_nothing(self, ex):
        fill(ex, [0, 1])
        scratch = 2
        writes_before = ex.memory.frame_writes(scratch)
        ex.bitwise_to_host("or", [scratch], [[0], [1]], SMALL.row_bits)
        assert ex.memory.frame_writes(scratch) == writes_before

    def test_decomposed_op_wears_scratch_only_for_intermediates(self):
        ex = PinatuboExecutor(
            geometry=SMALL, technology=get_technology("pcm"), max_rows=2
        )
        fill(ex, [0, 1, 2, 3])
        scratch = 4
        bits, result = ex.bitwise_to_host(
            "or", [scratch], [[0], [1], [2], [3]], SMALL.row_bits
        )
        # 3 combine steps: 2 intermediates written, final streamed out
        assert result.steps == 3
        assert ex.memory.frame_writes(scratch) == 2

    def test_result_crosses_the_bus(self, ex):
        fill(ex, [0, 1])
        _bits, result = ex.bitwise_to_host("or", [2], [[0], [1]], SMALL.row_bits)
        assert result.accounting.bus_data_bytes == SMALL.row_bytes


class TestCostComparison:
    def test_host_emission_vs_writeback_plus_read(self, ex):
        """Fused emission must beat writeback followed by a host read."""
        fill(ex, [0, 1], seed=1)
        _bits, fused = ex.bitwise_to_host("or", [2], [[0], [1]], SMALL.row_bits)

        ex2 = PinatuboExecutor(geometry=SMALL, technology=get_technology("pcm"))
        fill(ex2, [0, 1], seed=1)
        wb = ex2.bitwise("or", [2], [[0], [1]], SMALL.row_bits)
        _bits2, rd = ex2.read_vector([2], SMALL.row_bits)
        assert fused.latency < wb.latency + rd.latency

    def test_writeback_cheaper_when_result_stays(self, ex):
        """If the result is consumed in memory, writeback avoids the bus."""
        fill(ex, [0, 1], seed=2)
        _bits, fused = ex.bitwise_to_host("or", [2], [[0], [1]], SMALL.row_bits)
        ex2 = PinatuboExecutor(geometry=SMALL, technology=get_technology("pcm"))
        fill(ex2, [0, 1], seed=2)
        wb = ex2.bitwise("or", [2], [[0], [1]], SMALL.row_bits)
        assert wb.accounting.bus_data_bytes == 0
        assert fused.accounting.bus_data_bytes > 0


class TestBufferedPathEmission:
    def test_inter_bank_to_host(self, ex):
        a = ex.mapper.encode(RowAddress(0, 0, 0, 0, 0))
        b = ex.mapper.encode(RowAddress(0, 0, 1, 0, 0))
        scratch = ex.mapper.encode(RowAddress(0, 0, 0, 0, 1))
        data = fill(ex, [a, b], seed=3)
        bits, result = ex.bitwise_to_host("or", [scratch], [[a], [b]], SMALL.row_bits)
        np.testing.assert_array_equal(bits, data[a] | data[b])
        assert result.accounting.bus_data_bytes == SMALL.row_bytes
        assert ex.memory.frame_writes(scratch) == 0


class TestValidation:
    def test_bad_args(self, ex):
        fill(ex, [0, 1])
        with pytest.raises(ValueError):
            ex.bitwise_to_host("or", [2], [[0]], SMALL.row_bits)
        with pytest.raises(ValueError):
            ex.bitwise_to_host("or", [2], [[0], [1]], 0)
        with pytest.raises(ValueError, match="fewer row frames"):
            ex.bitwise_to_host("or", [2], [[0], [1]], 2 * SMALL.row_bits)
