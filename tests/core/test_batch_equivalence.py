"""Batched vs per-command pricing must be indistinguishable.

The acceptance bar for the batched execution engine: for identical
workloads, the batched path (``batch_commands=True``, the default) and
the legacy per-``execute`` path produce

- identical command counts and per-kind energy breakdowns,
- latency and energy within 1e-12 relative,
- identical functional memory contents and bus ledgers.
"""

import numpy as np
import pytest

from repro.core.executor import PlacementError
from repro.core.pinatubo import PinatuboSystem
from repro.memsim.address import RowAddress
from repro.memsim.controller import Command, CommandBatch, CommandKind
from repro.memsim.geometry import MemoryGeometry
from repro.memsim.timing import nvm_timing
from repro.nvm.technology import get_technology

REL = 1e-12

GEOM = MemoryGeometry(
    channels=2,
    ranks_per_channel=1,
    chips_per_rank=1,
    banks_per_chip=2,
    subarrays_per_bank=4,
    rows_per_subarray=64,
    mats_per_subarray=1,
    cols_per_mat=2048,
    mux_ratio=8,
)


def make_system(batch_commands: bool, max_rows=4) -> PinatuboSystem:
    return PinatuboSystem(
        get_technology("pcm"),
        GEOM,
        max_rows=max_rows,
        batch_commands=batch_commands,
    )


def subarray_frames(system: PinatuboSystem, bank: int, sub: int) -> list:
    base = system.mapper.encode(RowAddress(0, 0, bank, sub, 0))
    return list(range(base, base + GEOM.rows_per_subarray))


def fill_frames(systems, frames, seed):
    """Write identical random rows into every system's frames."""
    rng = np.random.default_rng(seed)
    for frame in frames:
        data = rng.integers(0, 256, size=GEOM.row_bytes).astype(np.uint8)
        for system in systems:
            system.memory.write_frame(frame, data)


def assert_accounting_equal(a, b):
    assert a.latency == pytest.approx(b.latency, rel=REL)
    assert a.energy == pytest.approx(b.energy, rel=REL)
    assert a.in_memory_steps == b.in_memory_steps
    assert a.bus_commands == b.bus_commands
    assert a.bus_data_bytes == b.bus_data_bytes
    assert a.bits_processed == b.bits_processed
    assert a.locality_counts == b.locality_counts
    assert set(a.energy_by_kind) == set(b.energy_by_kind)
    for kind, e in a.energy_by_kind.items():
        assert e == pytest.approx(b.energy_by_kind[kind], rel=REL)


def assert_result_equal(a, b):
    assert a.op == b.op
    assert a.steps == b.steps
    assert a.localities == b.localities
    assert_accounting_equal(a.accounting, b.accounting)


def assert_systems_equal(sys_a, sys_b, frames):
    for frame in frames:
        assert np.array_equal(
            sys_a.memory.frame_bytes(frame), sys_b.memory.frame_bytes(frame)
        )
    for bus_a, bus_b in zip(sys_a.controller.buses, sys_b.controller.buses):
        assert bus_a.stats.commands == bus_b.stats.commands
        assert bus_a.stats.data_bytes == bus_b.stats.data_bytes
        assert bus_a.stats.busy_time == pytest.approx(bus_b.stats.busy_time, rel=REL)
        assert bus_a.stats.energy == pytest.approx(bus_b.stats.energy, rel=REL)


class TestControllerLevel:
    """execute() vs execute_batch() on the same fenced stream."""

    @pytest.fixture
    def timing(self):
        return nvm_timing(get_technology("pcm"))

    def _random_segments(self, seed, n_segments=7):
        rng = np.random.default_rng(seed)
        kinds = list(CommandKind)
        segments = []
        for _ in range(n_segments):
            commands = []
            for _ in range(rng.integers(1, 9)):
                kind = kinds[rng.integers(0, len(kinds))]
                commands.append(
                    Command(
                        kind,
                        channel=int(rng.integers(0, GEOM.channels)),
                        n_bits=int(rng.integers(0, 4096)),
                        n_steps=int(rng.integers(1, 9)),
                        transfer_bytes=int(rng.integers(0, 512)),
                    )
                )
            segments.append(commands)
        return segments

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_batch_matches_segmented_execute(self, timing, seed):
        from repro.memsim.controller import MemoryController

        ctrl_a = MemoryController(GEOM, timing)
        ctrl_b = MemoryController(GEOM, timing)
        segments = self._random_segments(seed)

        total_a = None
        for commands in segments:
            stats = ctrl_a.execute(commands)
            total_a = stats if total_a is None else total_a.merged(stats)

        batch = CommandBatch()
        for commands in segments:
            batch.extend(commands)
            batch.fence()
        total_b = ctrl_b.execute_batch(batch)

        assert total_a.latency == pytest.approx(total_b.latency, rel=REL)
        assert total_a.energy == pytest.approx(total_b.energy, rel=REL)
        assert total_a.counts == total_b.counts
        assert set(total_a.energy_by_kind) == set(total_b.energy_by_kind)
        for kind, e in total_a.energy_by_kind.items():
            assert e == pytest.approx(total_b.energy_by_kind[kind], rel=REL)
        assert total_a.bus.commands == total_b.bus.commands
        assert total_a.bus.data_bytes == total_b.bus.data_bytes
        assert total_a.bus.busy_time == pytest.approx(total_b.bus.busy_time, rel=REL)
        for bus_a, bus_b in zip(ctrl_a.buses, ctrl_b.buses):
            assert bus_a.stats.commands == bus_b.stats.commands
            assert bus_a.stats.busy_time == pytest.approx(
                bus_b.stats.busy_time, rel=REL
            )

    def test_split_ops_sums_to_total(self, timing):
        from repro.memsim.controller import MemoryController

        ctrl = MemoryController(GEOM, timing)
        batch = CommandBatch()
        for commands in self._random_segments(9, n_segments=5):
            batch.mark()
            batch.extend(commands)
            batch.fence()
        total, per_op = ctrl.execute_batch(batch, split_ops=True)
        assert len(per_op) == 5
        assert sum(s.latency for s in per_op) == pytest.approx(
            total.latency, rel=REL
        )
        assert sum(s.energy for s in per_op) == pytest.approx(total.energy, rel=REL)
        merged_counts = {}
        for s in per_op:
            for kind, n in s.counts.items():
                merged_counts[kind] = merged_counts.get(kind, 0) + n
        assert merged_counts == total.counts


class TestExecutorLevel:
    """bitwise()/bitwise_to_host() batched vs legacy on fixed workloads."""

    def _pair(self, max_rows=4):
        sys_a = make_system(batch_commands=False, max_rows=max_rows)
        sys_b = make_system(batch_commands=True, max_rows=max_rows)
        return sys_a, sys_b

    def test_wide_or_with_accumulation(self):
        sys_a, sys_b = self._pair(max_rows=4)
        frames = subarray_frames(sys_a, bank=0, sub=0)
        sources = [[f] for f in frames[:10]]
        dest = [frames[10]]
        fill_frames((sys_a, sys_b), frames[:10], seed=1)
        res_a = sys_a.executor.bitwise("or", dest, sources, GEOM.row_bits)
        res_b = sys_b.executor.bitwise("or", dest, sources, GEOM.row_bits)
        assert res_a.steps > 1  # accumulation actually decomposed
        assert_result_equal(res_a, res_b)
        assert_systems_equal(sys_a, sys_b, frames[:11])

    @pytest.mark.parametrize("op,n_src", [("and", 2), ("xor", 2), ("inv", 1)])
    def test_two_operand_ops(self, op, n_src):
        sys_a, sys_b = self._pair()
        frames = subarray_frames(sys_a, bank=0, sub=0)
        fill_frames((sys_a, sys_b), frames[: n_src], seed=2)
        sources = [[f] for f in frames[:n_src]]
        dest = [frames[n_src]]
        res_a = sys_a.executor.bitwise(op, dest, sources, GEOM.row_bits)
        res_b = sys_b.executor.bitwise(op, dest, sources, GEOM.row_bits)
        assert_result_equal(res_a, res_b)
        assert_systems_equal(sys_a, sys_b, frames[: n_src + 1])

    @pytest.mark.parametrize("overlap", [False, True])
    def test_multi_chunk_vector(self, overlap):
        sys_a, sys_b = self._pair()
        frames = subarray_frames(sys_a, bank=0, sub=0)
        n_bits = 2 * GEOM.row_bits + 100  # 3 chunks, last one partial
        src1, src2, dest = frames[0:3], frames[3:6], frames[6:9]
        fill_frames((sys_a, sys_b), src1 + src2, seed=3)
        res_a = sys_a.executor.bitwise(
            "or", dest, [src1, src2], n_bits, overlap_chunks=overlap
        )
        res_b = sys_b.executor.bitwise(
            "or", dest, [src1, src2], n_bits, overlap_chunks=overlap
        )
        assert_result_equal(res_a, res_b)
        assert_systems_equal(sys_a, sys_b, frames[:9])

    def test_inter_subarray_and_inter_bank(self):
        sys_a, sys_b = self._pair()
        f_sub0 = subarray_frames(sys_a, bank=0, sub=0)
        f_sub1 = subarray_frames(sys_a, bank=0, sub=1)
        f_bank1 = subarray_frames(sys_a, bank=1, sub=0)
        fill_frames((sys_a, sys_b), [f_sub0[0], f_sub1[0], f_bank1[0]], seed=4)
        # inter-subarray: sources in different subarrays of one bank
        res_a = sys_a.executor.bitwise(
            "or", [f_sub0[1]], [[f_sub0[0]], [f_sub1[0]]], GEOM.row_bits
        )
        res_b = sys_b.executor.bitwise(
            "or", [f_sub0[1]], [[f_sub0[0]], [f_sub1[0]]], GEOM.row_bits
        )
        assert_result_equal(res_a, res_b)
        # inter-bank: sources in different banks of one chip
        res_a = sys_a.executor.bitwise(
            "and", [f_sub0[2]], [[f_sub0[0]], [f_bank1[0]]], GEOM.row_bits
        )
        res_b = sys_b.executor.bitwise(
            "and", [f_sub0[2]], [[f_sub0[0]], [f_bank1[0]]], GEOM.row_bits
        )
        assert_result_equal(res_a, res_b)
        assert_systems_equal(sys_a, sys_b, f_sub0[:3])

    def test_bitwise_to_host(self):
        sys_a, sys_b = self._pair()
        frames = subarray_frames(sys_a, bank=0, sub=0)
        fill_frames((sys_a, sys_b), frames[:6], seed=5)
        sources = [[f] for f in frames[:6]]
        bits_a, res_a = sys_a.executor.bitwise_to_host(
            "or", [frames[6]], sources, GEOM.row_bits
        )
        bits_b, res_b = sys_b.executor.bitwise_to_host(
            "or", [frames[6]], sources, GEOM.row_bits
        )
        assert np.array_equal(bits_a, bits_b)
        assert_result_equal(res_a, res_b)

    def test_host_vector_paths(self):
        sys_a, sys_b = self._pair()
        frames = subarray_frames(sys_a, bank=0, sub=0)
        rng = np.random.default_rng(6)
        n_bits = GEOM.row_bits + 77
        bits = rng.integers(0, 2, size=n_bits).astype(np.uint8)
        acct_a = sys_a.executor.write_vector(frames[:2], bits)
        acct_b = sys_b.executor.write_vector(frames[:2], bits)
        assert acct_a.latency == pytest.approx(acct_b.latency, rel=REL)
        assert acct_a.energy == pytest.approx(acct_b.energy, rel=REL)
        out_a, racct_a = sys_a.executor.read_vector(frames[:2], n_bits)
        out_b, racct_b = sys_b.executor.read_vector(frames[:2], n_bits)
        assert np.array_equal(out_a, bits)
        assert np.array_equal(out_b, bits)
        assert racct_a.latency == pytest.approx(racct_b.latency, rel=REL)
        assert racct_a.energy == pytest.approx(racct_b.energy, rel=REL)


class TestBitwiseMany:
    def _workload(self, system):
        frames = subarray_frames(system, bank=0, sub=0)
        return frames, [
            ("or", [frames[8]], [[frames[0]], [frames[1]], [frames[2]]],
             GEOM.row_bits),
            ("and", [frames[9]], [[frames[8]], [frames[3]]], GEOM.row_bits),
            ("xor", [frames[10]], [[frames[9]], [frames[4]]], GEOM.row_bits),
            ("inv", [frames[11]], [[frames[10]]], GEOM.row_bits),
        ]

    def test_stream_matches_sequential(self):
        sys_a = make_system(batch_commands=True)
        sys_b = make_system(batch_commands=True)
        frames, requests = self._workload(sys_a)
        fill_frames((sys_a, sys_b), frames[:5], seed=7)
        seq = [sys_a.executor.bitwise(*req) for req in requests]
        many = sys_b.executor.bitwise_many(requests)
        assert len(many) == len(seq)
        for res_a, res_b in zip(seq, many):
            assert_result_equal(res_a, res_b)
        assert_systems_equal(sys_a, sys_b, frames[:12])

    def test_placement_prevalidation_leaves_state_untouched(self):
        system = make_system(batch_commands=True)
        frames = subarray_frames(system, bank=0, sub=0)
        fill_frames((system,), frames[:2], seed=8)
        # second request spans channels -> inter-chip -> PlacementError
        other_channel = system.mapper.encode(RowAddress(1, 0, 0, 0, 0))
        requests = [
            ("or", [frames[4]], [[frames[0]], [frames[1]]], GEOM.row_bits),
            ("or", [frames[5]], [[frames[0]], [other_channel]], GEOM.row_bits),
        ]
        before = system.memory.frame_bytes(frames[4])
        writes_before = system.memory.total_writes
        with pytest.raises(PlacementError):
            system.executor.bitwise_many(requests)
        assert np.array_equal(system.memory.frame_bytes(frames[4]), before)
        assert system.memory.total_writes == writes_before
        for bus in system.controller.buses:
            assert bus.stats.commands == 0
