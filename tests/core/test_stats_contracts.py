"""Contracts of ExecutionStats.merged and OpAccounting.absorb."""

import pytest

from repro.core.stats import OpAccounting
from repro.memsim.address import OpLocality
from repro.memsim.bus import BusStats
from repro.memsim.controller import CommandKind, ExecutionStats


def make_stats(latency, energy, kind=CommandKind.ACT, n=1):
    stats = ExecutionStats(latency=latency, energy=energy)
    stats.add_count(kind, n)
    stats.add_energy(kind, energy)
    stats.bus = BusStats(commands=n, data_bytes=8 * n, busy_time=latency / 2,
                         energy=energy / 4)
    return stats


class TestExecutionStatsMerged:
    def test_serial_adds_latency(self):
        a = make_stats(1.0, 2.0)
        b = make_stats(3.0, 5.0, kind=CommandKind.WR)
        out = a.merged(b)  # serial is the default
        assert out.latency == pytest.approx(4.0)
        assert out.energy == pytest.approx(7.0)

    def test_parallel_takes_max_latency_but_sums_energy(self):
        a = make_stats(1.0, 2.0)
        b = make_stats(3.0, 5.0)
        out = a.merged(b, serial=False)
        assert out.latency == pytest.approx(3.0)
        assert out.energy == pytest.approx(7.0)

    def test_counts_and_kind_energy_merge(self):
        a = make_stats(1.0, 2.0, kind=CommandKind.ACT, n=2)
        b = make_stats(1.0, 3.0, kind=CommandKind.ACT, n=1)
        c = make_stats(1.0, 4.0, kind=CommandKind.PRE, n=5)
        out = a.merged(b).merged(c)
        assert out.counts == {CommandKind.ACT: 3, CommandKind.PRE: 5}
        assert out.energy_by_kind[CommandKind.ACT] == pytest.approx(5.0)
        assert out.energy_by_kind[CommandKind.PRE] == pytest.approx(4.0)

    def test_bus_stats_merge(self):
        a = make_stats(1.0, 2.0)
        b = make_stats(3.0, 4.0)
        out = a.merged(b)
        assert out.bus.commands == 2
        assert out.bus.data_bytes == 16

    def test_merge_does_not_mutate_inputs(self):
        a = make_stats(1.0, 2.0)
        b = make_stats(3.0, 4.0)
        a.merged(b)
        assert a.latency == 1.0
        assert a.counts == {CommandKind.ACT: 1}


class TestOpAccountingAbsorb:
    def test_absorb_folds_all_cost_fields(self):
        acct = OpAccounting()
        acct.absorb(make_stats(1.5, 3.0))
        acct.absorb(make_stats(0.5, 1.0, kind=CommandKind.WR))
        assert acct.latency == pytest.approx(2.0)
        assert acct.energy == pytest.approx(4.0)
        assert acct.bus_commands == 2
        assert acct.bus_data_bytes == 16
        assert acct.energy_by_kind[CommandKind.ACT] == pytest.approx(3.0)
        assert acct.energy_by_kind[CommandKind.WR] == pytest.approx(1.0)

    def test_absorb_with_locality_counts_it(self):
        acct = OpAccounting()
        acct.absorb(make_stats(1.0, 1.0), OpLocality.INTRA_SUBARRAY)
        acct.absorb(make_stats(1.0, 1.0), OpLocality.INTRA_SUBARRAY)
        acct.absorb(make_stats(1.0, 1.0), OpLocality.INTER_BANK)
        assert acct.locality_counts == {
            OpLocality.INTRA_SUBARRAY: 2,
            OpLocality.INTER_BANK: 1,
        }

    def test_absorb_without_locality_does_not_count(self):
        acct = OpAccounting()
        acct.absorb(make_stats(1.0, 1.0))
        assert acct.locality_counts == {}

    def test_absorb_empty_stats_is_identity_except_locality(self):
        # the batched executor defers costs: combine steps absorb empty
        # stats (for the locality tally) and the batch lands once later
        acct = OpAccounting()
        acct.absorb(ExecutionStats(), OpLocality.INTRA_SUBARRAY)
        assert acct.latency == 0.0
        assert acct.energy == 0.0
        assert acct.locality_counts == {OpLocality.INTRA_SUBARRAY: 1}

    def test_merged_sums_everything(self):
        a = OpAccounting()
        a.absorb(make_stats(1.0, 2.0), OpLocality.INTRA_SUBARRAY)
        a.count_step()
        a.count_bits(64)
        b = OpAccounting()
        b.absorb(make_stats(2.0, 3.0), OpLocality.INTRA_SUBARRAY)
        b.count_step(2)
        b.count_bits(128)
        out = a.merged(b)
        assert out.latency == pytest.approx(3.0)
        assert out.energy == pytest.approx(5.0)
        assert out.in_memory_steps == 3
        assert out.bits_processed == 192
        assert out.locality_counts == {OpLocality.INTRA_SUBARRAY: 2}
        # inputs untouched
        assert a.in_memory_steps == 1


class TestPerfCounters:
    def test_counters_track_both_paths(self):
        from repro.memsim import controller as ctrl_mod
        from repro.memsim.controller import (
            Command,
            CommandBatch,
            MemoryController,
        )
        from repro.memsim.geometry import MemoryGeometry
        from repro.memsim.timing import nvm_timing
        from repro.nvm.technology import get_technology

        geom = MemoryGeometry(
            channels=1, ranks_per_channel=1, chips_per_rank=1,
            banks_per_chip=1, subarrays_per_bank=1, rows_per_subarray=8,
            mats_per_subarray=1, cols_per_mat=64, mux_ratio=8,
        )
        ctrl = MemoryController(geom, nvm_timing(get_technology("pcm")))
        pc = ctrl_mod.perf_counters
        scalar0, batch0 = pc.scalar_commands, pc.batch_commands
        hits0, misses0 = pc.cache_hits, pc.cache_misses

        commands = [Command(CommandKind.ACT, n_bits=64)] * 3
        ctrl.execute(commands)
        assert pc.scalar_commands == scalar0 + 3
        # identical commands: 1 miss then hits
        assert pc.cache_misses == misses0 + 1
        assert pc.cache_hits == hits0 + 2

        batch = CommandBatch()
        batch.extend(commands)
        ctrl.execute_batch(batch)
        assert pc.batch_commands == batch0 + 3

    def test_summary_mentions_key_metrics(self):
        from repro.memsim.controller import PerfCounters

        pc = PerfCounters(
            scalar_commands=10, batch_commands=90, batches=3, streams=5,
            cache_hits=8, cache_misses=2, wall_s=0.25,
        )
        line = pc.summary()
        assert "100 commands" in line
        assert "80.0%" in line
        assert pc.cache_hit_rate == pytest.approx(0.8)

    def test_summary_line_shim_warns_and_delegates(self):
        from repro.memsim.controller import PerfCounters

        pc = PerfCounters(scalar_commands=10, batch_commands=90, batches=3,
                          streams=5, cache_hits=8, cache_misses=2)
        with pytest.warns(DeprecationWarning):
            line = pc.summary_line()
        assert line == pc.summary()


class TestStatsConvention:
    """Every stats surface follows the ``to_dict()``/``summary()`` contract."""

    @staticmethod
    def _instances():
        from repro.backends.protocol import RunStats
        from repro.memsim.controller import PerfCounters
        from repro.runtime.driver import DriverStats

        stats = make_stats(1.0, 2.0)
        acct = OpAccounting()
        acct.absorb(stats, OpLocality.INTRA_SUBARRAY)
        acct.count_step()
        acct.count_bits(64)
        return [
            stats,
            PerfCounters(scalar_commands=1, batch_commands=2, batches=1,
                         streams=1, cache_hits=1, cache_misses=1),
            DriverStats(requests=2, instructions=3, mode_switches=1),
            RunStats(backend="b", op="or", latency=1.0, energy=2.0,
                     bits_processed=64, in_memory=True, steps=1),
            acct,
        ]

    def test_all_five_satisfy_the_statslike_protocol(self):
        from repro.core.stats import StatsLike

        for obj in self._instances():
            assert isinstance(obj, StatsLike), type(obj).__name__

    def test_to_dict_is_json_serializable(self):
        import json

        for obj in self._instances():
            payload = obj.to_dict()
            assert isinstance(payload, dict) and payload
            assert all(isinstance(k, str) for k in payload)
            json.dumps(payload)  # must not raise

    def test_summary_is_nonempty_text(self):
        for obj in self._instances():
            text = obj.summary()
            assert isinstance(text, str) and text

    def test_execution_stats_to_dict_round_trips_totals(self):
        stats = make_stats(1.5, 3.0, kind=CommandKind.WR, n=2)
        d = stats.to_dict()
        assert d["latency_s"] == pytest.approx(1.5)
        assert d["energy_j"] == pytest.approx(3.0)
        assert d["counts"] == {CommandKind.WR.value: 2}
        assert d["bus"]["commands"] == 2

    def test_op_accounting_to_dict_carries_derived_metrics(self):
        acct = OpAccounting()
        acct.absorb(make_stats(2.0, 4.0), OpLocality.INTRA_SUBARRAY)
        acct.count_bits(128)
        d = acct.to_dict()
        assert d["latency_s"] == pytest.approx(2.0)
        assert d["locality_counts"] == {OpLocality.INTRA_SUBARRAY.value: 1}
        assert d["energy_per_bit_j"] == pytest.approx(4.0 / 128)
