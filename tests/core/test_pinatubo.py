"""Tests for the PinatuboSystem facade and Fig. 9 shape invariants."""

import numpy as np
import pytest

from repro.core.pinatubo import PinatuboSystem
from repro.memsim.geometry import MemoryGeometry


class TestConfigurations:
    def test_pcm_default_is_pinatubo_128(self):
        assert PinatuboSystem.pcm().max_or_rows == 128

    def test_pcm_max_rows_2_is_pinatubo_2(self):
        assert PinatuboSystem.pcm(max_rows=2).max_or_rows == 2

    def test_stt_is_2_row(self):
        assert PinatuboSystem.stt().max_or_rows == 2

    def test_reram_multirow(self):
        assert PinatuboSystem.reram().max_or_rows > 2

    def test_row_bits(self):
        assert PinatuboSystem.pcm().row_bits == 1 << 19

    def test_bandwidth_anchors(self):
        s = PinatuboSystem.pcm()
        assert s.ddr_bus_bandwidth == pytest.approx(12.8e9)
        # internal: 2^14 bits per 8.9 ns sense step
        assert s.internal_bandwidth == pytest.approx(
            (1 << 14) / 8.0 / 8.9e-9, rel=1e-6
        )
        assert s.internal_bandwidth > s.ddr_bus_bandwidth


class TestStoreLoad:
    def test_roundtrip(self):
        s = PinatuboSystem.pcm()
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, size=1000).astype(np.uint8)
        s.store([0], bits)
        got, acct = s.load([0], 1000)
        np.testing.assert_array_equal(got, bits)
        assert acct.bus_data_bytes == 125


class TestFigure9Shape:
    """E4 invariants: the throughput curve's qualitative features."""

    @pytest.fixture(scope="class")
    def sweep(self):
        results = {}
        for log_len in (10, 12, 14, 16, 19, 20):
            for n in (2, 8, 128):
                system = PinatuboSystem.pcm()
                acct = system.or_throughput(1 << log_len, n)
                results[(log_len, n)] = acct.throughput_gbps
        return results

    def test_throughput_increases_with_length(self, sweep):
        for n in (2, 8, 128):
            series = [sweep[(ll, n)] for ll in (10, 12, 14, 16, 19)]
            assert series == sorted(series)

    def test_multirow_separates_curves(self, sweep):
        for log_len in (10, 14, 19):
            assert sweep[(log_len, 2)] < sweep[(log_len, 8)] < sweep[(log_len, 128)]

    def test_short_vectors_below_ddr_bus(self, sweep):
        assert sweep[(10, 2)] < 12.8  # below DDR bus bandwidth region

    def test_long_128row_beyond_internal_bandwidth(self, sweep):
        internal_gbps = PinatuboSystem.pcm().internal_bandwidth / 1e9
        assert sweep[(19, 128)] > internal_gbps

    def test_dram_could_never_reach_beyond_internal(self, sweep):
        # 2-row ops (all a DRAM scheme supports) stay within internal BW
        internal_gbps = PinatuboSystem.pcm().internal_bandwidth / 1e9
        assert sweep[(19, 2)] <= internal_gbps * 1.25

    def test_turning_point_b_flattens_curve(self, sweep):
        # beyond 2^19 the throughput stops improving (serial ranks)
        gain_before = sweep[(19, 128)] / sweep[(16, 128)]
        gain_after = sweep[(20, 128)] / sweep[(19, 128)]
        assert gain_before > 2
        assert gain_after < 1.1

    def test_turning_point_a_slows_growth(self, sweep):
        # below 2^14 throughput is ~linear in length (fixed op cost);
        # above, serial sense steps cut the slope.
        slope_before = sweep[(12, 2)] / sweep[(10, 2)]  # 4x length
        slope_after = sweep[(16, 2)] / sweep[(14, 2)]  # 4x length
        assert slope_before == pytest.approx(4.0, rel=0.05)
        assert slope_after < slope_before * 0.95

    def test_pinatubo2_vs_128_gap_is_large(self, sweep):
        assert sweep[(19, 128)] / sweep[(19, 2)] > 20


class TestOrThroughputValidation:
    def test_needs_two_operands(self):
        with pytest.raises(ValueError):
            PinatuboSystem.pcm().or_throughput(1 << 14, 1)

    def test_too_many_rows_rejected(self):
        small = MemoryGeometry(
            channels=1,
            ranks_per_channel=1,
            chips_per_rank=1,
            banks_per_chip=1,
            subarrays_per_bank=1,
            rows_per_subarray=16,
            mats_per_subarray=1,
            cols_per_mat=512,
            mux_ratio=8,
        )
        system = PinatuboSystem.pcm(geometry=small)
        with pytest.raises(ValueError, match="fit"):
            system.or_throughput(512, 64)
