"""Tests for the per-command energy attribution."""

import numpy as np
import pytest

from repro.core.pinatubo import PinatuboSystem
from repro.memsim.controller import CommandKind
from repro.memsim.geometry import MemoryGeometry
from repro.runtime.api import PimRuntime


GEOM = MemoryGeometry(
    channels=1,
    ranks_per_channel=1,
    chips_per_rank=1,
    banks_per_chip=2,
    subarrays_per_bank=4,
    rows_per_subarray=64,
    mats_per_subarray=1,
    cols_per_mat=4096,
    mux_ratio=32,
)


@pytest.fixture
def rt():
    return PimRuntime(PinatuboSystem.pcm(geometry=GEOM))


def run_or(rt, n_operands, seed=0):
    rng = np.random.default_rng(seed)
    operands = []
    for _ in range(n_operands):
        h = rt.pim_malloc(GEOM.row_bits, "g")
        rt.pim_write(h, rng.integers(0, 2, GEOM.row_bits).astype(np.uint8))
        operands.append(h)
    dest = rt.pim_malloc(GEOM.row_bits, "g")
    return rt.pim_op("or", dest, operands)


class TestEnergyBreakdown:
    def test_fractions_sum_to_one(self, rt):
        result = run_or(rt, 2)
        breakdown = result.accounting.energy_breakdown()
        assert sum(breakdown.values()) == pytest.approx(1.0)
        assert all(v >= 0 for v in breakdown.values())

    def test_writeback_dominates_2row_op(self, rt):
        """PCM programming is the big-ticket item of a 2-row op."""
        result = run_or(rt, 2)
        breakdown = result.accounting.energy_breakdown()
        assert next(iter(breakdown)) == CommandKind.PIM_WRITEBACK.value

    def test_activation_share_grows_with_fanin(self, rt):
        narrow = run_or(rt, 2, seed=1).accounting
        rt2 = PimRuntime(PinatuboSystem.pcm(geometry=GEOM))
        wide = run_or(rt2, 32, seed=1).accounting

        def act_share(acct):
            bd = acct.energy_by_kind
            total = sum(bd.values())
            act = bd.get(CommandKind.ACT, 0.0) + bd.get(CommandKind.ACT_EXTRA, 0.0)
            return act / total

        assert act_share(wide) > act_share(narrow)

    def test_breakdown_sorted_descending(self, rt):
        result = run_or(rt, 8)
        values = list(result.accounting.energy_breakdown().values())
        assert values == sorted(values, reverse=True)

    def test_empty_breakdown(self):
        from repro.core.stats import OpAccounting

        assert OpAccounting().energy_breakdown() == {}

    def test_merge_preserves_totals(self, rt):
        a = run_or(rt, 2, seed=1).accounting
        b = run_or(rt, 2, seed=2).accounting
        merged = a.merged(b)
        for kind in set(a.energy_by_kind) | set(b.energy_by_kind):
            assert merged.energy_by_kind[kind] == pytest.approx(
                a.energy_by_kind.get(kind, 0.0) + b.energy_by_kind.get(kind, 0.0)
            )
