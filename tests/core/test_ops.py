"""Tests for the PIM operation vocabulary and operand limits."""

import pytest

from repro.core.ops import OperandLimits, PimOp, operand_limits
from repro.nvm.technology import get_technology


class TestPimOpParsing:
    @pytest.mark.parametrize("name,op", [
        ("or", PimOp.OR),
        ("AND", PimOp.AND),
        ("Xor", PimOp.XOR),
        ("inv", PimOp.INV),
    ])
    def test_parse_strings(self, name, op):
        assert PimOp.parse(name) is op

    def test_parse_passthrough(self):
        assert PimOp.parse(PimOp.OR) is PimOp.OR

    def test_parse_unknown(self):
        with pytest.raises(ValueError, match="unknown PIM op"):
            PimOp.parse("nand")


class TestOperandLimitsDerivation:
    def test_pcm_gets_128_row_or(self):
        limits = operand_limits(get_technology("pcm"))
        assert limits.or_rows == 128
        assert limits.and_rows == 2

    def test_stt_gets_2_row(self):
        limits = operand_limits(get_technology("stt"))
        assert limits.or_rows == 2

    def test_override_caps_or(self):
        limits = operand_limits(get_technology("pcm"), max_rows_override=2)
        assert limits.or_rows == 2

    def test_override_cannot_raise_above_margin(self):
        limits = operand_limits(get_technology("stt"), max_rows_override=64)
        assert limits.or_rows == 2

    def test_bad_override(self):
        with pytest.raises(ValueError):
            operand_limits(get_technology("pcm"), max_rows_override=1)


class TestLimitQueries:
    def test_single_step_limits(self):
        limits = OperandLimits(or_rows=128, and_rows=2)
        assert limits.single_step_limit(PimOp.OR) == 128
        assert limits.single_step_limit(PimOp.AND) == 2
        assert limits.single_step_limit(PimOp.XOR) == 2
        assert limits.single_step_limit(PimOp.INV) == 1

    def test_min_operands(self):
        limits = OperandLimits(or_rows=2, and_rows=2)
        assert limits.min_operands(PimOp.OR) == 2
        assert limits.min_operands(PimOp.INV) == 1

    def test_validate_operand_count(self):
        limits = OperandLimits(or_rows=2, and_rows=2)
        limits.validate_operand_count(PimOp.OR, 2)
        limits.validate_operand_count(PimOp.OR, 200)  # decomposed, legal
        limits.validate_operand_count(PimOp.INV, 1)
        with pytest.raises(ValueError):
            limits.validate_operand_count(PimOp.OR, 1)
        with pytest.raises(ValueError):
            limits.validate_operand_count(PimOp.INV, 2)
