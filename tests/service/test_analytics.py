"""The ``analyze`` service verb: filter+aggregate through the full stack.

Requests flow exactly like reads -- admission, coalesced batches, shard
pricing -- while the engine runs the :mod:`repro.arith` kernel sequence
on the tenant's resident planes.  Results must match the host oracle
exactly and replay byte-identically.
"""

import json

import numpy as np
import pytest

from repro.service import (
    AnalyticsRequest,
    BitmapQueryService,
    ServiceClient,
    bitslice_vector_name,
    oracle_analytics,
)

N = 1024


def dataset(seed=42):
    rng = np.random.default_rng(seed)
    return {
        "age": rng.integers(0, 64, N).astype(np.int64),
        "income": rng.integers(0, 256, N).astype(np.int64),
        "region": rng.integers(0, 8, N).astype(np.int64),
    }


def loaded_client(data=None):
    data = data or dataset()
    svc = BitmapQueryService()
    client = ServiceClient(svc)
    client.register_tenant("t")
    client.load_bitslice_column("t", "age", data["age"], 6)
    client.load_bitslice_column("t", "income", data["income"], 8)
    client.load_bitmap_index("t", "region", data["region"], 8)
    return svc, client


class TestAnalyzeVerb:
    def test_count(self):
        data = dataset()
        svc, client = loaded_client(data)
        handle = client.analyze("t", [("cmp", "age", "lt", 30, 6)], ("count",))
        client.run()
        want = data["age"] < 30
        assert handle.result().popcount == int(want.sum())
        assert handle.result().value == float(want.sum())
        assert handle.result().groups is None

    def test_conjunction_sum(self):
        data = dataset()
        svc, client = loaded_client(data)
        handle = client.analyze(
            "t",
            [("cmp", "age", "ge", 30, 6), ("range", "region", 2, 5)],
            ("sum", "income", 8),
        )
        client.run()
        want = (data["age"] >= 30) & (data["region"] >= 2) & (data["region"] <= 5)
        assert handle.result().popcount == int(want.sum())
        assert handle.result().value == float(data["income"][want].sum())

    def test_histogram(self):
        data = dataset()
        svc, client = loaded_client(data)
        handle = client.analyze(
            "t", [("cmp", "income", "gt", 100, 8)], ("hist", "region", 8)
        )
        client.run()
        want = data["income"] > 100
        assert handle.result().groups == tuple(
            int(x) for x in np.bincount(data["region"][want], minlength=8)
        )

    def test_priced_on_the_simulated_timeline(self):
        svc, client = loaded_client()
        handle = client.analyze("t", [("cmp", "age", "lt", 30, 6)], ("count",))
        client.run()
        assert handle.result().latency_s > 0
        assert handle.result().energy_j > 0

    def test_verify_results_covers_analytics(self):
        svc, client = loaded_client()
        client.analyze("t", [("cmp", "age", "lt", 30, 6)], ("count",))
        client.analyze("t", [("range", "region", 1, 4)], ("sum", "income", 8))
        client.analyze("t", [("cmp", "age", "ge", 10, 6)], ("hist", "region", 8))
        client.run()
        assert svc.verify_results() == 3

    def test_mixed_batch_with_plain_reads(self):
        data = dataset()
        svc, client = loaded_client(data)
        rng = np.random.default_rng(1)
        client.load_vectors(
            "t",
            {
                "x": rng.integers(0, 2, N, dtype=np.uint8),
                "y": rng.integers(0, 2, N, dtype=np.uint8),
            },
        )
        hq = client.query("t", "and", ("x", "y"))
        ha = client.analyze("t", [("cmp", "age", "le", 10, 6)], ("count",))
        hq2 = client.query("t", "or", ("x", "y"))
        client.run()
        assert ha.result().popcount == int((data["age"] <= 10).sum())
        assert hq.completed and hq2.completed
        assert svc.verify_results() == 3

    def test_repeat_runs_byte_identical(self):
        def run_once():
            svc, client = loaded_client()
            handles = [
                client.analyze("t", [("cmp", "age", "lt", 30, 6)], ("count",)),
                client.analyze(
                    "t",
                    [("cmp", "age", "ge", 30, 6), ("range", "region", 2, 5)],
                    ("sum", "income", 8),
                ),
                client.analyze(
                    "t", [("cmp", "income", "gt", 100, 8)], ("hist", "region", 8)
                ),
            ]
            client.run()
            return json.dumps(
                [h.result().to_dict() for h in handles], sort_keys=True
            )

        assert run_once() == run_once()


class TestValidation:
    def test_unknown_column_rejected_at_submit(self):
        svc, client = loaded_client()
        with pytest.raises(KeyError, match="has no vector"):
            client.analyze("t", [("cmp", "nope", "lt", 3, 4)], ("count",))

    def test_malformed_requests(self):
        with pytest.raises(ValueError, match="unknown comparison"):
            AnalyticsRequest(0, "t", (("cmp", "age", "between", 3, 4),), ("count",), 0.0)
        with pytest.raises(ValueError, match="cmp predicate"):
            AnalyticsRequest(0, "t", (("cmp", "age", "lt", 3),), ("count",), 0.0)
        with pytest.raises(ValueError, match="empty bin range"):
            AnalyticsRequest(0, "t", (("range", "col", 4, 2),), ("count",), 0.0)
        with pytest.raises(ValueError, match="unknown aggregate"):
            AnalyticsRequest(0, "t", (("range", "col", 0, 2),), ("median",), 0.0)
        with pytest.raises(ValueError, match="unfiltered count"):
            AnalyticsRequest(0, "t", (), ("count",), 0.0)

    def test_vectors_property_enumerates_planes_and_bins(self):
        request = AnalyticsRequest(
            0,
            "t",
            (("cmp", "age", "lt", 3, 2), ("range", "region", 1, 2)),
            ("sum", "age", 2),
            0.0,
        )
        assert request.op == "analyze"
        assert request.vectors == (
            bitslice_vector_name("age", 0),
            bitslice_vector_name("age", 1),
            "region/bin1",
            "region/bin2",
        )
        assert request.fanin == 4


class TestEngineOracle:
    def test_oracle_analytics_matches_host_numpy(self):
        data = dataset()
        svc, client = loaded_client(data)
        client.run()
        filters = (("cmp", "age", "lt", 30, 6), ("range", "region", 0, 3))
        mask, value, groups = oracle_analytics(
            svc.engine, "t", filters, ("sum", "income", 8)
        )
        want = (data["age"] < 30) & (data["region"] <= 3)
        np.testing.assert_array_equal(mask.astype(bool), want)
        assert value == float(data["income"][want].sum())
        assert groups is None

    def test_host_oracle_engine_serves_analytics(self):
        from repro.backends.config import SystemConfig
        from repro.service.service import ServiceConfig

        data = dataset()
        svc = BitmapQueryService(
            ServiceConfig(system=SystemConfig(backend="sdram"))
        )
        client = ServiceClient(svc)
        client.register_tenant("t")
        client.load_bitslice_column("t", "age", data["age"], 6)
        handle = client.analyze("t", [("cmp", "age", "lt", 30, 6)], ("count",))
        client.run()
        assert handle.result().popcount == int((data["age"] < 30).sum())
