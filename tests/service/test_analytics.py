"""The ``analyze`` service verb: filter+aggregate through the full stack.

Requests flow exactly like reads -- admission, coalesced batches, shard
pricing -- while the engine runs the :mod:`repro.arith` kernel sequence
on the tenant's resident planes.  Results must match the host oracle
exactly and replay byte-identically.
"""

import json

import numpy as np
import pytest

from repro.service import (
    AnalyticsRequest,
    BitmapQueryService,
    ServiceClient,
    bitslice_vector_name,
    oracle_analytics,
)

N = 1024


def dataset(seed=42):
    rng = np.random.default_rng(seed)
    return {
        "age": rng.integers(0, 64, N).astype(np.int64),
        "income": rng.integers(0, 256, N).astype(np.int64),
        "region": rng.integers(0, 8, N).astype(np.int64),
    }


def loaded_client(data=None):
    data = data or dataset()
    svc = BitmapQueryService()
    client = ServiceClient(svc)
    client.register_tenant("t")
    client.load_bitslice_column("t", "age", data["age"], 6)
    client.load_bitslice_column("t", "income", data["income"], 8)
    client.load_bitmap_index("t", "region", data["region"], 8)
    return svc, client


class TestAnalyzeVerb:
    def test_count(self):
        data = dataset()
        svc, client = loaded_client(data)
        handle = client.analyze("t", [("cmp", "age", "lt", 30, 6)], ("count",))
        client.run()
        want = data["age"] < 30
        assert handle.result().popcount == int(want.sum())
        assert handle.result().value == float(want.sum())
        assert handle.result().groups is None

    def test_conjunction_sum(self):
        data = dataset()
        svc, client = loaded_client(data)
        handle = client.analyze(
            "t",
            [("cmp", "age", "ge", 30, 6), ("range", "region", 2, 5)],
            ("sum", "income", 8),
        )
        client.run()
        want = (data["age"] >= 30) & (data["region"] >= 2) & (data["region"] <= 5)
        assert handle.result().popcount == int(want.sum())
        assert handle.result().value == float(data["income"][want].sum())

    def test_histogram(self):
        data = dataset()
        svc, client = loaded_client(data)
        handle = client.analyze(
            "t", [("cmp", "income", "gt", 100, 8)], ("hist", "region", 8)
        )
        client.run()
        want = data["income"] > 100
        assert handle.result().groups == tuple(
            int(x) for x in np.bincount(data["region"][want], minlength=8)
        )

    def test_priced_on_the_simulated_timeline(self):
        svc, client = loaded_client()
        handle = client.analyze("t", [("cmp", "age", "lt", 30, 6)], ("count",))
        client.run()
        assert handle.result().latency_s > 0
        assert handle.result().energy_j > 0

    def test_verify_results_covers_analytics(self):
        svc, client = loaded_client()
        client.analyze("t", [("cmp", "age", "lt", 30, 6)], ("count",))
        client.analyze("t", [("range", "region", 1, 4)], ("sum", "income", 8))
        client.analyze("t", [("cmp", "age", "ge", 10, 6)], ("hist", "region", 8))
        client.run()
        assert svc.verify_results() == 3

    def test_mixed_batch_with_plain_reads(self):
        data = dataset()
        svc, client = loaded_client(data)
        rng = np.random.default_rng(1)
        client.load_vectors(
            "t",
            {
                "x": rng.integers(0, 2, N, dtype=np.uint8),
                "y": rng.integers(0, 2, N, dtype=np.uint8),
            },
        )
        hq = client.query("t", "and", ("x", "y"))
        ha = client.analyze("t", [("cmp", "age", "le", 10, 6)], ("count",))
        hq2 = client.query("t", "or", ("x", "y"))
        client.run()
        assert ha.result().popcount == int((data["age"] <= 10).sum())
        assert hq.completed and hq2.completed
        assert svc.verify_results() == 3

    def test_repeat_runs_byte_identical(self):
        def run_once():
            svc, client = loaded_client()
            handles = [
                client.analyze("t", [("cmp", "age", "lt", 30, 6)], ("count",)),
                client.analyze(
                    "t",
                    [("cmp", "age", "ge", 30, 6), ("range", "region", 2, 5)],
                    ("sum", "income", 8),
                ),
                client.analyze(
                    "t", [("cmp", "income", "gt", 100, 8)], ("hist", "region", 8)
                ),
            ]
            client.run()
            return json.dumps(
                [h.result().to_dict() for h in handles], sort_keys=True
            )

        assert run_once() == run_once()


class TestValidation:
    def test_unknown_column_rejected_at_submit(self):
        svc, client = loaded_client()
        with pytest.raises(KeyError, match="has no vector"):
            client.analyze("t", [("cmp", "nope", "lt", 3, 4)], ("count",))

    def test_malformed_requests(self):
        with pytest.raises(ValueError, match="unknown comparison"):
            AnalyticsRequest(0, "t", (("cmp", "age", "between", 3, 4),), ("count",), 0.0)
        with pytest.raises(ValueError, match="cmp predicate"):
            AnalyticsRequest(0, "t", (("cmp", "age", "lt", 3),), ("count",), 0.0)
        with pytest.raises(ValueError, match="empty bin range"):
            AnalyticsRequest(0, "t", (("range", "col", 4, 2),), ("count",), 0.0)
        with pytest.raises(ValueError, match="unknown aggregate"):
            AnalyticsRequest(0, "t", (("range", "col", 0, 2),), ("median",), 0.0)
        with pytest.raises(ValueError, match="unfiltered count"):
            AnalyticsRequest(0, "t", (), ("count",), 0.0)

    def test_vectors_property_enumerates_planes_and_bins(self):
        request = AnalyticsRequest(
            0,
            "t",
            (("cmp", "age", "lt", 3, 2), ("range", "region", 1, 2)),
            ("sum", "age", 2),
            0.0,
        )
        assert request.op == "analyze"
        assert request.vectors == (
            bitslice_vector_name("age", 0),
            bitslice_vector_name("age", 1),
            "region/bin1",
            "region/bin2",
        )
        assert request.fanin == 4


class TestEngineOracle:
    def test_oracle_analytics_matches_host_numpy(self):
        data = dataset()
        svc, client = loaded_client(data)
        client.run()
        filters = (("cmp", "age", "lt", 30, 6), ("range", "region", 0, 3))
        mask, value, groups = oracle_analytics(
            svc.engine, "t", filters, ("sum", "income", 8)
        )
        want = (data["age"] < 30) & (data["region"] <= 3)
        np.testing.assert_array_equal(mask.astype(bool), want)
        assert value == float(data["income"][want].sum())
        assert groups is None

    def test_host_oracle_engine_serves_analytics(self):
        from repro.backends.config import SystemConfig
        from repro.service.service import ServiceConfig

        data = dataset()
        svc = BitmapQueryService(
            ServiceConfig(system=SystemConfig(backend="sdram"))
        )
        client = ServiceClient(svc)
        client.register_tenant("t")
        client.load_bitslice_column("t", "age", data["age"], 6)
        handle = client.analyze("t", [("cmp", "age", "lt", 30, 6)], ("count",))
        client.run()
        assert handle.result().popcount == int((data["age"] < 30).sum())


class TestAnalyticsPrograms:
    """Whole-query program replay through the engine: steady repeats
    serve from the analytics compiler, batches fuse, and the compiled
    fast path stays byte-identical to interpretation."""

    def _stream(self, client, k, at):
        handles = [
            client.analyze(
                "t", [("cmp", "age", "lt", 30, 6)], ("count",), at=at
            )
            for _ in range(k)
        ]
        client.run()
        return handles

    def test_steady_repeats_replay(self):
        data = dataset()
        svc, client = loaded_client(data)
        want = int((data["age"] < 30).sum())
        for t in range(1, 6):
            (handle,) = self._stream(client, 1, float(t))
            assert handle.result().popcount == want
        stats = svc.engine.analytics_compiler.stats
        assert stats.programs == 1
        assert stats.replays >= 1
        svc.verify_results()

    def test_same_batch_requests_fuse(self):
        data = dataset()
        svc, client = loaded_client(data)
        for t in range(1, 5):
            handles = self._stream(client, 4, float(t))
            want = int((data["age"] < 30).sum())
            for h in handles:
                assert h.result().popcount == want
        stats = svc.engine.analytics_compiler.stats
        assert stats.fused_batches >= 1
        assert stats.fused_requests >= 2
        svc.verify_results()

    def test_replayed_results_byte_identical_to_interpreted_engine(self):
        from repro.service.engine import build_engine

        data = dataset()

        def run_stack(compile_):
            from repro.service.service import ServiceConfig

            config = ServiceConfig()
            engine = build_engine(
                config.system, plan=True, compile=compile_
            )
            svc = BitmapQueryService(config=config, engine=engine)
            client = ServiceClient(svc)
            client.register_tenant("t")
            client.load_bitslice_column("t", "age", data["age"], 6)
            client.load_bitmap_index("t", "region", data["region"], 8)
            out = []
            for t in range(1, 6):
                handle = client.analyze(
                    "t",
                    [("cmp", "age", "ge", 30, 6), ("range", "region", 2, 5)],
                    ("count",),
                    at=float(t),
                )
                client.run()
                out.append(handle.result().to_dict())
            return out

        compiled = run_stack(True)
        interpreted = run_stack(False)
        # answers are exact; simulated timing agrees to the 1e-9 parity
        # bound (recorded deltas are reconstructed by float subtraction,
        # so the last few ulps may differ from an in-order sum)
        for a, b in zip(compiled, interpreted):
            for key, got in a.items():
                want = b[key]
                if isinstance(got, float):
                    assert got == pytest.approx(want, rel=1e-9), key
                else:
                    assert got == want, key

    def test_plan_analytics_counters_are_live(self):
        from repro import telemetry

        replays0 = telemetry.counter("plan.analytics.replays").value
        compiles0 = telemetry.counter("plan.analytics.compiles").value
        data = dataset()
        svc, client = loaded_client(data)
        for t in range(1, 6):
            self._stream(client, 2, float(t))
        assert telemetry.counter("plan.analytics.compiles").value > compiles0
        assert telemetry.counter("plan.analytics.replays").value > replays0

    def test_scheduler_counts_analytics_dispatches(self):
        from repro import telemetry

        before = telemetry.counter(
            "service.scheduler.analytics_calls"
        ).value
        data = dataset()
        svc, client = loaded_client(data)
        self._stream(client, 3, 1.0)
        after = telemetry.counter("service.scheduler.analytics_calls").value
        assert after >= before + 3
