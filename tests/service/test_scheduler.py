"""Tests for cross-tenant coalescing and shard-aware batch pricing."""

from collections import deque

import pytest

from repro.service.engine import ExecutedCall, ServiceEngine
from repro.service.request import QueryRequest
from repro.service.scheduler import CoalescingScheduler, SchedulerConfig


class FakeEngine(ServiceEngine):
    """Fixed per-call latency, tenant -> shard from a dict."""

    def __init__(self, shards, latency_s=1e-6):
        self._shard_map = shards
        self.latency_s = latency_s

    @property
    def n_shards(self):
        return max(self._shard_map.values(), default=0) + 1

    def shard_of(self, tenant):
        return self._shard_map[tenant]

    def execute(self, calls):
        return [
            ExecutedCall(
                bits=None,
                popcount=0,
                latency_s=self.latency_s,
                energy_j=1e-9,
                steps=1,
                in_memory=True,
            )
            for _ in calls
        ]


def req(rid, tenant):
    return QueryRequest.bitwise(rid, tenant, "and", ("a", "b"), 0.0)


def queues_of(*tenant_requests):
    return {t: deque(rs) for t, rs in tenant_requests}


class TestCollect:
    def test_round_robin_across_tenants(self):
        sched = CoalescingScheduler(
            SchedulerConfig(max_batch=4), FakeEngine({"a": 0, "b": 1})
        )
        queues = queues_of(
            ("a", [req(1, "a"), req(2, "a")]),
            ("b", [req(3, "b"), req(4, "b")]),
        )
        batch = sched.collect(queues)
        assert [r.request_id for r in batch] == [1, 3, 2, 4]

    def test_respects_max_batch(self):
        sched = CoalescingScheduler(
            SchedulerConfig(max_batch=3), FakeEngine({"a": 0})
        )
        queues = queues_of(("a", [req(i, "a") for i in range(10)]))
        batch = sched.collect(queues)
        assert len(batch) == 3
        assert len(queues["a"]) == 7

    def test_rotating_start_prevents_permanent_priority(self):
        sched = CoalescingScheduler(
            SchedulerConfig(max_batch=1), FakeEngine({"a": 0, "b": 1})
        )
        firsts = []
        for _ in range(4):
            queues = queues_of(("a", [req(1, "a")]), ("b", [req(2, "b")]))
            firsts.append(sched.collect(queues)[0].tenant)
        assert set(firsts) == {"a", "b"}

    def test_empty_queues_give_empty_batch(self):
        sched = CoalescingScheduler(SchedulerConfig(), FakeEngine({}))
        assert sched.collect({}) == []
        assert sched.collect(queues_of(("a", []))) == []


class TestPricing:
    def test_same_shard_serialises(self):
        engine = FakeEngine({"a": 0, "b": 0}, latency_s=1e-6)
        sched = CoalescingScheduler(
            SchedulerConfig(dispatch_overhead_s=1e-7), engine
        )
        batch = [req(1, "a"), req(2, "b")]
        pricing = sched.price(batch, engine.execute(batch))
        # both on shard 0: second completes after first
        assert pricing.completion_offsets == pytest.approx([1.1e-6, 2.1e-6])
        assert pricing.makespan_s == pytest.approx(2.1e-6)

    def test_different_shards_overlap(self):
        engine = FakeEngine({"a": 0, "b": 1}, latency_s=1e-6)
        sched = CoalescingScheduler(
            SchedulerConfig(dispatch_overhead_s=1e-7), engine
        )
        batch = [req(1, "a"), req(2, "b")]
        pricing = sched.price(batch, engine.execute(batch))
        # different shards: both complete one service time after dispatch
        assert pricing.completion_offsets == pytest.approx([1.1e-6, 1.1e-6])
        assert pricing.makespan_s == pytest.approx(1.1e-6)

    def test_energy_adds_across_shards(self):
        engine = FakeEngine({"a": 0, "b": 1})
        sched = CoalescingScheduler(SchedulerConfig(), engine)
        batch = [req(1, "a"), req(2, "b")]
        pricing = sched.price(batch, engine.execute(batch))
        assert pricing.energy_j == pytest.approx(2e-9)

    def test_overhead_paid_once_per_batch(self):
        engine = FakeEngine({"a": 0}, latency_s=1e-6)
        sched = CoalescingScheduler(
            SchedulerConfig(dispatch_overhead_s=5e-6), engine
        )
        batch = [req(i, "a") for i in range(3)]
        pricing = sched.price(batch, engine.execute(batch))
        assert pricing.makespan_s == pytest.approx(5e-6 + 3e-6)


class TestDispatch:
    def test_dispatch_returns_consistent_triple(self):
        engine = FakeEngine({"a": 0, "b": 1})
        sched = CoalescingScheduler(SchedulerConfig(max_batch=8), engine)
        queues = queues_of(
            ("a", [req(1, "a")]),
            ("b", [req(2, "b")]),
        )
        batch, executed, pricing = sched.dispatch(queues)
        assert len(batch) == len(executed) == len(pricing.completion_offsets)
        assert all(len(q) == 0 for q in queues.values())

    def test_empty_dispatch_is_noop(self):
        sched = CoalescingScheduler(SchedulerConfig(), FakeEngine({}))
        batch, executed, pricing = sched.dispatch({})
        assert batch == [] and executed == []
        assert pricing.makespan_s == 0.0
