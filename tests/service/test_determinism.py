"""Fixed-seed determinism: the serving layer's reproducibility contract.

Two runs of the same spec must agree byte-for-byte -- latency
histograms, per-tenant aggregates, and the telemetry roll-up (modulo
wall-clock fields, which are the only nondeterministic quantity in the
system and are stripped before comparison).
"""

import copy
import json

from repro import telemetry
from repro.workloads.service_load import ServiceLoadSpec, run_service_load

SPEC = ServiceLoadSpec(
    n_tenants=4,
    vectors_per_tenant=3,
    vector_bits=1024,
    index_events=512,
    n_requests=64,
    arrival_rate_per_s=5e5,
    seed=1234,
)


def _strip_wall(aggregate: dict) -> dict:
    """Drop wall-clock measurements; everything left is simulated."""
    out = copy.deepcopy(aggregate)
    for span in out.get("spans", {}).values():
        span.pop("wall_s", None)
    for name, acc in out.get("accumulators", {}).items():
        if name.endswith(".seconds"):  # wall-time totals; counts stay
            acc.pop("total", None)
    return out


def _one_run(spec):
    telemetry.reset()
    telemetry.configure(enabled=True)
    try:
        service, stats = run_service_load(spec)
        aggregate = _strip_wall(telemetry.aggregate())
    finally:
        telemetry.configure(enabled=False)
        telemetry.reset()
    return service, stats, aggregate


class TestDeterminism:
    def test_stats_json_is_byte_identical(self):
        _, stats_a, _ = _one_run(SPEC)
        _, stats_b, _ = _one_run(SPEC)
        assert stats_a.to_json() == stats_b.to_json()

    def test_latency_histograms_are_byte_identical(self):
        _, stats_a, _ = _one_run(SPEC)
        _, stats_b, _ = _one_run(SPEC)
        assert stats_a.latency.to_json() == stats_b.latency.to_json()
        for tenant in stats_a.tenants:
            assert (
                stats_a.tenants[tenant].latency.to_json()
                == stats_b.tenants[tenant].latency.to_json()
            )

    def test_telemetry_aggregates_are_identical(self):
        _, _, agg_a = _one_run(SPEC)
        _, _, agg_b = _one_run(SPEC)
        assert json.dumps(agg_a, sort_keys=True) == json.dumps(
            agg_b, sort_keys=True
        )

    def test_results_replay_identically(self):
        service_a, _, _ = _one_run(SPEC)
        service_b, _, _ = _one_run(SPEC)
        dicts_a = [r.to_dict() for r in service_a.results]
        dicts_b = [r.to_dict() for r in service_b.results]
        assert dicts_a == dicts_b

    def test_different_seeds_differ(self):
        _, stats_a, _ = _one_run(SPEC)
        other = ServiceLoadSpec(
            **{**SPEC.__dict__, "seed": SPEC.seed + 1}
        )
        _, stats_b, _ = _one_run(other)
        assert stats_a.to_json() != stats_b.to_json()
