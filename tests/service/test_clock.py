"""Tests for the deterministic simulated event loop."""

import pytest

from repro.service.clock import EventLoop


class TestEventLoop:
    def test_starts_at_zero(self):
        assert EventLoop().now == 0.0

    def test_runs_in_time_order(self):
        loop = EventLoop()
        seen = []
        loop.schedule(3e-6, lambda: seen.append("c"))
        loop.schedule(1e-6, lambda: seen.append("a"))
        loop.schedule(2e-6, lambda: seen.append("b"))
        loop.run()
        assert seen == ["a", "b", "c"]
        assert loop.now == 3e-6

    def test_ties_break_by_schedule_order(self):
        loop = EventLoop()
        seen = []
        for tag in ("first", "second", "third"):
            loop.schedule(1e-6, lambda t=tag: seen.append(t))
        loop.run()
        assert seen == ["first", "second", "third"]

    def test_callbacks_can_schedule_more_events(self):
        loop = EventLoop()
        seen = []

        def chain(n):
            seen.append(n)
            if n < 3:
                loop.schedule_after(1e-6, lambda: chain(n + 1))

        loop.schedule(0.0, lambda: chain(0))
        loop.run()
        assert seen == [0, 1, 2, 3]
        assert loop.now == pytest.approx(3e-6)

    def test_rejects_scheduling_in_the_past(self):
        loop = EventLoop()
        loop.schedule(1e-6, lambda: loop.schedule(0.0, lambda: None))
        with pytest.raises(ValueError, match="past"):
            loop.run()

    def test_max_events_guard(self):
        loop = EventLoop()

        def forever():
            loop.schedule_after(1e-9, forever)

        loop.schedule(0.0, forever)
        with pytest.raises(RuntimeError, match="event budget"):
            loop.run(max_events=100)

    def test_pending_and_processed_counts(self):
        loop = EventLoop()
        loop.schedule(1e-6, lambda: None)
        loop.schedule(2e-6, lambda: None)
        assert loop.pending == 2
        loop.run()
        assert loop.pending == 0
        assert loop.events_processed == 2
