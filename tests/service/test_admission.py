"""Tests for admission control: quotas, token buckets, and policies."""

import math

import pytest

from repro.service.admission import (
    AdmissionController,
    Admit,
    OverloadPolicy,
    TenantQuota,
    TokenBucket,
)


class TestTenantQuota:
    def test_defaults_are_valid(self):
        quota = TenantQuota()
        assert quota.max_pending >= 1
        assert math.isinf(quota.rate_per_s)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_pending": 0},
            {"rate_per_s": 0.0},
            {"rate_per_s": -1.0},
            {"burst": 0},
            {"max_delay_s": -0.1},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            TenantQuota(**kwargs)


class TestTokenBucket:
    def test_starts_full(self):
        bucket = TokenBucket(rate_per_s=10.0, burst=3)
        assert bucket.take(0.0)
        assert bucket.take(0.0)
        assert bucket.take(0.0)
        assert not bucket.take(0.0)

    def test_refills_over_simulated_time(self):
        bucket = TokenBucket(rate_per_s=10.0, burst=1)
        assert bucket.take(0.0)
        assert not bucket.take(0.05)  # half a token accrued
        assert bucket.take(0.1)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate_per_s=1000.0, burst=2)
        bucket.take(0.0)
        bucket.take(0.0)
        # a long quiet period accrues at most `burst` tokens
        assert bucket.take(100.0)
        assert bucket.take(100.0)
        assert not bucket.take(100.0)

    def test_infinite_rate_never_blocks(self):
        bucket = TokenBucket(rate_per_s=math.inf, burst=1)
        for _ in range(100):
            assert bucket.take(0.0)
        assert bucket.wait_s(0.0) == 0.0

    def test_reserve_paces_at_exactly_one_over_rate(self):
        bucket = TokenBucket(rate_per_s=10.0, burst=1)
        assert bucket.take(0.0)
        t1 = bucket.reserve(0.0)
        t2 = bucket.reserve(0.0)
        assert t1 == pytest.approx(0.1)
        assert t2 == pytest.approx(0.2)

    def test_wait_s_reports_time_to_next_token(self):
        bucket = TokenBucket(rate_per_s=10.0, burst=1)
        bucket.take(0.0)
        assert bucket.wait_s(0.0) == pytest.approx(0.1)


class TestAdmissionController:
    def make(self, **quota_kwargs):
        ctrl = AdmissionController()
        ctrl.register("t", TenantQuota(**quota_kwargs))
        return ctrl

    def test_duplicate_registration_rejected(self):
        ctrl = self.make()
        with pytest.raises(ValueError, match="already registered"):
            ctrl.register("t")

    def test_admits_under_quota(self):
        ctrl = self.make()
        decision = ctrl.decide("t", now=0.0, pending=0)
        assert decision.outcome is Admit.ENQUEUE

    def test_queue_bound_rejects(self):
        ctrl = self.make(max_pending=4)
        decision = ctrl.decide("t", now=0.0, pending=4)
        assert decision.outcome is Admit.REJECT
        assert "queue full" in decision.reason

    def test_rate_quota_rejects_by_default(self):
        ctrl = self.make(rate_per_s=10.0, burst=1)
        assert ctrl.decide("t", 0.0, 0).outcome is Admit.ENQUEUE
        decision = ctrl.decide("t", 0.0, 1)
        assert decision.outcome is Admit.REJECT
        assert "rate quota" in decision.reason

    def test_delay_policy_paces_into_the_future(self):
        ctrl = self.make(
            rate_per_s=10.0, burst=1, policy=OverloadPolicy.DELAY
        )
        assert ctrl.decide("t", 0.0, 0).outcome is Admit.ENQUEUE
        decision = ctrl.decide("t", 0.0, 1)
        assert decision.outcome is Admit.DELAY
        assert decision.retry_at_s == pytest.approx(0.1)

    def test_delay_policy_bounds_the_pacing(self):
        ctrl = self.make(
            rate_per_s=10.0,
            burst=1,
            policy=OverloadPolicy.DELAY,
            max_delay_s=0.15,
        )
        ctrl.decide("t", 0.0, 0)  # drains the bucket
        assert ctrl.decide("t", 0.0, 1).outcome is Admit.DELAY  # 0.1s wait
        decision = ctrl.decide("t", 0.0, 2)  # next token is 0.2s out
        assert decision.outcome is Admit.REJECT
        assert "pacing delay" in decision.reason

    def test_tenants_metered_independently(self):
        ctrl = AdmissionController()
        ctrl.register("a", TenantQuota(rate_per_s=10.0, burst=1))
        ctrl.register("b", TenantQuota(rate_per_s=10.0, burst=1))
        assert ctrl.decide("a", 0.0, 0).outcome is Admit.ENQUEUE
        assert ctrl.decide("a", 0.0, 1).outcome is Admit.REJECT
        # tenant b's bucket is untouched by a's exhaustion
        assert ctrl.decide("b", 0.0, 0).outcome is Admit.ENQUEUE
