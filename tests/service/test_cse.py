"""Tests for cross-tenant duplicate folding in the serving layer."""

import numpy as np

from repro import telemetry
from repro.backends.config import SystemConfig
from repro.service.engine import ResidentPimEngine, ServiceCall
from repro.service.request import QueryRequest
from repro.service.service import BitmapQueryService, ServiceConfig


def _vectors(seed=7, n=2048):
    rng = np.random.default_rng(seed)
    return (
        rng.integers(0, 2, n, dtype=np.uint8),
        rng.integers(0, 2, n, dtype=np.uint8),
    )


def _service(fold_duplicates=True, **kwargs) -> BitmapQueryService:
    return BitmapQueryService(
        ServiceConfig(
            keep_bits=True, fold_duplicates=fold_duplicates, **kwargs
        )
    )


def _two_tenant_service(bits_a, bits_b, fold_duplicates=True):
    service = _service(fold_duplicates)
    for tenant in ("t1", "t2"):
        service.register_tenant(tenant)
        service.load_vectors(tenant, {"a": bits_a, "b": bits_b})
    return service


class TestCrossTenantFolding:
    def test_shared_execution_with_isolated_results(self):
        """The satellite test: two tenants issue the same expression in
        one batch; it executes once, each tenant gets an independent
        result buffer, and per-tenant latency/energy attribution in
        ServiceStats stays nonzero and correct."""
        bits_a, bits_b = _vectors()
        service = _two_tenant_service(bits_a, bits_b)
        # first request dispatches alone (the service is eager); the
        # remaining three share the second batch, where t1/t2 duplicates
        # of "a and b" fold into one execution
        folds0 = telemetry.counter("service.scheduler.cse_folds").value
        service.submit_many(
            [
                QueryRequest.bitwise(1, "t1", "and", ("a", "b"), 0.0),
                QueryRequest.bitwise(2, "t2", "and", ("b", "a"), 0.0),
                QueryRequest.bitwise(3, "t1", "and", ("a", "b"), 0.0),
                QueryRequest.bitwise(4, "t2", "xor", ("a", "b"), 0.0),
            ]
        )
        stats = service.run()
        assert service.verify_results() == 4
        assert service.scheduler.folds >= 1
        assert (
            telemetry.counter("service.scheduler.cse_folds").value
            > folds0
        )
        completed = [r for r in service.results if r.bits is not None]
        assert len(completed) == 4
        expected_and = bits_a & bits_b
        and_results = [
            r for r in completed if r.request.op == "and"
        ]
        for result in and_results:
            assert np.array_equal(result.bits, expected_and)
            assert result.service_s > 0
            assert result.energy_j > 0
        # independent result buffers: no aliasing between tenants
        for i in range(len(and_results)):
            for j in range(i + 1, len(and_results)):
                assert and_results[i].bits is not and_results[j].bits
        for tenant in ("t1", "t2"):
            per_tenant = stats.tenant(tenant)
            assert per_tenant.completed == 2
            assert per_tenant.service_s > 0
            assert per_tenant.energy_j > 0

    def test_folding_off_executes_every_call(self):
        bits_a, bits_b = _vectors()
        service = _two_tenant_service(bits_a, bits_b, fold_duplicates=False)
        service.submit_many(
            [
                QueryRequest.bitwise(1, "t1", "and", ("a", "b"), 0.0),
                QueryRequest.bitwise(2, "t2", "and", ("a", "b"), 0.0),
                QueryRequest.bitwise(3, "t1", "and", ("a", "b"), 0.0),
            ]
        )
        service.run()
        assert service.verify_results() == 3
        assert service.scheduler.folds == 0

    def test_replay_priced_nonzero(self):
        """A folded call is never free: the replay is billed as a
        row-buffer read of the cached sub-result.  (It is *not* always
        cheaper than the primary: a 2-operand op sharing a coalesced
        batch can attribute less than a full row read; the cheaper-than-
        solo-execution comparison lives in TestCallKey.)"""
        bits_a, bits_b = _vectors()
        service = _two_tenant_service(bits_a, bits_b)
        service.submit_many(
            [
                QueryRequest.bitwise(1, "t1", "or", ("a", "b"), 0.0),
                QueryRequest.bitwise(2, "t1", "and", ("a", "b"), 0.0),
                QueryRequest.bitwise(3, "t2", "and", ("a", "b"), 0.0),
            ]
        )
        service.run()
        assert service.scheduler.folds == 1
        done = {
            r.request.request_id: r
            for r in service.results
            if r.bits is not None
        }
        # request 3 replayed request 2's execution: billed, never free
        assert done[3].service_s > 0
        assert done[3].energy_j > 0
        assert done[2].service_s > 0


class TestCallKey:
    def _engine(self):
        return ResidentPimEngine(
            SystemConfig(backend="pinatubo", placement="bank_spread")
        )

    def test_content_identity_across_tenants_and_names(self):
        engine = self._engine()
        bits_a, bits_b = _vectors()
        engine.load_vector("t1", "x", bits_a)
        engine.load_vector("t1", "y", bits_b)
        engine.load_vector("t2", "p", bits_a)
        engine.load_vector("t2", "q", bits_b)
        k1 = engine.call_key(ServiceCall("t1", "and", ("x", "y")))
        k2 = engine.call_key(ServiceCall("t2", "and", ("q", "p")))
        assert k1 == k2
        # different content -> different key
        k3 = engine.call_key(ServiceCall("t1", "and", ("x", "x")))
        assert k3 != k1
        # different op -> different key
        k4 = engine.call_key(ServiceCall("t1", "xor", ("x", "y")))
        assert k4 != k1

    def test_xor_multiset_is_not_deduplicated(self):
        engine = self._engine()
        bits_a, bits_b = _vectors()
        engine.load_vector("t1", "x", bits_a)
        engine.load_vector("t1", "y", bits_b)
        assert engine.call_key(
            ServiceCall("t1", "xor", ("x", "x", "y"))
        ) != engine.call_key(ServiceCall("t1", "xor", ("x", "y")))
        # while the idempotent AND dedups
        assert engine.call_key(
            ServiceCall("t1", "and", ("x", "x", "y"))
        ) == engine.call_key(ServiceCall("t1", "and", ("x", "y")))

    def test_unknown_vector_disables_folding(self):
        engine = self._engine()
        assert engine.call_key(ServiceCall("t1", "and", ("x", "y"))) is None

    def test_replay_result_isolated_from_primary(self):
        engine = self._engine()
        bits_a, bits_b = _vectors()
        engine.load_vector("t1", "x", bits_a)
        engine.load_vector("t1", "y", bits_b)
        engine.load_vector("t2", "x", bits_a)
        engine.load_vector("t2", "y", bits_b)
        (primary,) = engine.execute([ServiceCall("t1", "or", ("x", "y"))])
        replayed = engine.replay(ServiceCall("t2", "or", ("x", "y")), primary)
        assert np.array_equal(replayed.bits, primary.bits)
        assert replayed.bits is not primary.bits
        assert replayed.popcount == primary.popcount
        assert replayed.latency_s > 0
        assert replayed.energy_j > 0
        assert replayed.latency_s < primary.latency_s
        assert replayed.steps == 0
        assert replayed.in_memory
