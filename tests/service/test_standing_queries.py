"""Tests for the write path and standing queries of the serving layer.

Updates ride the same coalesced batches as reads (ordered first, so a
batch reads its own writes); standing queries registered via SUBSCRIBE
are re-evaluated by the writes that touch them and push
:class:`DeltaNotification`\\ s through the event loop.  The determinism
tests pin the acceptance criterion: two seeded runs of a mixed
read/write/subscribe load must agree byte-for-byte on stats and on the
notification stream.
"""

import dataclasses

import numpy as np

from repro.service import (
    BitmapQueryService,
    QueryRequest,
    RequestStatus,
    ServiceConfig,
    SubscribeRequest,
    TenantQuota,
    UpdateRequest,
)
from repro.workloads.service_load import (
    ServiceLoadSpec,
    generate_requests,
    run_service_load,
)

N_BITS = 2048


def make_service(**config_kwargs) -> BitmapQueryService:
    config_kwargs.setdefault("keep_bits", True)
    return BitmapQueryService(ServiceConfig(**config_kwargs))


def load_basic(svc, tenant="t", seed=0):
    rng = np.random.default_rng(seed)
    vectors = {
        name: rng.integers(0, 2, N_BITS, dtype=np.uint8)
        for name in ("a", "b", "c")
    }
    svc.register_tenant(tenant)
    svc.load_vectors(tenant, vectors)
    return vectors


def _result(svc, request_id):
    (result,) = [
        r for r in svc.results if r.request.request_id == request_id
    ]
    return result


class TestUpdatePath:
    def test_update_rewrites_and_later_read_sees_it(self):
        svc = make_service()
        v = load_basic(svc)
        new_a = np.random.default_rng(1).integers(
            0, 2, N_BITS, dtype=np.uint8
        )
        svc.submit(UpdateRequest(1, "t", "a", new_a, 0.0))
        svc.submit(QueryRequest.bitwise(2, "t", "or", ("a", "b"), 1e-6))
        stats = svc.run()
        assert stats.completed == 2
        assert stats.updates == 1
        assert stats.tenants["t"].updates == 1
        np.testing.assert_array_equal(_result(svc, 2).bits, new_a | v["b"])
        # an update's popcount reports the bits it actually changed
        upd = _result(svc, 1)
        assert upd.popcount == int((v["a"] ^ new_a).sum())
        assert upd.latency_s > 0  # the delta-capturing write is priced

    def test_update_ordered_before_reads_within_a_batch(self):
        """Read-your-writes inside one coalesced batch: the scheduler
        executes a batch's updates first, so a read sharing the batch
        sees the rewritten vector regardless of arrival order."""
        svc = make_service(max_batch=8)
        v = load_basic(svc)
        new_a = np.random.default_rng(2).integers(
            0, 2, N_BITS, dtype=np.uint8
        )
        # request 0 occupies the server; the read then the update arrive
        # while it runs and coalesce into the same second batch
        svc.submit(QueryRequest.bitwise(0, "t", "inv", ("b",), 0.0))
        svc.submit(QueryRequest.bitwise(1, "t", "or", ("a", "b"), 1e-9))
        svc.submit(UpdateRequest(2, "t", "a", new_a, 2e-9))
        stats = svc.run()
        assert stats.completed == 3
        read, upd = _result(svc, 1), _result(svc, 2)
        assert read.batch_id == upd.batch_id  # they shared a batch
        np.testing.assert_array_equal(read.bits, new_a | v["b"])

    def test_update_validates_vector_and_size(self):
        svc = make_service()
        load_basic(svc)
        bad_name = UpdateRequest(
            1, "t", "nope", np.zeros(N_BITS, dtype=np.uint8), 0.0
        )
        bad_size = UpdateRequest(
            2, "t", "a", np.zeros(N_BITS // 2, dtype=np.uint8), 0.0
        )
        for request, exc in ((bad_name, KeyError), (bad_size, ValueError)):
            try:
                svc.submit(request)
            except exc:
                continue
            raise AssertionError(f"{request.vector!r} submit did not raise")


class TestStandingQueries:
    def test_snapshot_then_update_notifications(self):
        svc = make_service()
        v = load_basic(svc)
        svc.submit(SubscribeRequest(10, "t", "xor", ("a", "b"), 0.0))
        new_a = np.random.default_rng(3).integers(
            0, 2, N_BITS, dtype=np.uint8
        )
        # arrives well after the subscription's initial evaluation
        svc.submit(UpdateRequest(11, "t", "a", new_a, 1.0))
        stats = svc.run()
        assert stats.subscriptions == 1
        assert stats.updates == 1
        assert stats.notifications == 2

        old = v["a"] ^ v["b"]
        new = new_a ^ v["b"]
        snap, delta = svc.notifications
        assert snap.subscription_id == delta.subscription_id == 10
        assert snap.seq == 0 and snap.changed_bits == 0
        assert snap.popcount == int(old.sum())
        assert delta.seq == 1
        assert delta.popcount == int(new.sum())
        assert delta.changed_bits == int((old ^ new).sum())
        assert delta.triggered_by == (11,)
        assert snap.emitted_s <= delta.emitted_s
        np.testing.assert_array_equal(svc.standing_query(10).bits, new)

    def test_unrelated_update_does_not_notify(self):
        svc = make_service()
        load_basic(svc)
        svc.submit(SubscribeRequest(10, "t", "xor", ("a", "b"), 0.0))
        new_c = np.random.default_rng(4).integers(
            0, 2, N_BITS, dtype=np.uint8
        )
        svc.submit(UpdateRequest(11, "t", "c", new_c, 1.0))
        stats = svc.run()
        # only the seq-0 snapshot: the write touched no subscribed vector
        assert stats.notifications == 1
        assert svc.notifications[0].seq == 0

    def test_fanout_bound_rejects_excess_subscriptions(self):
        svc = make_service(default_quota=TenantQuota(max_subscriptions=1))
        load_basic(svc)
        svc.submit(SubscribeRequest(1, "t", "or", ("a", "b"), 0.0))
        svc.submit(SubscribeRequest(2, "t", "and", ("b", "c"), 0.0))
        stats = svc.run()
        assert stats.subscriptions == 1
        rejected = [
            r for r in svc.results if r.status is RequestStatus.REJECTED
        ]
        assert len(rejected) == 1
        assert rejected[0].request.request_id == 2
        assert "fan-out" in rejected[0].reject_reason


MIXED_SPEC = ServiceLoadSpec(
    n_tenants=3,
    vectors_per_tenant=3,
    vector_bits=1024,
    index_events=256,
    n_requests=48,
    arrival_rate_per_s=5e5,
    write_ratio=0.25,
    subscriptions_per_tenant=1,
    seed=77,
)


class TestMixedLoadDeterminism:
    def test_two_seeded_runs_are_byte_identical(self):
        """The acceptance criterion: same seed, same mixed
        read/write/subscribe load => byte-identical ServiceStats JSON
        and an identical delta-notification stream."""
        svc_a, stats_a = run_service_load(MIXED_SPEC)
        svc_b, stats_b = run_service_load(MIXED_SPEC)
        assert stats_a.updates > 0
        assert stats_a.subscriptions > 0
        assert stats_a.notifications > 0
        assert stats_a.to_json() == stats_b.to_json()
        notes_a = [n.to_dict() for n in svc_a.notifications]
        notes_b = [n.to_dict() for n in svc_b.notifications]
        assert notes_a == notes_b

    def test_write_conversion_keeps_reads_identical(self):
        """``write_ratio`` converts a seeded subset of the read stream
        in place: the kept reads are byte-identical to the read-only
        stream, and the conversion count matches the ratio."""
        base = dataclasses.replace(
            MIXED_SPEC, write_ratio=0.0, subscriptions_per_tenant=0
        )
        reads = generate_requests(base)
        mixed = generate_requests(
            dataclasses.replace(base, write_ratio=0.25)
        )
        assert all(isinstance(r, QueryRequest) for r in reads)
        updates = [r for r in mixed if isinstance(r, UpdateRequest)]
        assert len(updates) == round(0.25 * base.n_requests)
        for r0, r1 in zip(reads, mixed):
            assert r1.request_id == r0.request_id
            assert r1.tenant == r0.tenant
            assert r1.arrival_s == r0.arrival_s
            if not isinstance(r1, UpdateRequest):
                assert r1.op == r0.op
                assert r1.vectors == r0.vectors

    def test_subscription_stream_is_seeded(self):
        subs_only = dataclasses.replace(MIXED_SPEC, write_ratio=0.0)
        first = generate_requests(subs_only)
        second = generate_requests(subs_only)
        subs = [r for r in first if isinstance(r, SubscribeRequest)]
        assert len(subs) == (
            subs_only.n_tenants * subs_only.subscriptions_per_tenant
        )
        for s0, s1 in zip(first, second):
            if isinstance(s0, SubscribeRequest):
                assert (s0.op, s0.vectors, s0.tenant) == (
                    s1.op,
                    s1.vectors,
                    s1.tenant,
                )
