"""End-to-end tests for the multi-tenant bitmap-query service."""

import numpy as np
import pytest

from repro.backends.config import SystemConfig
from repro.service import (
    BitmapQueryService,
    OverloadPolicy,
    QueryRequest,
    RequestStatus,
    ServiceConfig,
    TenantQuota,
    UnsupportedOpError,
)


def make_service(**config_kwargs) -> BitmapQueryService:
    config_kwargs.setdefault("keep_bits", True)
    return BitmapQueryService(ServiceConfig(**config_kwargs))


def load_basic(svc, tenant, n_bits=2048, seed=0):
    rng = np.random.default_rng(seed)
    vectors = {
        name: rng.integers(0, 2, n_bits, dtype=np.uint8)
        for name in ("a", "b", "c")
    }
    svc.register_tenant(tenant)
    svc.load_vectors(tenant, vectors)
    return vectors


class TestLifecycle:
    def test_single_request_completes_with_oracle_parity(self):
        svc = make_service()
        vectors = load_basic(svc, "t")
        svc.submit(QueryRequest.bitwise(1, "t", "and", ("a", "b"), 0.0))
        stats = svc.run()
        assert stats.completed == 1
        (result,) = svc.results
        assert result.status is RequestStatus.COMPLETED
        expected = vectors["a"] & vectors["b"]
        np.testing.assert_array_equal(result.bits, expected)
        assert result.popcount == int(expected.sum())
        assert result.latency_s > 0
        assert result.energy_j > 0

    def test_all_ops_match_numpy_oracle(self):
        svc = make_service()
        load_basic(svc, "t")
        svc.submit(QueryRequest.bitwise(1, "t", "and", ("a", "b", "c"), 0.0))
        svc.submit(QueryRequest.bitwise(2, "t", "or", ("a", "b", "c"), 1e-6))
        svc.submit(QueryRequest.bitwise(3, "t", "xor", ("a", "b"), 2e-6))
        svc.submit(QueryRequest.bitwise(4, "t", "inv", ("a",), 3e-6))
        svc.run()
        assert svc.verify_results() == 4

    def test_range_query_lowers_to_wide_or(self):
        svc = make_service()
        svc.register_tenant("t")
        rng = np.random.default_rng(1)
        bins = rng.integers(0, 8, 512)
        svc.load_bitmap_index("t", "temp", bins, 8)
        svc.submit(QueryRequest.range_query(1, "t", "temp", 2, 5, 0.0))
        stats = svc.run()
        assert stats.completed == 1
        expected = ((bins >= 2) & (bins <= 5)).astype(np.uint8)
        np.testing.assert_array_equal(svc.results[0].bits, expected)

    def test_unknown_tenant_and_vector_fail_fast(self):
        svc = make_service()
        load_basic(svc, "t")
        with pytest.raises(KeyError, match="unknown tenant"):
            svc.submit(QueryRequest.bitwise(1, "ghost", "and", ("a", "b"), 0.0))
        with pytest.raises(KeyError, match="no vector"):
            svc.submit(QueryRequest.bitwise(1, "t", "and", ("a", "nope"), 0.0))

    def test_unsupported_op_rejected_with_clear_error(self):
        # the sdram baseline serves only or/and: xor must be refused at
        # submission, naming the backend and its supported ops
        svc = BitmapQueryService(
            ServiceConfig(system=SystemConfig(backend="sdram"))
        )
        svc.register_tenant("t")
        svc.load_vectors(
            "t",
            {
                "a": np.ones(512, dtype=np.uint8),
                "b": np.zeros(512, dtype=np.uint8),
            },
        )
        with pytest.raises(UnsupportedOpError) as err:
            svc.submit(QueryRequest.bitwise(1, "t", "xor", ("a", "b"), 0.0))
        message = str(err.value)
        assert "xor" in message
        assert "and, or" in message
        assert "registry" in message


class TestCoalescing:
    def test_backlogged_requests_share_batches(self):
        svc = make_service(max_batch=8)
        for t in ("a", "b", "c", "d"):
            load_basic(svc, t, seed=hash(t) % 100)
        # all arrive at t=0: the first dispatch takes one, the rest
        # backlog and coalesce
        for i, t in enumerate(("a", "b", "c", "d") * 2):
            svc.submit(QueryRequest.bitwise(i, t, "or", ("a", "b"), 0.0))
        stats = svc.run()
        assert stats.completed == 8
        assert stats.batches < 8
        assert stats.coalesced_requests > 0
        assert svc.verify_results() == 8

    def test_max_batch_one_never_coalesces(self):
        svc = make_service(max_batch=1)
        load_basic(svc, "t")
        for i in range(5):
            svc.submit(QueryRequest.bitwise(i, "t", "or", ("a", "b"), 0.0))
        stats = svc.run()
        assert stats.batches == 5
        assert stats.coalesced_requests == 0

    def test_tenants_place_on_distinct_shards(self):
        svc = make_service()
        for t in ("a", "b"):
            load_basic(svc, t)
        engine = svc.engine
        assert engine.shard_of("a") != engine.shard_of("b")


class TestBackpressure:
    def test_queue_bound_rejects_without_perturbing_others(self):
        svc = make_service(
            default_quota=TenantQuota(max_pending=2),
        )
        greedy_vectors = load_basic(svc, "greedy", seed=1)
        polite_vectors = load_basic(svc, "polite", seed=2)
        # greedy floods 10 simultaneous arrivals against a 2-deep queue;
        # polite sends one
        for i in range(10):
            svc.submit(
                QueryRequest.bitwise(i, "greedy", "and", ("a", "b"), 0.0)
            )
        svc.submit(
            QueryRequest.bitwise(100, "polite", "xor", ("a", "b"), 0.0)
        )
        stats = svc.run()  # must drain without deadlock
        greedy = stats.tenant("greedy")
        assert greedy.rejected > 0
        assert greedy.completed + greedy.rejected == 10
        rejected = [
            r for r in svc.results if r.status is RequestStatus.REJECTED
        ]
        assert all("queue full" in r.reject_reason for r in rejected)
        # the polite tenant is untouched: completed, correct, unrejected
        polite = stats.tenant("polite")
        assert polite.completed == 1 and polite.rejected == 0
        polite_result = next(
            r for r in svc.results if r.request.tenant == "polite"
        )
        np.testing.assert_array_equal(
            polite_result.bits, polite_vectors["a"] ^ polite_vectors["b"]
        )
        # and the greedy tenant's completed results are still correct
        assert svc.verify_results() == stats.completed
        assert (
            greedy_vectors["a"].size == polite_vectors["a"].size
        )  # same shapes: rejection was about quota, not data

    def test_rate_quota_rejection(self):
        svc = make_service(
            default_quota=TenantQuota(rate_per_s=1.0, burst=2),
        )
        load_basic(svc, "t")
        for i in range(5):
            svc.submit(
                QueryRequest.bitwise(i, "t", "or", ("a", "b"), i * 1e-6)
            )
        stats = svc.run()
        assert stats.completed == 2  # burst
        assert stats.rejected == 3
        assert all(
            "rate quota" in r.reject_reason
            for r in svc.results
            if r.status is RequestStatus.REJECTED
        )

    def test_delay_policy_paces_instead_of_rejecting(self):
        svc = make_service(
            default_quota=TenantQuota(
                rate_per_s=1e5,
                burst=1,
                policy=OverloadPolicy.DELAY,
                max_delay_s=1.0,
            ),
        )
        load_basic(svc, "t")
        for i in range(4):
            svc.submit(QueryRequest.bitwise(i, "t", "or", ("a", "b"), 0.0))
        stats = svc.run()
        assert stats.completed == 4
        assert stats.rejected == 0
        assert stats.delayed == 3
        # paced requests complete 1/rate apart, not all at once
        times = sorted(
            r.completed_s
            for r in svc.results
            if r.status is RequestStatus.COMPLETED
        )
        assert times[-1] - times[0] >= 2e-5

    def test_delay_policy_still_bounds_total_backlog(self):
        svc = make_service(
            default_quota=TenantQuota(
                max_pending=3,
                rate_per_s=1e5,
                burst=1,
                policy=OverloadPolicy.DELAY,
                max_delay_s=1.0,
            ),
        )
        load_basic(svc, "t")
        for i in range(10):
            svc.submit(QueryRequest.bitwise(i, "t", "or", ("a", "b"), 0.0))
        stats = svc.run()
        assert stats.rejected > 0  # queue bound caught the flood
        assert stats.completed + stats.rejected == 10


class TestAccounting:
    def test_stats_reconcile_with_results(self):
        svc = make_service(max_batch=4)
        load_basic(svc, "t")
        for i in range(6):
            svc.submit(
                QueryRequest.bitwise(i, "t", "or", ("a", "b"), i * 1e-7)
            )
        stats = svc.run()
        completed = [
            r for r in svc.results if r.status is RequestStatus.COMPLETED
        ]
        assert stats.completed == len(completed) == 6
        assert stats.latency.count == 6
        assert stats.energy_j == pytest.approx(
            sum(r.energy_j for r in completed)
        )
        assert stats.ops_per_s > 0
        # p99 >= p50 by construction
        assert stats.latency.percentile(99) >= stats.latency.percentile(50)

    def test_summary_and_json_render(self):
        svc = make_service()
        load_basic(svc, "t")
        svc.submit(QueryRequest.bitwise(1, "t", "or", ("a", "b"), 0.0))
        stats = svc.run()
        assert "ServiceStats" in stats.summary()
        assert '"completed": 1' in stats.to_json()
