"""ServiceClient facade: verb<->request equivalence, handles, the shim."""

import warnings

import numpy as np
import pytest

from repro.service import (
    BitmapQueryService,
    QueryRequest,
    ServiceClient,
    SubscribeRequest,
    SubscriptionHandle,
    UpdateRequest,
)


def vectors(seed=0, n=4, bits=512):
    rng = np.random.default_rng(seed)
    return {
        f"v{i}": rng.integers(0, 2, bits, dtype=np.uint8) for i in range(n)
    }


def loaded_client():
    client = ServiceClient(BitmapQueryService())
    client.register_tenant("t")
    client.load_vectors("t", vectors())
    return client


class TestVerbEquivalence:
    """Each facade verb submits the request legacy callers built by hand."""

    def test_query_builds_the_legacy_request(self):
        client = loaded_client()
        handle = client.query("t", "and", ("v0", "v1"), at=1e-3, request_id=7)
        assert handle.request == QueryRequest.bitwise(
            7, "t", "and", ("v0", "v1"), 1e-3
        )

    def test_range_query_builds_the_legacy_request(self):
        client = ServiceClient(BitmapQueryService())
        client.register_tenant("t")
        rng = np.random.default_rng(1)
        client.load_bitmap_index("t", "col", rng.integers(0, 8, 128), 8)
        handle = client.range_query("t", "col", 2, 5, at=0.0, request_id=3)
        assert handle.request == QueryRequest.range_query(
            3, "t", "col", 2, 5, 0.0
        )

    def test_update_builds_the_legacy_request(self):
        client = loaded_client()
        bits = vectors(seed=9)["v0"]
        handle = client.update("t", "v0", bits, at=2e-3, request_id=5)
        legacy = UpdateRequest(5, "t", "v0", bits, 2e-3)
        # UpdateRequest is eq=False; compare the fields that matter
        assert handle.request.request_id == legacy.request_id
        assert handle.request.vector == legacy.vector
        assert handle.request.arrival_s == legacy.arrival_s
        assert np.array_equal(handle.request.bits, legacy.bits)
        assert handle.request.internal is False

    def test_subscribe_builds_the_legacy_request(self):
        client = loaded_client()
        handle = client.subscribe("t", "xor", ("v0", "v1"), at=0.0, request_id=2)
        assert handle.request == SubscribeRequest(
            2, "t", "xor", ("v0", "v1"), 0.0
        )

    def test_facade_run_equals_legacy_submit_run(self):
        legacy = BitmapQueryService()
        legacy.register_tenant("t")
        legacy.load_vectors("t", vectors())
        legacy.submit_request(
            QueryRequest.bitwise(0, "t", "and", ("v0", "v1"), 0.0)
        )
        legacy.submit_request(
            QueryRequest.bitwise(1, "t", "or", ("v1", "v2", "v3"), 1e-4)
        )
        legacy_stats = legacy.run()

        client = loaded_client()
        client.query("t", "and", ("v0", "v1"), at=0.0)
        client.query("t", "or", ("v1", "v2", "v3"), at=1e-4)
        facade_stats = client.run()
        assert facade_stats.to_json() == legacy_stats.to_json()
        assert [r.to_dict() for r in client.target.results] == [
            r.to_dict() for r in legacy.results
        ]


class TestHandles:
    def test_result_before_run_raises(self):
        client = loaded_client()
        handle = client.query("t", "and", ("v0", "v1"))
        assert not handle.done
        with pytest.raises(RuntimeError, match="no result yet"):
            handle.result()

    def test_resolved_after_run(self):
        client = loaded_client()
        handle = client.query("t", "or", ("v0", "v1"))
        client.run()
        assert handle.done and handle.completed and not handle.rejected
        assert handle.popcount == client.target.oracle_popcount(handle.request)
        assert handle.latency_s > 0

    def test_subscription_handle_collects_notifications(self):
        client = loaded_client()
        sub = client.subscribe("t", "xor", ("v0", "v1"), at=0.0)
        assert isinstance(sub, SubscriptionHandle)
        client.update("t", "v0", vectors(seed=3)["v1"], at=1e-3)
        client.run()
        assert sub.active
        assert [n.seq for n in sub.notifications] == [0, 1]

    def test_second_run_does_not_duplicate_notifications(self):
        client = loaded_client()
        sub = client.subscribe("t", "xor", ("v0", "v1"), at=0.0)
        client.update("t", "v0", vectors(seed=3)["v1"], at=1e-3)
        client.run()
        client.update("t", "v0", vectors(seed=4)["v2"], at=2.0)
        client.run()
        assert [n.seq for n in sub.notifications] == [0, 1, 2]

    def test_auto_ids_and_arrivals_are_monotonic(self):
        client = loaded_client()
        a = client.query("t", "and", ("v0", "v1"))
        b = client.query("t", "or", ("v1", "v2"), at=5e-3)
        c = client.query("t", "xor", ("v2", "v3"))  # inherits 5e-3
        assert [h.request_id for h in (a, b, c)] == [0, 1, 2]
        assert c.request.arrival_s == 5e-3

    def test_explicit_id_advances_the_counter(self):
        client = loaded_client()
        client.query("t", "and", ("v0", "v1"), request_id=10)
        handle = client.query("t", "or", ("v1", "v2"))
        assert handle.request_id == 11

    def test_reused_id_rejected(self):
        client = loaded_client()
        client.query("t", "and", ("v0", "v1"), request_id=4)
        with pytest.raises(ValueError, match="already in use"):
            client.query("t", "or", ("v1", "v2"), request_id=4)

    def test_stats_passthrough(self):
        client = loaded_client()
        client.query("t", "and", ("v0", "v1"))
        stats = client.run()
        assert client.stats is stats


class TestTargetValidation:
    def test_non_target_rejected(self):
        with pytest.raises(TypeError, match="not a serving target"):
            ServiceClient(object())


class TestDeprecatedSubmitShim:
    def test_submit_warns_but_still_works(self):
        service = BitmapQueryService()
        service.register_tenant("t")
        service.load_vectors("t", vectors())
        request = QueryRequest.bitwise(0, "t", "and", ("v0", "v1"), 0.0)
        with pytest.warns(DeprecationWarning, match="ServiceClient"):
            service.submit(request)
        stats = service.run()
        assert stats.completed == 1

    def test_submit_request_does_not_warn(self):
        service = BitmapQueryService()
        service.register_tenant("t")
        service.load_vectors("t", vectors())
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            service.submit_request(
                QueryRequest.bitwise(0, "t", "and", ("v0", "v1"), 0.0)
            )

    def test_shim_warns_for_every_request_type(self):
        service = BitmapQueryService()
        service.register_tenant("t")
        service.load_vectors("t", vectors())
        bits = vectors(seed=9)["v0"]
        for request in (
            QueryRequest.bitwise(0, "t", "and", ("v0", "v1"), 0.0),
            UpdateRequest(1, "t", "v0", bits, 0.0),
            SubscribeRequest(2, "t", "xor", ("v1", "v2"), 0.0),
        ):
            with pytest.warns(DeprecationWarning, match="deprecated"):
                service.submit(request)
        stats = service.run()
        assert stats.completed == 3

    def test_shim_results_match_facade_verbs(self):
        """Same stream through submit() and through the facade verbs
        produces byte-identical results -- the shim is only a warning."""

        def play(use_shim):
            service = BitmapQueryService()
            client = ServiceClient(service)
            client.register_tenant("t")
            client.load_vectors("t", vectors())
            bits = vectors(seed=9)["v0"]
            if use_shim:
                stream = [
                    QueryRequest.bitwise(0, "t", "and", ("v0", "v1"), 0.0),
                    UpdateRequest(1, "t", "v0", bits, 1e-4),
                    QueryRequest.bitwise(2, "t", "or", ("v0", "v1"), 2e-4),
                ]
                with pytest.warns(DeprecationWarning):
                    for request in stream:
                        service.submit(request)
                service.run()
            else:
                client.query("t", "and", ("v0", "v1"), at=0.0, request_id=0)
                client.update("t", "v0", bits, at=1e-4, request_id=1)
                client.query("t", "or", ("v0", "v1"), at=2e-4, request_id=2)
                client.run()
            return [r.to_dict() for r in service.results]

        assert play(use_shim=True) == play(use_shim=False)
