"""Tests for the figure builders (shape invariants at reduced scale)."""


import pytest

from repro.analysis.figures import (
    fig5_data,
    fig6_data,
    fig7_data,
    fig9_data,
    fig10_data,
    fig11_data,
    fig12_data,
    fig13_data,
    geomean,
)
from repro.analysis.report import (
    format_series,
    format_speedup_table,
    render_report,
)

#: small scale so the whole module runs in seconds
SCALE = 0.02


class TestGeomean:
    def test_value(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])


class TestCircuitFigures:
    def test_fig5_limits(self):
        data = fig5_data("pcm")
        assert data["max_or_rows"] == 128
        assert data["and_feasible"]
        assert data["electrical_or_limit"] > 128
        margins = data["or_margins_log"]
        assert margins[2] > margins[128] > 0

    def test_fig5_stt(self):
        assert fig5_data("stt")["max_or_rows"] == 2

    def test_fig6_sequence_and_corners(self):
        data = fig6_data("pcm", monte_carlo=0)
        assert len(data["sequence"]) == 15
        assert data["corner_report"].all_pass

    def test_fig7_all_rows_latch(self):
        data = fig7_data(n_rows=4)
        assert data["all_latched"]
        assert data["latched"] == data["activated"]


class TestFig9:
    @pytest.fixture(scope="class")
    def data(self):
        return fig9_data(log_lengths=(10, 14, 19, 20), row_counts=(2, 128))

    def test_series_shape(self, data):
        assert set(data["series"]) == {2, 128}
        assert len(data["series"][2]) == 4

    def test_bandwidth_anchors(self, data):
        assert data["ddr_bus_gbps"] == pytest.approx(12.8)
        assert data["internal_gbps"] > data["ddr_bus_gbps"]

    def test_multirow_exceeds_internal_bandwidth(self, data):
        top = dict(data["series"][128])
        assert top[19] > data["internal_gbps"]

    def test_monotone_in_length(self, data):
        for n, points in data["series"].items():
            ys = [y for _, y in points]
            assert ys[:3] == sorted(ys[:3])  # up to the 2^19 plateau


@pytest.fixture(scope="module")
def fig10():
    return fig10_data(scale=SCALE)


@pytest.fixture(scope="module")
def fig11():
    return fig11_data(scale=SCALE)


@pytest.fixture(scope="module")
def fig12():
    return fig12_data(scale=SCALE)


class TestFig10Shape:
    def test_all_benchmarks_present(self, fig10):
        names = set(fig10) - {"gmean"}
        assert {
            "vector:19-16-1s",
            "vector:19-16-7s",
            "vector:14-12-7s",
            "vector:14-16-7s",
            "vector:14-16-7r",
            "graph:dblp",
            "graph:eswiki",
            "graph:amazon",
            "fastbit:240",
            "fastbit:480",
            "fastbit:720",
        } == names

    def test_pinatubo128_wins_gmean(self, fig10):
        g = fig10["gmean"]
        assert g["Pinatubo-128"] > g["S-DRAM"]
        assert g["Pinatubo-128"] > g["AC-PIM"]
        assert g["Pinatubo-128"] > g["Pinatubo-2"]

    def test_multirow_vector_benchmark(self, fig10):
        row = fig10["vector:19-16-7s"]
        assert row["Pinatubo-128"] > 50 * row["Pinatubo-2"]

    def test_random_collapses_p128(self, fig10):
        row = fig10["vector:14-16-7r"]
        assert row["Pinatubo-128"] == pytest.approx(row["Pinatubo-2"], rel=1e-9)

    def test_sdram_beats_p2_on_long_sequential(self, fig10):
        row = fig10["vector:19-16-1s"]
        assert row["S-DRAM"] > row["Pinatubo-2"]

    def test_p128_vs_sdram_factor(self, fig10):
        """Paper: Pinatubo-128 is ~22x faster than S-DRAM (gmean)."""
        ratio = fig10["gmean"]["Pinatubo-128"] / fig10["gmean"]["S-DRAM"]
        assert 5 <= ratio <= 60


class TestFig11Shape:
    def test_all_pim_schemes_save_energy(self, fig11):
        for w, row in fig11.items():
            if w == "gmean":
                continue
            for scheme, saving in row.items():
                assert saving >= 1.0, (w, scheme)

    def test_pinatubo128_best_on_multirow(self, fig11):
        row = fig11["vector:19-16-7s"]
        assert row["Pinatubo-128"] > 10 * row["S-DRAM"]

    def test_acpim_below_pinatubo128_everywhere(self, fig11):
        for w, row in fig11.items():
            if w == "gmean":
                continue
            assert row["AC-PIM"] < row["Pinatubo-128"] * 1.01, w

    def test_gmean_saving_order_of_magnitude(self, fig11):
        assert fig11["gmean"]["Pinatubo-128"] > 1000


class TestFig12Shape:
    def test_pinatubo_close_to_ideal(self, fig12):
        g = fig12["gmeans"]["all"]
        assert g["speedup"]["Pinatubo-128"] >= 0.93 * g["speedup"]["Ideal"]

    def test_overall_speedups_modest(self, fig12):
        g = fig12["gmeans"]["all"]["speedup"]
        assert 1.0 <= g["Pinatubo-128"] < 2.0  # Amdahl-limited

    def test_energy_savings_positive(self, fig12):
        g = fig12["gmeans"]["all"]["energy"]
        assert g["Pinatubo-128"] >= 1.0

    def test_apps_only(self, fig12):
        assert all(
            w.startswith(("graph:", "fastbit:")) for w in fig12["speedup"]
        )


class TestFig13:
    def test_headline_fractions(self):
        data = fig13_data()
        assert data["pinatubo_fraction"] == pytest.approx(0.009, abs=0.002)
        assert data["acpim_fraction"] == pytest.approx(0.064, abs=0.01)
        assert next(iter(data["pinatubo_breakdown"])) == "inter-sub"


class TestReportRendering:
    def test_format_series(self):
        text = format_series("t", {2: [(10, 1.0), (11, 2.0)]}, "len")
        assert "len" in text and "2" in text

    def test_format_speedup_table(self, fig10):
        text = format_speedup_table("Fig 10", fig10)
        assert "gmean" in text
        assert "Pinatubo-128" in text

    def test_render_report(self, fig10, fig11, fig12):
        from repro.analysis.figures import fig13_data

        headline = {
            "bitwise_speedup": fig10["gmean"]["Pinatubo-128"],
            "bitwise_energy_saving": fig11["gmean"]["Pinatubo-128"],
            "overall_speedup": fig12["gmeans"]["all"]["speedup"]["Pinatubo-128"],
            "overall_energy_saving": fig12["gmeans"]["all"]["energy"]["Pinatubo-128"],
            "paper": {
                "bitwise_speedup": 500.0,
                "bitwise_energy_saving": 28000.0,
                "overall_speedup": 1.12,
                "overall_energy_saving": 1.11,
            },
        }
        text = render_report(headline, fig13_data())
        assert "paper" in text
        assert "%" in text
