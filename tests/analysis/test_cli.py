"""Tests for the `python -m repro.analysis` entry point."""

import pytest

from repro.analysis.__main__ import main


class TestCli:
    def test_single_figure_13(self, capsys):
        assert main(["--figure", "13"]) == 0
        out = capsys.readouterr().out
        assert "Pinatubo 0.94%" in out
        assert "inter-sub" in out

    def test_single_figure_5(self, capsys):
        assert main(["--figure", "5"]) == 0
        out = capsys.readouterr().out
        assert "max OR rows 128" in out

    def test_single_figure_7(self, capsys):
        assert main(["--figure", "7"]) == 0
        assert "all latched: True" in capsys.readouterr().out

    def test_figure_10_scaled(self, capsys):
        assert main(["--figure", "10", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "Pinatubo-128" in out
        assert "gmean" in out

    def test_bad_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["--figure", "8"])
