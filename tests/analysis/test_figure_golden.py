"""Golden-value regression for the Fig. 10/11/12 series.

``golden_figures.json`` was captured from the pre-backend-registry code
at ``scale=0.02``; the registry-driven builders must reproduce every
series to the last float.  This is the contract that lets the backend
layer be refactored without silently moving the paper's numbers.
"""

import json
import math
from pathlib import Path

import pytest

from repro.analysis.figures import fig10_data, fig11_data, fig12_data

GOLDEN_PATH = Path(__file__).parent / "golden_figures.json"


@pytest.fixture(scope="module")
def golden():
    with GOLDEN_PATH.open() as fh:
        return json.load(fh)


def _assert_identical(path, expected, actual):
    if isinstance(expected, dict):
        assert set(expected) == set(actual), (
            f"{path}: keys differ: {sorted(set(expected) ^ set(actual))}"
        )
        for key in expected:
            _assert_identical(f"{path}.{key}", expected[key], actual[key])
    elif isinstance(expected, float) and math.isinf(expected):
        assert math.isinf(actual), f"{path}: {actual!r} != inf"
    else:
        # exact equality on purpose: the refactor must not move a bit
        assert expected == actual, f"{path}: {expected!r} != {actual!r}"


def test_fig10_matches_golden(golden):
    _assert_identical("fig10", golden["fig10"], fig10_data(golden["scale"]))


def test_fig11_matches_golden(golden):
    _assert_identical("fig11", golden["fig11"], fig11_data(golden["scale"]))


def test_fig12_matches_golden(golden):
    _assert_identical("fig12", golden["fig12"], fig12_data(golden["scale"]))
