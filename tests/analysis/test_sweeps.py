"""Tests for the parameter-sensitivity sweep framework."""

import pytest

from repro.analysis.sweeps import (
    Sweep,
    activate_time_sweep,
    mux_ratio_sweep,
    on_off_ratio_sweep,
    run_sweep,
    write_time_sweep,
)


class TestRunner:
    def test_basic_sweep(self):
        sweep = run_sweep("t", "x", [1, 2, 3], lambda v: {"y": v * 2})
        assert sweep.values() == [1, 2, 3]
        assert sweep.metric("y") == [2, 4, 6]

    def test_monotone_helpers(self):
        sweep = run_sweep("t", "x", [1, 2, 3], lambda v: {"y": -v})
        assert sweep.is_monotone("y", increasing=False)
        assert not sweep.is_monotone("y", increasing=True)

    def test_table_rendering(self):
        sweep = run_sweep("demo", "x", [1.5], lambda v: {"y": v})
        text = sweep.table()
        assert "demo" in text and "x" in text and "y" in text

    def test_empty_table(self):
        assert "(empty)" in Sweep("t", "x").table()

    def test_validation(self):
        with pytest.raises(ValueError):
            run_sweep("t", "x", [], lambda v: {"y": v})
        with pytest.raises(ValueError):
            run_sweep("t", "x", [1], lambda v: {})
        with pytest.raises(ValueError):
            run_sweep("t", "x", [1], lambda v: 42)


class TestCannedSweeps:
    def test_on_off_ratio_grows_fanin(self):
        sweep = on_off_ratio_sweep(ratios=(3, 30, 300))
        assert sweep.is_monotone("electrical_or_limit", increasing=True)
        limits = sweep.metric("electrical_or_limit")
        assert limits[0] < 10
        assert limits[-1] > 64

    def test_low_contrast_kills_and(self):
        sweep = on_off_ratio_sweep(ratios=(1.5, 1000))
        feasible = sweep.metric("and_feasible")
        assert feasible[0] == 0.0
        assert feasible[-1] == 1.0

    def test_write_time_dominates_latency(self):
        sweep = write_time_sweep(factors=(0.5, 1.0, 2.0))
        assert sweep.is_monotone("latency_us", increasing=True)
        lat = sweep.metric("latency_us")
        # tWR is the biggest term of a 2-row op: 4x tWR ~ >2x latency
        assert lat[-1] / lat[0] > 1.5

    def test_activate_time_is_amortised(self):
        """The LWL latch pays tRCD once per 128-row op, so even 8x tRCD
        moves the total latency by far less than 8x."""
        sweep = activate_time_sweep(factors=(0.5, 4.0))
        lat = sweep.metric("latency_us")
        assert lat[-1] / lat[0] < 2.0
        assert sweep.is_monotone("latency_us", increasing=True)

    def test_mux_ratio_scales_sense_steps(self):
        sweep = mux_ratio_sweep(ratios=(8, 32))
        steps = sweep.metric("sense_steps")
        assert steps == [8, 32]
        assert sweep.is_monotone("latency_us", increasing=True)
