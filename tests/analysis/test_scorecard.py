"""Tests for the reproduction scorecard."""

import pytest

from repro.analysis.scorecard import Claim, Scorecard, build_scorecard


class TestScorecardContainer:
    def test_counts(self):
        card = Scorecard()
        card.add("a", "x", "x", True)
        card.add("b", "y", "z", False)
        assert card.passed == 1
        assert card.total == 2
        assert not card.all_hold

    def test_empty_does_not_hold(self):
        assert not Scorecard().all_hold

    def test_render(self):
        card = Scorecard()
        card.add("claim-one", "1", "1", True)
        card.add("claim-two", "2", "3", False)
        text = card.render()
        assert "1/2 claims hold" in text
        assert "[PASS] claim-one" in text
        assert "[FAIL] claim-two" in text

    def test_claim_is_frozen(self):
        claim = Claim("a", "x", "y", True)
        with pytest.raises(AttributeError):
            claim.holds = False


class TestBuiltScorecard:
    @pytest.fixture(scope="class")
    def card(self):
        return build_scorecard(scale=0.02)

    def test_every_claim_holds(self, card):
        failing = [c.claim_id for c in card.claims if not c.holds]
        assert not failing, failing

    def test_covers_every_figure(self, card):
        ids = {c.claim_id for c in card.claims}
        for prefix in ("pcm-", "csa-", "fig9-", "fig10-", "fig11-",
                       "fig12-", "fig13-"):
            assert any(i.startswith(prefix) for i in ids), prefix

    def test_claim_count(self, card):
        assert card.total >= 15

    def test_cli_scorecard(self, capsys):
        from repro.analysis.__main__ import main

        assert main(["--scorecard", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "claims hold" in out
