"""Tests for the functional main memory."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsim.geometry import MemoryGeometry
from repro.memsim.mainmem import MainMemory


SMALL = MemoryGeometry(
    channels=1,
    ranks_per_channel=1,
    chips_per_rank=1,
    banks_per_chip=2,
    subarrays_per_bank=2,
    rows_per_subarray=8,
    mats_per_subarray=1,
    cols_per_mat=256,
    mux_ratio=8,
)


@pytest.fixture
def mem():
    return MainMemory(SMALL)


def rand_frame(seed):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=SMALL.row_bytes).astype(np.uint8)


class TestFrames:
    def test_unwritten_frame_reads_zero(self, mem):
        assert not mem.frame_bytes(0).any()

    def test_write_read_roundtrip(self, mem):
        data = rand_frame(1)
        mem.write_frame(3, data)
        np.testing.assert_array_equal(mem.frame_bytes(3), data)

    def test_frame_bytes_returns_copy(self, mem):
        data = rand_frame(1)
        mem.write_frame(0, data)
        view = mem.frame_bytes(0)
        view[0] ^= 0xFF
        np.testing.assert_array_equal(mem.frame_bytes(0), data)

    def test_lazy_allocation(self, mem):
        assert mem.frames_in_use == 0
        mem.frame_bytes(5)  # read does not allocate
        assert mem.frames_in_use == 0
        mem.write_frame(5, rand_frame(2))
        assert mem.frames_in_use == 1

    def test_write_counting(self, mem):
        data = rand_frame(1)
        mem.write_frame(0, data)
        mem.write_frame(0, data)
        assert mem.frame_writes(0) == 2
        assert mem.frame_writes(1) == 0
        assert mem.total_writes == 2

    def test_out_of_range_frame(self, mem):
        with pytest.raises(ValueError):
            mem.frame_bytes(SMALL.total_rows)
        with pytest.raises(ValueError):
            mem.write_frame(-1, rand_frame(0))

    def test_wrong_shape_rejected(self, mem):
        with pytest.raises(ValueError, match="shape"):
            mem.write_frame(0, np.zeros(3, np.uint8))


class TestBitAccess:
    def test_bit_roundtrip(self, mem):
        rng = np.random.default_rng(3)
        bits = rng.integers(0, 2, size=100).astype(np.uint8)
        mem.write_bits(2, bits)
        np.testing.assert_array_equal(mem.read_bits(2, 100), bits)

    def test_bit_order_little_endian(self, mem):
        bits = np.zeros(16, dtype=np.uint8)
        bits[0] = 1  # bit 0 of byte 0
        bits[9] = 1  # bit 1 of byte 1
        mem.write_bits(0, bits)
        packed = mem.frame_bytes(0)
        assert packed[0] == 1
        assert packed[1] == 2

    def test_partial_write_zeroes_rest(self, mem):
        mem.write_frame(0, np.full(SMALL.row_bytes, 0xFF, np.uint8))
        mem.write_bits(0, np.ones(8, np.uint8))
        packed = mem.frame_bytes(0)
        assert packed[0] == 0xFF
        assert not packed[1:].any()

    def test_oversized_bits_rejected(self, mem):
        with pytest.raises(ValueError):
            mem.write_bits(0, np.zeros(SMALL.row_bits + 1, np.uint8))

    def test_bad_nbits_rejected(self, mem):
        with pytest.raises(ValueError):
            mem.read_bits(0, 0)
        with pytest.raises(ValueError):
            mem.read_bits(0, SMALL.row_bits + 1)


class TestBitwiseCompute:
    def _fill(self, mem, frames, seed=0):
        rng = np.random.default_rng(seed)
        data = {}
        for f in frames:
            d = rng.integers(0, 256, size=SMALL.row_bytes).astype(np.uint8)
            mem.write_frame(f, d)
            data[f] = d
        return data

    def test_or(self, mem):
        data = self._fill(mem, [0, 1, 2])
        mem.execute_bitwise("or", 5, [0, 1, 2])
        expected = data[0] | data[1] | data[2]
        np.testing.assert_array_equal(mem.frame_bytes(5), expected)

    def test_and(self, mem):
        data = self._fill(mem, [0, 1])
        mem.execute_bitwise("and", 5, [0, 1])
        np.testing.assert_array_equal(mem.frame_bytes(5), data[0] & data[1])

    def test_xor(self, mem):
        data = self._fill(mem, [0, 1])
        mem.execute_bitwise("xor", 5, [0, 1])
        np.testing.assert_array_equal(mem.frame_bytes(5), data[0] ^ data[1])

    def test_inv(self, mem):
        data = self._fill(mem, [0])
        mem.execute_bitwise("inv", 5, [0])
        np.testing.assert_array_equal(mem.frame_bytes(5), ~data[0])

    def test_in_place_dest_can_be_source(self, mem):
        data = self._fill(mem, [0, 1])
        mem.execute_bitwise("or", 0, [0, 1])
        np.testing.assert_array_equal(mem.frame_bytes(0), data[0] | data[1])

    def test_multi_operand_or(self, mem):
        data = self._fill(mem, range(8))
        mem.execute_bitwise("or", 10, range(8))
        expected = np.bitwise_or.reduce([data[f] for f in range(8)])
        np.testing.assert_array_equal(mem.frame_bytes(10), expected)

    def test_unknown_op_rejected(self, mem):
        with pytest.raises(ValueError, match="unknown"):
            mem.bitwise_frames("nand", [0, 1])

    def test_operand_count_rules(self, mem):
        self._fill(mem, [0, 1, 2])
        with pytest.raises(ValueError):
            mem.bitwise_frames("or", [0])
        with pytest.raises(ValueError):
            mem.bitwise_frames("inv", [0, 1])

    def test_multi_operand_and_xor(self, mem):
        """The buffered (digital) path accumulates any operand count."""
        data = self._fill(mem, [0, 1, 2])
        mem.execute_bitwise("and", 5, [0, 1, 2])
        np.testing.assert_array_equal(
            mem.frame_bytes(5), data[0] & data[1] & data[2]
        )
        mem.execute_bitwise("xor", 6, [0, 1, 2])
        np.testing.assert_array_equal(
            mem.frame_bytes(6), data[0] ^ data[1] ^ data[2]
        )

    @given(
        seed=st.integers(0, 2**16),
        op=st.sampled_from(["or", "and", "xor"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_numpy_oracle(self, seed, op):
        mem = MainMemory(SMALL)
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 256, size=SMALL.row_bytes).astype(np.uint8)
        b = rng.integers(0, 256, size=SMALL.row_bytes).astype(np.uint8)
        mem.write_frame(0, a)
        mem.write_frame(1, b)
        result = mem.bitwise_frames(op, [0, 1])
        oracle = {"or": a | b, "and": a & b, "xor": a ^ b}[op]
        np.testing.assert_array_equal(result, oracle)
