"""Property-based tests of the memory controller's pricing invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsim.controller import Command, CommandKind, MemoryController
from repro.memsim.geometry import DEFAULT_GEOMETRY
from repro.memsim.timing import nvm_timing
from repro.nvm.technology import get_technology


def fresh_controller():
    return MemoryController(DEFAULT_GEOMETRY, nvm_timing(get_technology("pcm")))


command_strategy = st.builds(
    Command,
    kind=st.sampled_from(list(CommandKind)),
    channel=st.integers(0, 3),
    n_bits=st.integers(0, 1 << 19),
    n_steps=st.integers(1, 32),
    transfer_bytes=st.integers(0, 1 << 16),
)


class TestPricingInvariants:
    @given(commands=st.lists(command_strategy, min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_latency_and_energy_nonnegative(self, commands):
        stats = fresh_controller().execute(commands)
        assert stats.latency >= 0
        assert stats.energy >= 0

    @given(
        a=st.lists(command_strategy, min_size=1, max_size=10),
        b=st.lists(command_strategy, min_size=1, max_size=10),
    )
    @settings(max_examples=50, deadline=None)
    def test_single_channel_serialisation_is_additive(self, a, b):
        """On one channel, executing A then B costs the same as A+B."""

        def on_channel_zero(commands):
            return [
                Command(
                    kind=c.kind,
                    channel=0,
                    n_bits=c.n_bits,
                    n_steps=c.n_steps,
                    transfer_bytes=c.transfer_bytes,
                )
                for c in commands
            ]

        a0, b0 = on_channel_zero(a), on_channel_zero(b)
        split = fresh_controller()
        split_lat = split.execute(a0).latency + split.execute(b0).latency
        joined = fresh_controller().execute(a0 + b0)
        assert joined.latency == pytest.approx(split_lat, rel=1e-9)

    @given(commands=st.lists(command_strategy, min_size=1, max_size=16))
    @settings(max_examples=50, deadline=None)
    def test_energy_is_order_independent(self, commands):
        forward = fresh_controller().execute(commands).energy
        backward = fresh_controller().execute(list(reversed(commands))).energy
        assert forward == pytest.approx(backward, rel=1e-9)

    @given(commands=st.lists(command_strategy, min_size=2, max_size=16))
    @settings(max_examples=50, deadline=None)
    def test_spreading_channels_never_slower(self, commands):
        """Moving commands onto distinct channels can only help latency."""
        serial_cmds = [
            Command(c.kind, 0, c.n_bits, c.n_steps, c.transfer_bytes)
            for c in commands
        ]
        spread_cmds = [
            Command(c.kind, i % 4, c.n_bits, c.n_steps, c.transfer_bytes)
            for i, c in enumerate(commands)
        ]
        serial = fresh_controller().execute(serial_cmds).latency
        spread = fresh_controller().execute(spread_cmds).latency
        assert spread <= serial * (1 + 1e-9)

    @given(
        commands=st.lists(command_strategy, min_size=1, max_size=10),
        repeat=st.integers(2, 4),
    )
    @settings(max_examples=40, deadline=None)
    def test_repetition_scales_linearly(self, commands, repeat):
        once = fresh_controller().execute(commands)
        many = fresh_controller().execute(commands * repeat)
        assert many.energy == pytest.approx(repeat * once.energy, rel=1e-9)
