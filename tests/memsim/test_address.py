"""Tests for address mapping and locality classification."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsim.address import (
    AddressMapper,
    OpLocality,
    RowAddress,
    classify_locality,
)
from repro.memsim.geometry import DEFAULT_GEOMETRY, MemoryGeometry


@pytest.fixture
def mapper():
    return AddressMapper(DEFAULT_GEOMETRY)


class TestRowAddress:
    def test_same_subarray(self):
        a = RowAddress(0, 0, 1, 2, 3)
        b = RowAddress(0, 0, 1, 2, 9)
        assert a.same_subarray(b)
        assert a.same_bank(b)
        assert a.same_rank(b)

    def test_different_subarray_same_bank(self):
        a = RowAddress(0, 0, 1, 2, 3)
        b = RowAddress(0, 0, 1, 5, 3)
        assert not a.same_subarray(b)
        assert a.same_bank(b)

    def test_different_bank_same_rank(self):
        a = RowAddress(0, 0, 1, 2, 3)
        b = RowAddress(0, 0, 4, 2, 3)
        assert not a.same_bank(b)
        assert a.same_rank(b)

    def test_different_rank(self):
        a = RowAddress(0, 0, 1, 2, 3)
        b = RowAddress(0, 1, 1, 2, 3)
        assert not a.same_rank(b)


class TestClassification:
    def test_intra_subarray(self):
        addrs = [RowAddress(0, 0, 0, 0, r) for r in range(4)]
        assert classify_locality(addrs) == OpLocality.INTRA_SUBARRAY

    def test_inter_subarray(self):
        addrs = [RowAddress(0, 0, 0, 0, 0), RowAddress(0, 0, 0, 1, 0)]
        assert classify_locality(addrs) == OpLocality.INTER_SUBARRAY

    def test_inter_bank(self):
        addrs = [RowAddress(0, 0, 0, 0, 0), RowAddress(0, 0, 3, 0, 0)]
        assert classify_locality(addrs) == OpLocality.INTER_BANK

    def test_inter_chip(self):
        addrs = [RowAddress(0, 0, 0, 0, 0), RowAddress(1, 0, 0, 0, 0)]
        assert classify_locality(addrs) == OpLocality.INTER_CHIP

    def test_single_operand_is_intra(self):
        assert classify_locality([RowAddress(0, 0, 0, 0, 0)]) == (
            OpLocality.INTRA_SUBARRAY
        )

    def test_mixed_escalates_to_worst(self):
        addrs = [
            RowAddress(0, 0, 0, 0, 0),
            RowAddress(0, 0, 0, 1, 0),  # other subarray
            RowAddress(0, 0, 3, 0, 0),  # other bank
        ]
        assert classify_locality(addrs) == OpLocality.INTER_BANK

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            classify_locality([])


class TestMapper:
    def test_frame_zero(self, mapper):
        assert mapper.decode(0) == RowAddress(0, 0, 0, 0, 0)

    def test_consecutive_frames_fill_subarray_first(self, mapper):
        g = DEFAULT_GEOMETRY
        a0 = mapper.decode(0)
        a1 = mapper.decode(1)
        a_last = mapper.decode(g.rows_per_subarray - 1)
        a_next = mapper.decode(g.rows_per_subarray)
        assert a0.same_subarray(a1)
        assert a0.same_subarray(a_last)
        assert not a0.same_subarray(a_next)
        assert a0.same_bank(a_next)  # next subarray, same bank

    def test_roundtrip_sample(self, mapper):
        for frame in (0, 1, 511, 512, 123_456, mapper.total_frames - 1):
            assert mapper.encode(mapper.decode(frame)) == frame

    @given(frame=st.integers(min_value=0, max_value=DEFAULT_GEOMETRY.total_rows - 1))
    @settings(max_examples=100)
    def test_roundtrip_property(self, frame):
        mapper = AddressMapper(DEFAULT_GEOMETRY)
        assert mapper.encode(mapper.decode(frame)) == frame

    def test_out_of_range_decode(self, mapper):
        with pytest.raises(ValueError):
            mapper.decode(mapper.total_frames)
        with pytest.raises(ValueError):
            mapper.decode(-1)

    def test_out_of_range_encode(self, mapper):
        with pytest.raises(ValueError, match="bank"):
            mapper.encode(RowAddress(0, 0, 99, 0, 0))

    def test_total_frames(self, mapper):
        assert mapper.total_frames == DEFAULT_GEOMETRY.total_rows

    def test_small_geometry_exhaustive_roundtrip(self):
        g = MemoryGeometry(
            channels=2,
            ranks_per_channel=2,
            chips_per_rank=1,
            banks_per_chip=2,
            subarrays_per_bank=2,
            rows_per_subarray=4,
            mats_per_subarray=1,
            cols_per_mat=64,
            mux_ratio=8,
        )
        mapper = AddressMapper(g)
        seen = set()
        for frame in range(mapper.total_frames):
            addr = mapper.decode(frame)
            assert mapper.encode(addr) == frame
            seen.add(addr)
        assert len(seen) == mapper.total_frames
