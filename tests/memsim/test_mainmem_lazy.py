"""MainMemory lazy-frame semantics, endurance counters, bit packing."""

import numpy as np
import pytest

from repro.memsim.geometry import MemoryGeometry
from repro.memsim.mainmem import MainMemory

GEOM = MemoryGeometry(
    channels=1,
    ranks_per_channel=1,
    chips_per_rank=1,
    banks_per_chip=1,
    subarrays_per_bank=2,
    rows_per_subarray=16,
    mats_per_subarray=1,
    cols_per_mat=1024,
    mux_ratio=8,
)


@pytest.fixture
def mem():
    return MainMemory(GEOM)


class TestLazyFrames:
    def test_untouched_frame_reads_zero_without_allocating(self, mem):
        assert mem.frames_in_use == 0
        data = mem.frame_bytes(3)
        assert np.array_equal(data, np.zeros(GEOM.row_bytes, dtype=np.uint8))
        bits = mem.read_bits(3)
        assert bits.sum() == 0
        # reads must not materialise the frame
        assert mem.frames_in_use == 0

    def test_returned_bytes_are_a_copy(self, mem):
        mem.write_frame(0, np.full(GEOM.row_bytes, 0xAB, dtype=np.uint8))
        view = mem.frame_bytes(0)
        view[:] = 0
        assert mem.frame_bytes(0)[0] == 0xAB

    def test_write_allocates_only_touched_frames(self, mem):
        mem.write_frame(5, np.zeros(GEOM.row_bytes, dtype=np.uint8))
        mem.write_frame(11, np.ones(GEOM.row_bytes, dtype=np.uint8))
        assert mem.frames_in_use == 2

    def test_frame_bounds_checked(self, mem):
        with pytest.raises(ValueError):
            mem.frame_bytes(GEOM.total_rows)
        with pytest.raises(ValueError):
            mem.write_frame(-1, np.zeros(GEOM.row_bytes, dtype=np.uint8))


class TestEnduranceCounters:
    def test_per_frame_write_counts(self, mem):
        data = np.zeros(GEOM.row_bytes, dtype=np.uint8)
        for _ in range(3):
            mem.write_frame(2, data)
        mem.write_frame(4, data)
        assert mem.frame_writes(2) == 3
        assert mem.frame_writes(4) == 1
        assert mem.frame_writes(0) == 0  # never written
        assert mem.total_writes == 4
        assert mem.write_histogram() == {2: 3, 4: 1}

    def test_bitwise_writeback_counts_as_a_program(self, mem):
        a = np.zeros(GEOM.row_bits, dtype=np.uint8)
        a[::3] = 1
        b = np.zeros(GEOM.row_bits, dtype=np.uint8)
        b[::5] = 1
        mem.write_bits(0, a)
        mem.write_bits(1, b)
        mem.execute_bitwise("or", 2, [0, 1])
        assert mem.frame_writes(2) == 1
        assert np.array_equal(mem.read_bits(2), np.bitwise_or(a, b))


class TestBitPacking:
    @pytest.mark.parametrize("n_bits", [1, 7, 8, 13, 100, 1023])
    def test_non_byte_aligned_round_trip(self, mem, n_bits):
        rng = np.random.default_rng(n_bits)
        bits = rng.integers(0, 2, size=n_bits).astype(np.uint8)
        mem.write_bits(0, bits)
        assert np.array_equal(mem.read_bits(0, n_bits), bits)
        # the tail of the row reads as zeros
        full = mem.read_bits(0)
        assert full[n_bits:].sum() == 0

    def test_little_endian_layout(self, mem):
        # bit i lives at byte i // 8, bit position i % 8
        bits = np.zeros(GEOM.row_bits, dtype=np.uint8)
        bits[9] = 1
        mem.write_bits(0, bits)
        packed = mem.frame_bytes(0)
        assert packed[1] == 1 << 1
        assert packed[0] == 0

    def test_oversized_write_rejected(self, mem):
        with pytest.raises(ValueError):
            mem.write_bits(0, np.zeros(GEOM.row_bits + 1, dtype=np.uint8))
