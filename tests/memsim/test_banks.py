"""Tests for the bank state machines and host access simulator."""

import numpy as np
import pytest

from repro.memsim.banks import (
    BankStateMachine,
    HostAccessSimulator,
    StreamReport,
)
from repro.memsim.timing import DDR3_1600


class TestBankStateMachine:
    def test_first_access_is_a_miss(self):
        bank = BankStateMachine(DDR3_1600)
        data_ready, row_hit, energy = bank.access(row=5, now=0.0, is_write=False)
        assert not row_hit
        assert data_ready == pytest.approx(DDR3_1600.t_rcd + DDR3_1600.t_cl)
        assert energy > 0

    def test_second_access_same_row_hits(self):
        bank = BankStateMachine(DDR3_1600)
        bank.access(5, 0.0, False)
        _ready, row_hit, _e = bank.access(5, 0.0, False)
        assert row_hit

    def test_hits_pipeline_at_burst_rate(self):
        """Open-row column commands issue every burst slot, so N hits
        take ~N burst times, not N full CAS latencies."""
        bank = BankStateMachine(DDR3_1600)
        bank.access(5, 0.0, False)
        readies = [bank.access(5, 0.0, False)[0] for _ in range(8)]
        gaps = np.diff(readies)
        assert np.allclose(gaps, DDR3_1600.transfer_time(64), rtol=1e-6)

    def test_row_conflict_pays_precharge(self):
        bank = BankStateMachine(DDR3_1600)
        first_ready, _hit, _e = bank.access(5, 0.0, False)
        ready, row_hit, _e = bank.access(9, first_ready, False)
        assert not row_hit
        assert ready - first_ready > DDR3_1600.t_rcd + DDR3_1600.t_cl

    def test_tras_respected_on_fast_conflict(self):
        bank = BankStateMachine(DDR3_1600)
        bank.access(5, 0.0, False)
        ready, _hit, _e = bank.access(9, 0.0, False)
        # precharge cannot begin before activate_time + tRAS
        assert ready >= DDR3_1600.t_ras + DDR3_1600.t_rp + DDR3_1600.t_rcd

    def test_write_uses_twr(self):
        read_ready = BankStateMachine(DDR3_1600).access(1, 0.0, False)[0]
        write_ready = BankStateMachine(DDR3_1600).access(1, 0.0, True)[0]
        assert write_ready > read_ready


class TestHostAccessSimulator:
    def test_sequential_stream_hits_rows(self):
        sim = HostAccessSimulator()
        report = sim.run(sim.sequential_stream(512))
        assert report.hit_rate > 0.95  # one miss per touched row

    def test_random_stream_misses_rows(self):
        sim = HostAccessSimulator()
        rng = np.random.default_rng(1)
        report = sim.run(sim.random_stream(512, rng))
        assert report.hit_rate < 0.1

    def test_sequential_saturates_its_channel(self):
        """Streaming within one row: pipelined hits reach most of a
        channel's peak bandwidth."""
        sim = HostAccessSimulator()
        report = sim.run(sim.sequential_stream(1024))
        assert report.bandwidth > 0.8 * DDR3_1600.bus_bandwidth

    def test_dependent_random_chain_is_latency_bound(self):
        """With no memory-level parallelism (pointer chasing), random
        access throughput collapses to one row cycle per access."""
        sim = HostAccessSimulator()
        rng = np.random.default_rng(2)
        report = sim.run(sim.random_stream(256, rng), max_outstanding=1)
        per_access = report.total_latency / report.accesses
        assert per_access > DDR3_1600.t_rcd + DDR3_1600.t_cl

    def test_mlp_hides_random_latency(self):
        """More outstanding misses -> bank-level parallelism pays."""
        rng_a = np.random.default_rng(3)
        rng_b = np.random.default_rng(3)
        chained = HostAccessSimulator().run(
            HostAccessSimulator().random_stream(256, rng_a),
            max_outstanding=1,
        )
        parallel = HostAccessSimulator().run(
            HostAccessSimulator().random_stream(256, rng_b),
            max_outstanding=10,
        )
        assert parallel.total_latency < chained.total_latency / 3

    def test_random_pays_activation_energy(self):
        seq_sim, rand_sim = HostAccessSimulator(), HostAccessSimulator()
        rng = np.random.default_rng(4)
        seq = seq_sim.run(seq_sim.sequential_stream(256))
        rand = rand_sim.run(rand_sim.random_stream(256, rng))
        assert rand.total_energy > seq.total_energy

    def test_writes_mask_checked(self):
        sim = HostAccessSimulator()
        with pytest.raises(ValueError):
            sim.run([0, 64], writes=[True])

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            HostAccessSimulator().run([-64])

    def test_bad_mlp_rejected(self):
        with pytest.raises(ValueError):
            HostAccessSimulator().run([0], max_outstanding=0)

    def test_stream_helpers_validate(self):
        sim = HostAccessSimulator()
        with pytest.raises(ValueError):
            sim.sequential_stream(0)
        with pytest.raises(ValueError):
            sim.random_stream(0, np.random.default_rng(0))


class TestStreamReport:
    def test_rates(self):
        report = StreamReport(accesses=10, row_hits=5, total_latency=1e-6,
                              total_energy=1e-9)
        assert report.hit_rate == 0.5
        assert report.bandwidth == pytest.approx(640 / 1e-6)

    def test_empty(self):
        report = StreamReport(0, 0, 0.0, 0.0)
        assert report.hit_rate == 0.0
        assert report.bandwidth == 0.0
