"""Tests for timing parameter sets and the DDR bus model."""

import pytest

from repro.memsim.bus import BusStats, DDRBus
from repro.memsim.timing import DDR3_1600, nvm_timing
from repro.nvm.technology import get_technology


class TestDDR3Timing:
    def test_command_slot_is_one_800mhz_cycle(self):
        assert DDR3_1600.t_cmd == pytest.approx(1.25e-9)

    def test_channel_bandwidth(self):
        assert DDR3_1600.bus_bandwidth == pytest.approx(12.8e9)

    def test_row_cycle(self):
        assert DDR3_1600.t_rc == pytest.approx(48.75e-9)

    def test_transfer_time(self):
        # 64 B at 12.8 GB/s = 5 ns
        assert DDR3_1600.transfer_time(64) == pytest.approx(5e-9)

    def test_transfer_energy(self):
        assert DDR3_1600.transfer_energy(1) == pytest.approx(8 * 6e-12)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            DDR3_1600.transfer_time(-1)


class TestNvmTiming:
    def test_pcm_paper_anchors(self):
        t = nvm_timing(get_technology("pcm"))
        assert t.t_rcd == pytest.approx(18.3e-9)
        assert t.t_cl == pytest.approx(8.9e-9)
        assert t.t_wr == pytest.approx(151.1e-9)

    def test_bus_unchanged(self):
        t = nvm_timing(get_technology("pcm"))
        assert t.bus_bandwidth == DDR3_1600.bus_bandwidth
        assert t.t_cmd == DDR3_1600.t_cmd

    def test_nvm_activation_cheaper_than_dram(self):
        # No destructive read -> no full-row restore energy on activate.
        t = nvm_timing(get_technology("pcm"))
        assert t.e_activate_per_bit < DDR3_1600.e_activate_per_bit

    def test_nvm_write_more_expensive_than_dram(self):
        t = nvm_timing(get_technology("pcm"))
        assert t.e_write_per_bit > DDR3_1600.e_write_per_bit
        assert t.t_wr > DDR3_1600.t_wr


class TestDDRBus:
    def test_command_accounting(self):
        bus = DDRBus(DDR3_1600)
        t = bus.command(3)
        assert t == pytest.approx(3 * 1.25e-9)
        assert bus.stats.commands == 3
        assert bus.stats.busy_time == pytest.approx(t)

    def test_transfer_accounting(self):
        bus = DDRBus(DDR3_1600)
        t = bus.transfer(128)
        assert t == pytest.approx(10e-9)
        assert bus.stats.data_bytes == 128
        assert bus.stats.energy == pytest.approx(128 * 8 * 6e-12)

    def test_stats_accumulate(self):
        bus = DDRBus(DDR3_1600)
        bus.command()
        bus.transfer(64)
        bus.command(2)
        assert bus.stats.commands == 3
        assert bus.stats.data_bytes == 64

    def test_reset_stats(self):
        bus = DDRBus(DDR3_1600)
        bus.transfer(64)
        bus.reset_stats()
        assert bus.stats.data_bytes == 0
        assert bus.stats.busy_time == 0.0

    def test_peak_bandwidth(self):
        assert DDRBus(DDR3_1600).peak_bandwidth == pytest.approx(12.8e9)

    def test_negative_counts_rejected(self):
        bus = DDRBus(DDR3_1600)
        with pytest.raises(ValueError):
            bus.command(-1)
        with pytest.raises(ValueError):
            bus.transfer(-1)


class TestBusStats:
    def test_merge(self):
        a = BusStats(commands=1, data_bytes=10, busy_time=1e-9, energy=1e-12)
        b = BusStats(commands=2, data_bytes=20, busy_time=2e-9, energy=2e-12)
        m = a.merge(b)
        assert m.commands == 3
        assert m.data_bytes == 30
        assert m.busy_time == pytest.approx(3e-9)
        assert m.energy == pytest.approx(3e-12)
