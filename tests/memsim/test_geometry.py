"""Tests for memory geometry (paper Fig. 3 organisation)."""

import pytest

from repro.memsim.geometry import DEFAULT_GEOMETRY, DRAM_GEOMETRY, MemoryGeometry


class TestPaperCalibration:
    """The default geometry must land the paper's Fig. 9 turning points."""

    def test_rank_row_is_2_19_bits(self):
        assert DEFAULT_GEOMETRY.row_bits == 1 << 19  # turning point B

    def test_sense_step_is_2_14_bits(self):
        assert DEFAULT_GEOMETRY.sense_bits_per_step == 1 << 14  # point A

    def test_mat_row_is_4kb(self):
        assert DEFAULT_GEOMETRY.cols_per_mat == 4096  # "typical 4Kb NVM row"

    def test_mux_ratio_is_32(self):
        assert DEFAULT_GEOMETRY.mux_ratio == 32  # "32 in our experiment"

    def test_eight_chips_eight_banks(self):
        assert DEFAULT_GEOMETRY.chips_per_rank == 8
        assert DEFAULT_GEOMETRY.banks_per_chip == 8

    def test_capacity_is_64_gib(self):
        assert DEFAULT_GEOMETRY.capacity_bytes == 64 * (1 << 30)


class TestDramGeometry:
    def test_dram_row_is_2_16_bits(self):
        assert DRAM_GEOMETRY.row_bits == 1 << 16

    def test_dram_senses_full_row_in_one_step(self):
        assert DRAM_GEOMETRY.mux_ratio == 1
        assert DRAM_GEOMETRY.sense_bits_per_step == DRAM_GEOMETRY.row_bits

    def test_nvm_row_larger_than_dram_row(self):
        # NVM rows are physically longer; DRAM's advantage is unmuxed SAs.
        assert DEFAULT_GEOMETRY.row_bits > DRAM_GEOMETRY.row_bits


class TestDerivedSizes:
    def test_chip_row_bits(self):
        g = DEFAULT_GEOMETRY
        assert g.chip_row_bits == g.mats_per_subarray * g.cols_per_mat

    def test_row_bytes(self):
        assert DEFAULT_GEOMETRY.row_bytes == DEFAULT_GEOMETRY.row_bits // 8

    def test_total_rows(self):
        g = DEFAULT_GEOMETRY
        expected = (
            g.channels
            * g.ranks_per_channel
            * g.banks_per_chip
            * g.subarrays_per_bank
            * g.rows_per_subarray
        )
        assert g.total_rows == expected

    def test_ranks(self):
        assert DEFAULT_GEOMETRY.ranks == 8


class TestRowsForBits:
    def test_small_vector_one_row(self):
        assert DEFAULT_GEOMETRY.rows_for_bits(1) == 1
        assert DEFAULT_GEOMETRY.rows_for_bits(1 << 19) == 1

    def test_long_vector_multiple_rows(self):
        assert DEFAULT_GEOMETRY.rows_for_bits((1 << 19) + 1) == 2
        assert DEFAULT_GEOMETRY.rows_for_bits(1 << 21) == 4

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_GEOMETRY.rows_for_bits(0)


class TestSenseStepsForBits:
    def test_short_vector_single_step(self):
        g = DEFAULT_GEOMETRY
        assert g.sense_steps_for_bits(1) == 1
        assert g.sense_steps_for_bits(1 << 14) == 1

    def test_mid_vector_scales_linearly(self):
        g = DEFAULT_GEOMETRY
        assert g.sense_steps_for_bits((1 << 14) + 1) == 2
        assert g.sense_steps_for_bits(1 << 16) == 4

    def test_full_row_needs_mux_ratio_steps(self):
        g = DEFAULT_GEOMETRY
        assert g.sense_steps_for_bits(1 << 19) == 32

    def test_clamped_to_one_row(self):
        g = DEFAULT_GEOMETRY
        assert g.sense_steps_for_bits(1 << 22) == 32


class TestValidation:
    def test_mux_must_divide_columns(self):
        with pytest.raises(ValueError, match="divide"):
            MemoryGeometry(cols_per_mat=100, mux_ratio=32)

    def test_nonpositive_dimension_rejected(self):
        with pytest.raises(ValueError):
            MemoryGeometry(channels=0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_GEOMETRY.channels = 2
