"""Tests for the memory controller's command pricing."""

import pytest

from repro.memsim.controller import (
    Command,
    CommandKind,
    ExecutionStats,
    MemoryController,
)
from repro.memsim.geometry import DEFAULT_GEOMETRY
from repro.memsim.timing import nvm_timing
from repro.nvm.technology import get_technology


@pytest.fixture
def pcm_timing():
    return nvm_timing(get_technology("pcm"))


@pytest.fixture
def ctrl(pcm_timing):
    return MemoryController(DEFAULT_GEOMETRY, pcm_timing)


class TestSingleCommands:
    def test_act_pays_trcd_plus_command(self, ctrl, pcm_timing):
        stats = ctrl.execute([Command(CommandKind.ACT, n_bits=1 << 19)])
        assert stats.latency == pytest.approx(pcm_timing.t_rcd + pcm_timing.t_cmd)
        assert stats.counts[CommandKind.ACT] == 1

    def test_act_extra_is_one_command_slot(self, ctrl, pcm_timing):
        stats = ctrl.execute([Command(CommandKind.ACT_EXTRA, n_bits=1 << 19)])
        assert stats.latency == pytest.approx(pcm_timing.t_cmd)

    def test_pim_sense_scales_with_steps(self, ctrl, pcm_timing):
        one = ctrl.execute([Command(CommandKind.PIM_SENSE, n_steps=1, n_bits=100)])
        many = ctrl.execute([Command(CommandKind.PIM_SENSE, n_steps=32, n_bits=100)])
        assert one.latency == pytest.approx(pcm_timing.t_cl)
        assert many.latency == pytest.approx(32 * pcm_timing.t_cl)

    def test_pim_writeback_uses_no_bus(self, ctrl, pcm_timing):
        stats = ctrl.execute(
            [Command(CommandKind.PIM_WRITEBACK, n_bits=1 << 19)]
        )
        assert stats.latency == pytest.approx(pcm_timing.t_wr)
        assert stats.bus.data_bytes == 0
        assert stats.bus.commands == 0

    def test_rd_moves_data_over_bus(self, ctrl):
        stats = ctrl.execute(
            [Command(CommandKind.RD, n_bits=512, transfer_bytes=64)]
        )
        assert stats.bus.data_bytes == 64
        assert stats.bus.commands == 1

    def test_wr_pays_twr_and_bus(self, ctrl, pcm_timing):
        stats = ctrl.execute(
            [Command(CommandKind.WR, n_bits=512, transfer_bytes=64)]
        )
        expected = (
            pcm_timing.t_wr
            + pcm_timing.t_cmd
            + pcm_timing.transfer_time(64)
        )
        assert stats.latency == pytest.approx(expected)

    def test_mrs_sets_mode(self, ctrl):
        stats = ctrl.set_pim_mode(0b101)
        assert ctrl.mode_register == 0b101
        assert stats.counts[CommandKind.MRS] == 1

    def test_buf_op_cost(self, ctrl, pcm_timing):
        stats = ctrl.execute([Command(CommandKind.BUF_OP, n_bits=1 << 19)])
        assert stats.latency == pytest.approx(pcm_timing.t_cmd)
        assert stats.energy == pytest.approx(
            (1 << 19) * pcm_timing.e_buffer_logic_per_bit
        )


class TestStreams:
    def test_same_channel_serialises(self, ctrl, pcm_timing):
        cmds = [
            Command(CommandKind.ACT, channel=0, n_bits=8),
            Command(CommandKind.PIM_SENSE, channel=0, n_steps=2, n_bits=8),
        ]
        stats = ctrl.execute(cmds)
        expected = pcm_timing.t_rcd + pcm_timing.t_cmd + 2 * pcm_timing.t_cl
        assert stats.latency == pytest.approx(expected)

    def test_different_channels_overlap(self, ctrl, pcm_timing):
        cmds = [
            Command(CommandKind.ACT, channel=0, n_bits=8),
            Command(CommandKind.ACT, channel=1, n_bits=8),
        ]
        stats = ctrl.execute(cmds)
        assert stats.latency == pytest.approx(pcm_timing.t_rcd + pcm_timing.t_cmd)
        # energy still counts both
        assert stats.counts[CommandKind.ACT] == 2

    def test_energy_accumulates(self, ctrl, pcm_timing):
        cmds = [Command(CommandKind.PIM_SENSE, n_steps=1, n_bits=1000)] * 3
        stats = ctrl.execute(cmds)
        assert stats.energy == pytest.approx(
            3 * 1000 * pcm_timing.e_sense_per_bit
        )

    def test_empty_stream(self, ctrl):
        stats = ctrl.execute([])
        assert stats.latency == 0.0
        assert stats.energy == 0.0


class TestExecutionStats:
    def test_serial_merge(self):
        a = ExecutionStats(latency=1e-9, energy=1e-12)
        b = ExecutionStats(latency=2e-9, energy=3e-12)
        m = a.merged(b, serial=True)
        assert m.latency == pytest.approx(3e-9)
        assert m.energy == pytest.approx(4e-12)

    def test_parallel_merge(self):
        a = ExecutionStats(latency=1e-9, energy=1e-12)
        b = ExecutionStats(latency=2e-9, energy=3e-12)
        m = a.merged(b, serial=False)
        assert m.latency == pytest.approx(2e-9)
        assert m.energy == pytest.approx(4e-12)

    def test_counts_merge(self):
        a = ExecutionStats()
        a.add_count(CommandKind.ACT, 2)
        b = ExecutionStats()
        b.add_count(CommandKind.ACT, 1)
        b.add_count(CommandKind.WR, 1)
        m = a.merged(b)
        assert m.counts[CommandKind.ACT] == 3
        assert m.counts[CommandKind.WR] == 1


class TestValidation:
    def test_bad_command_fields(self):
        with pytest.raises(ValueError):
            Command(CommandKind.ACT, n_bits=-1)
        with pytest.raises(ValueError):
            Command(CommandKind.PIM_SENSE, n_steps=0)
        with pytest.raises(ValueError):
            Command(CommandKind.RD, transfer_bytes=-1)
        with pytest.raises(ValueError):
            Command(CommandKind.ACT, channel=-1)
