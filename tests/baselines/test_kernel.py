"""Tests for the instruction-level SIMD kernel model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.kernel import (
    PortConfig,
    bitwise_kernel_profile,
    bottleneck,
    cycles_per_iteration,
    kernel_compute_time,
)
from repro.baselines.simd import CpuConfig, SimdCpu


class TestProfile:
    def test_two_operand_mix(self):
        p = bitwise_kernel_profile(2, unroll=1)
        assert p.loads == 2
        assert p.stores == 1
        assert p.vector_ops == 1
        assert p.instructions == p.loads + p.stores + p.vector_ops + p.scalar_ops

    def test_unroll_amortises_overhead(self):
        rolled = bitwise_kernel_profile(2, unroll=1)
        unrolled = bitwise_kernel_profile(2, unroll=8)
        per_group_rolled = rolled.instructions / 1
        per_group_unrolled = unrolled.instructions / 8
        assert per_group_unrolled < per_group_rolled

    def test_validation(self):
        with pytest.raises(ValueError):
            bitwise_kernel_profile(0)
        with pytest.raises(ValueError):
            bitwise_kernel_profile(2, unroll=0)
        with pytest.raises(ValueError):
            PortConfig(load_ports=0)


class TestCycleBounds:
    def test_two_operand_loop_is_load_bound(self):
        """n loads vs 2 load ports vs (n-1) ALU ops on 3 ports: loads win."""
        p = bitwise_kernel_profile(2, unroll=8)
        assert bottleneck(p) in ("loads", "issue")

    def test_wide_or_is_frontend_or_load_bound(self):
        """Wide fan-in: n loads + (n-1) ops swamp the 4-wide frontend
        before the 3 ALU ports ever saturate."""
        p = bitwise_kernel_profile(16, unroll=4)
        assert bottleneck(p) in ("loads", "issue")

    def test_cycles_at_least_issue_bound(self):
        p = bitwise_kernel_profile(4, unroll=4)
        ports = PortConfig()
        assert cycles_per_iteration(p, ports) >= p.instructions / ports.issue_width

    @given(n=st.integers(1, 64), unroll=st.integers(1, 16))
    @settings(max_examples=60)
    def test_cycles_positive_and_monotone_in_operands(self, n, unroll):
        a = cycles_per_iteration(bitwise_kernel_profile(n, unroll))
        b = cycles_per_iteration(bitwise_kernel_profile(n + 1, unroll))
        assert 0 < a <= b


class TestKernelTime:
    def test_never_below_port_limited_alu_floor(self):
        """Whatever the mix, the 3 vector-ALU ports are a hard floor."""
        cpu = CpuConfig()
        ports = PortConfig()
        for n in (2, 8, 64):
            bits = 1 << 18
            lane_ops = max(1, n - 1) * (bits // cpu.simd_bits)
            alu_floor = lane_ops / ports.vector_alu_ports * cpu.cycle / cpu.cores
            detailed = kernel_compute_time(n, bits, cpu, ports)
            assert detailed >= alu_floor * 0.99

    def test_narrow_fanin_slower_than_naive_roofline(self):
        """At 2 operands the loads/loop overhead dominate: the detailed
        model is slower than the roofline's 1-op-per-cycle estimate."""
        cpu = CpuConfig()
        bits = 1 << 18
        lane_ops = bits // cpu.simd_bits
        roofline = lane_ops * cpu.cycle / cpu.cores
        assert kernel_compute_time(2, bits, cpu) > roofline

    def test_scales_linearly_with_length(self):
        a = kernel_compute_time(2, 1 << 16)
        b = kernel_compute_time(2, 1 << 18)
        assert b == pytest.approx(4 * a, rel=0.05)

    def test_memory_still_dominates_streaming(self):
        """Even the detailed compute leg stays under the DRAM-stream time
        for bulk vectors -- the kernels are memory-bound, as the paper's
        motivation says."""
        cpu_model = SimdCpu.with_dram()
        bits = 1 << 20
        t_compute = kernel_compute_time(2, bits)
        moved = (2 * bits + 2 * bits) / 8
        t_mem = moved / (
            cpu_model.memory.peak_bandwidth * SimdCpu.MEM_STREAM_EFFICIENCY
        )
        assert t_compute < t_mem

    def test_validation(self):
        with pytest.raises(ValueError):
            kernel_compute_time(2, 0)
