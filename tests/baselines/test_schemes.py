"""Tests for S-DRAM, AC-PIM, Ideal and the Pinatubo cost model, including
the cross-scheme ordering invariants the paper's Figs. 10-11 report."""

import pytest

from repro.baselines.acpim import AcPim
from repro.baselines.base import AccessPattern, BaselineCost
from repro.baselines.ideal import IdealPim
from repro.baselines.sdram import SDram
from repro.baselines.simd import SimdCpu
from repro.core.model import PinatuboModel


@pytest.fixture(scope="module")
def schemes():
    return {
        "cpu_dram": SimdCpu.with_dram(),
        "cpu_pcm": SimdCpu.with_pcm(),
        "sdram": SDram(),
        "acpim": AcPim(),
        "p2": PinatuboModel(max_rows=2),
        "p128": PinatuboModel(),
        "ideal": IdealPim(),
    }


class TestSDram:
    def test_only_and_or_offloaded(self, schemes):
        s = schemes["sdram"]
        assert s.supports("or") and s.supports("and")
        assert not s.supports("xor") and not s.supports("inv")

    def test_xor_falls_back_to_cpu(self, schemes):
        s = schemes["sdram"]
        xor = s.bitwise_cost("xor", 2, 1 << 19)
        assert not xor.offloaded
        cpu = schemes["cpu_dram"].bitwise_cost("xor", 2, 1 << 19)
        assert xor.latency == pytest.approx(cpu.latency)

    def test_or_offloaded(self, schemes):
        assert schemes["sdram"].bitwise_cost("or", 2, 1 << 19).offloaded

    def test_copy_overhead_hurts_short_vectors(self, schemes):
        s = schemes["sdram"]
        cpu = schemes["cpu_dram"]
        short = 1 << 12
        assert (
            s.bitwise_cost("or", 2, short).latency
            > cpu.bitwise_cost("or", 2, short).latency * 0.5
        )

    def test_random_access_serialises_banks(self, schemes):
        s = schemes["sdram"]
        seq = s.bitwise_cost("or", 2, 1 << 19, AccessPattern.SEQUENTIAL)
        rand = s.bitwise_cost("or", 2, 1 << 19, AccessPattern.RANDOM)
        assert rand.latency > seq.latency

    def test_multi_operand_decomposes(self, schemes):
        s = schemes["sdram"]
        two = s.bitwise_cost("or", 2, 1 << 19).latency
        many = s.bitwise_cost("or", 9, 1 << 19).latency
        assert many == pytest.approx(8 * two, rel=0.01)


class TestAcPim:
    def test_supports_all_ops(self, schemes):
        for op in ("or", "and", "xor", "inv"):
            assert schemes["acpim"].supports(op)

    def test_no_multirow_benefit(self, schemes):
        a = schemes["acpim"]
        two = a.bitwise_cost("or", 2, 1 << 19).latency
        many = a.bitwise_cost("or", 128, 1 << 19).latency
        assert many > 40 * two  # ~linear in operand count

    def test_slower_than_pinatubo_128_everywhere(self, schemes):
        for op, n, L in [
            ("or", 2, 1 << 19),
            ("or", 128, 1 << 19),
            ("or", 128, 1 << 14),
            ("and", 2, 1 << 16),
            ("xor", 2, 1 << 19),
        ]:
            ac = schemes["acpim"].bitwise_cost(op, n, L)
            p = schemes["p128"].bitwise_cost(op, n, L)
            assert ac.latency > p.latency, (op, n, L)
            assert ac.energy > p.energy, (op, n, L)


class TestPinatuboModel:
    def test_default_name_reflects_rows(self, schemes):
        assert schemes["p128"].name == "Pinatubo-128"
        assert schemes["p2"].name == "Pinatubo-2"

    def test_multirow_wins_on_wide_or(self, schemes):
        p2 = schemes["p2"].bitwise_cost("or", 128, 1 << 19)
        p128 = schemes["p128"].bitwise_cost("or", 128, 1 << 19)
        assert p128.latency < p2.latency / 20

    def test_identical_on_2row_ops(self, schemes):
        for op in ("or", "and", "xor"):
            a = schemes["p2"].bitwise_cost(op, 2, 1 << 19)
            b = schemes["p128"].bitwise_cost(op, 2, 1 << 19)
            assert a.latency == pytest.approx(b.latency)

    def test_random_collapses_multirow_advantage(self, schemes):
        """Paper: 14-16-7r is dominated by inter-subarray/bank operations,
        so Pinatubo-128 is as slow as Pinatubo-2."""
        p2 = schemes["p2"].bitwise_cost("or", 128, 1 << 14, AccessPattern.RANDOM)
        p128 = schemes["p128"].bitwise_cost("or", 128, 1 << 14, AccessPattern.RANDOM)
        assert p128.latency == pytest.approx(p2.latency, rel=1e-9)

    def test_sdram_beats_p2_on_long_sequential(self, schemes):
        """Paper: S-DRAM benefits from larger (unmuxed) row buffers on
        very long sequential vectors."""
        sd = schemes["sdram"].bitwise_cost("or", 2, 1 << 20)
        p2 = schemes["p2"].bitwise_cost("or", 2, 1 << 20)
        assert sd.latency < p2.latency

    def test_p128_beats_sdram_on_multirow(self, schemes):
        sd = schemes["sdram"].bitwise_cost("or", 128, 1 << 19)
        p128 = schemes["p128"].bitwise_cost("or", 128, 1 << 19)
        assert sd.latency / p128.latency > 10  # paper: 22x gmean


class TestIdeal:
    def test_zero_cost(self, schemes):
        cost = schemes["ideal"].bitwise_cost("or", 128, 1 << 20)
        assert cost.latency == 0.0
        assert cost.energy == 0.0
        assert cost.offloaded

    def test_validates_args(self, schemes):
        with pytest.raises(ValueError):
            schemes["ideal"].bitwise_cost("or", 1, 1024)


class TestHeadlineRatios:
    """E11 shape: the paper's headline bitwise-op numbers."""

    def test_multirow_speedup_order_of_magnitude(self, schemes):
        cpu = schemes["cpu_pcm"].bitwise_cost("or", 128, 1 << 19)
        p128 = schemes["p128"].bitwise_cost("or", 128, 1 << 19)
        speedup = cpu.latency / p128.latency
        assert 150 <= speedup <= 1500  # paper: ~500x

    def test_multirow_energy_saving_order_of_magnitude(self, schemes):
        cpu = schemes["cpu_pcm"].bitwise_cost("or", 128, 1 << 19)
        p128 = schemes["p128"].bitwise_cost("or", 128, 1 << 19)
        saving = cpu.energy / p128.energy
        assert 8_000 <= saving <= 80_000  # paper: ~28000x


class TestBaselineCost:
    def test_merge(self):
        a = BaselineCost(1e-6, 2e-6, True)
        b = BaselineCost(2e-6, 3e-6, False)
        m = a.merged(b)
        assert m.latency == pytest.approx(3e-6)
        assert m.energy == pytest.approx(5e-6)
        assert not m.offloaded
