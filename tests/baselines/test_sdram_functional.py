"""Tests for the functional in-DRAM computing executor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.sdram import SDram
from repro.baselines.sdram_functional import SDramExecutor
from repro.memsim.geometry import MemoryGeometry


SMALL_DRAM = MemoryGeometry(
    channels=1,
    ranks_per_channel=1,
    chips_per_rank=1,
    banks_per_chip=1,
    subarrays_per_bank=2,
    rows_per_subarray=16,
    mats_per_subarray=1,
    cols_per_mat=256,
    mux_ratio=1,
)


@pytest.fixture
def ex():
    return SDramExecutor(SMALL_DRAM)


def fill(ex, rows, seed=0, subarray=0):
    rng = np.random.default_rng(seed)
    data = {}
    for r in rows:
        bits = rng.integers(0, 2, SMALL_DRAM.row_bits).astype(np.uint8)
        ex.write_data_row(subarray, r, bits)
        data[r] = bits
    return data


class TestFunctionalCorrectness:
    @pytest.mark.parametrize("op", ["and", "or"])
    def test_matches_numpy(self, ex, op):
        data = fill(ex, [0, 1], seed=3)
        ex.bitwise(op, 2, 0, 1)
        got = ex.read_data_row(0, 2, SMALL_DRAM.row_bits)
        oracle = data[0] & data[1] if op == "and" else data[0] | data[1]
        np.testing.assert_array_equal(got, oracle)

    def test_operands_preserved(self, ex):
        """Copy-before-compute protects the (destructively-read) sources."""
        data = fill(ex, [0, 1], seed=4)
        ex.bitwise("or", 2, 0, 1)
        np.testing.assert_array_equal(
            ex.read_data_row(0, 0, SMALL_DRAM.row_bits), data[0]
        )
        np.testing.assert_array_equal(
            ex.read_data_row(0, 1, SMALL_DRAM.row_bits), data[1]
        )

    def test_xor_rejected(self, ex):
        fill(ex, [0, 1])
        with pytest.raises(ValueError, match="only and/or"):
            ex.bitwise("xor", 2, 0, 1)

    def test_tra_is_majority(self, ex):
        """The TRA primitive itself: all three rows end at maj(a,b,c)."""
        base = ex.subarray_base(0)
        a = np.array([0, 0, 0, 0, 1, 1, 1, 1], dtype=np.uint8)
        b = np.array([0, 0, 1, 1, 0, 0, 1, 1], dtype=np.uint8)
        c = np.array([0, 1, 0, 1, 0, 1, 0, 1], dtype=np.uint8)
        ex.memory.write_bits(base + 0, a)
        ex.memory.write_bits(base + 1, b)
        ex.memory.write_bits(base + 2, c)
        ex._tra(0)
        expected = (a & b) | (a & c) | (b & c)
        for row in range(3):
            np.testing.assert_array_equal(
                ex.memory.read_bits(base + row, 8), expected
            )

    @given(seed=st.integers(0, 2**16), op=st.sampled_from(["and", "or"]))
    @settings(max_examples=25, deadline=None)
    def test_property_random_rows(self, seed, op):
        ex = SDramExecutor(SMALL_DRAM)
        data = fill(ex, [0, 1], seed=seed)
        ex.bitwise(op, 3, 0, 1)
        oracle = data[0] & data[1] if op == "and" else data[0] | data[1]
        np.testing.assert_array_equal(
            ex.read_data_row(0, 3, SMALL_DRAM.row_bits), oracle
        )


class TestPrimitiveCounts:
    def test_op_uses_four_aaps_one_tra(self, ex):
        fill(ex, [0, 1])
        result = ex.bitwise("or", 2, 0, 1)
        assert result.aap_count == 4  # a-in, b-in, ctrl, result-out
        assert result.tra_count == 1

    def test_latency_is_row_cycles(self, ex):
        fill(ex, [0, 1])
        result = ex.bitwise("and", 2, 0, 1)
        assert result.latency == pytest.approx(5 * ex.timing.t_rc)

    def test_energy_counts_rows_activated(self, ex):
        fill(ex, [0, 1])
        result = ex.bitwise("and", 2, 0, 1)
        e_row = SMALL_DRAM.row_bits * (
            ex.timing.e_activate_per_bit + ex.timing.e_sense_per_bit
        )
        assert result.energy == pytest.approx((4 * 2 + 1 * 3) * e_row)


class TestCrossValidationWithAnalyticalModel:
    def test_cost_same_order_as_analytical(self):
        """The analytical S-DRAM baseline assumes 3 AAP-equivalents per
        op with the result staying in place; the functional executor pays
        one more copy to place the result.  Same order, documented gap."""
        ex = SDramExecutor()  # full DRAM geometry
        fill_rng = np.random.default_rng(0)
        for r in (0, 1):
            ex.write_data_row(
                0, r, fill_rng.integers(0, 2, ex.geometry.row_bits).astype(np.uint8)
            )
        functional = ex.bitwise("or", 2, 0, 1)
        analytical = SDram().bitwise_cost("or", 2, ex.geometry.row_bits)
        ratio = functional.latency / analytical.latency
        assert 1.0 <= ratio <= 2.5


class TestValidation:
    def test_tiny_subarray_rejected(self):
        with pytest.raises(ValueError, match="too small"):
            SDramExecutor(
                MemoryGeometry(
                    channels=1,
                    ranks_per_channel=1,
                    chips_per_rank=1,
                    banks_per_chip=1,
                    subarrays_per_bank=1,
                    rows_per_subarray=2,
                    mats_per_subarray=1,
                    cols_per_mat=64,
                    mux_ratio=1,
                )
            )

    def test_data_row_bounds(self, ex):
        with pytest.raises(ValueError):
            ex.data_frame(0, -1)
        with pytest.raises(ValueError):
            ex.data_frame(0, SMALL_DRAM.rows_per_subarray)
