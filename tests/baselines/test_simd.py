"""Tests for the SIMD CPU baseline."""

import pytest

from repro.baselines.base import AccessPattern
from repro.baselines.simd import CpuConfig, SimdCpu


@pytest.fixture
def cpu():
    return SimdCpu.with_dram()


class TestRoofline:
    def test_large_ops_are_memory_bound(self, cpu):
        L = 1 << 22
        cost = cpu.bitwise_cost("or", 2, L)
        moved = (2 * L + 2 * L) / 8
        bw = cpu.memory.peak_bandwidth * SimdCpu.MEM_STREAM_EFFICIENCY
        assert cost.latency == pytest.approx(
            moved / bw + cpu.config.call_overhead, rel=1e-6
        )

    def test_resident_working_set_much_faster(self, cpu):
        L = 8 * 1024 * 8  # 8 KB vectors -> both fit in 32 KB L1
        hot = cpu.bitwise_cost("or", 2, L, resident=True)
        cold = cpu.bitwise_cost("or", 2, L, resident=False)
        assert hot.latency < cold.latency / 3

    def test_latency_scales_with_operands(self, cpu):
        a = cpu.bitwise_cost("or", 2, 1 << 20).latency
        b = cpu.bitwise_cost("or", 8, 1 << 20).latency
        assert b > 2 * a

    def test_random_access_slower(self, cpu):
        seq = cpu.bitwise_cost("or", 2, 1 << 20, AccessPattern.SEQUENTIAL)
        rand = cpu.bitwise_cost("or", 2, 1 << 20, AccessPattern.RANDOM)
        assert rand.latency > seq.latency

    def test_inv_cheaper_than_or(self, cpu):
        inv = cpu.bitwise_cost("inv", 1, 1 << 20)
        orr = cpu.bitwise_cost("or", 2, 1 << 20)
        assert inv.latency < orr.latency

    def test_never_offloaded(self, cpu):
        assert not cpu.bitwise_cost("or", 2, 1 << 14).offloaded

    def test_supports_everything(self, cpu):
        for op in ("or", "and", "xor", "inv"):
            assert cpu.supports(op)


class TestEnergy:
    def test_energy_includes_package_power(self, cpu):
        cost = cpu.bitwise_cost("or", 2, 1 << 22)
        assert cost.energy >= cpu.config.active_power * cost.latency

    def test_pcm_backed_cpu_costs_more_energy_on_writes(self):
        dram = SimdCpu.with_dram().bitwise_cost("or", 2, 1 << 22)
        pcm = SimdCpu.with_pcm().bitwise_cost("or", 2, 1 << 22)
        assert pcm.energy > dram.energy  # PCM write energy per bit is higher


class TestTraceMode:
    def test_trace_levels_reflect_working_set(self):
        cpu = SimdCpu.with_dram()
        # tiny kernel: 2 x 2 KB vectors -> after cold misses, hits
        stats = cpu.trace_bitwise("or", 2, 2 * 1024 * 8)
        assert stats["levels"]["MEM"] > 0  # cold misses
        assert stats["accesses"] == 3 * (2 * 1024 // 64)

    def test_trace_validates_args(self):
        cpu = SimdCpu.with_dram()
        with pytest.raises(ValueError):
            cpu.trace_bitwise("nand", 2, 1024)


class TestConfig:
    def test_cycle(self):
        assert CpuConfig().cycle == pytest.approx(1 / 3.3e9)

    def test_paper_cache_sizes(self):
        cpu = SimdCpu.with_dram()
        assert cpu.hierarchy.config.l1_size == 32 * 1024
        assert cpu.hierarchy.config.l2_size == 256 * 1024
        assert cpu.hierarchy.config.l3_size == 6 * 1024 * 1024

    def test_validation(self, cpu):
        with pytest.raises(ValueError):
            cpu.bitwise_cost("or", 1, 1024)
        with pytest.raises(ValueError):
            cpu.bitwise_cost("inv", 2, 1024)
        with pytest.raises(ValueError):
            cpu.bitwise_cost("or", 2, 0)
