"""Tests for the cache hierarchy simulator."""

import numpy as np
import pytest

from repro.baselines.cache import Cache, CacheHierarchy


class TestCache:
    def test_cold_miss_then_hit(self):
        c = Cache("L1", 1024, line_bytes=64, ways=2)
        hit, _ = c.access(0, False)
        assert not hit
        hit, _ = c.access(0, False)
        assert hit

    def test_same_line_different_bytes_hit(self):
        c = Cache("L1", 1024, line_bytes=64, ways=2)
        c.access(0, False)
        hit, _ = c.access(63, False)
        assert hit

    def test_lru_eviction(self):
        c = Cache("L1", 2 * 64, line_bytes=64, ways=2)  # one set, two ways
        c.access(0, False)
        c.access(64, False)
        c.access(128, False)  # evicts line 0 (LRU)
        hit, _ = c.access(64, False)
        assert hit
        hit, _ = c.access(0, False)
        assert not hit

    def test_lru_updated_on_hit(self):
        c = Cache("L1", 2 * 64, line_bytes=64, ways=2)
        c.access(0, False)
        c.access(64, False)
        c.access(0, False)  # touch line 0 -> 64 becomes LRU
        c.access(128, False)  # evicts 64
        hit, _ = c.access(0, False)
        assert hit

    def test_dirty_eviction_reported(self):
        c = Cache("L1", 2 * 64, line_bytes=64, ways=2)
        c.access(0, True)  # dirty
        c.access(64, False)
        _, evicted = c.access(128, False)
        assert evicted is not None

    def test_clean_eviction_not_reported(self):
        c = Cache("L1", 2 * 64, line_bytes=64, ways=2)
        c.access(0, False)
        c.access(64, False)
        _, evicted = c.access(128, False)
        assert evicted is None

    def test_hit_rate(self):
        c = Cache("L1", 1024, line_bytes=64, ways=2)
        c.access(0, False)
        c.access(0, False)
        c.access(0, False)
        assert c.hit_rate == pytest.approx(2 / 3)

    def test_stats_reset(self):
        c = Cache("L1", 1024, line_bytes=64, ways=2)
        c.access(0, False)
        c.reset_stats()
        assert c.accesses == 0

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            Cache("bad", 0)
        with pytest.raises(ValueError):
            Cache("bad", 100, line_bytes=64, ways=3)


class TestHierarchy:
    def test_miss_goes_to_memory(self):
        h = CacheHierarchy()
        r = h.access(0)
        assert r.level == "MEM"
        assert h.mem_accesses == 1

    def test_second_access_hits_l1(self):
        h = CacheHierarchy()
        h.access(0)
        r = h.access(0)
        assert r.level == "L1"
        assert r.latency < h.mem_latency

    def test_l2_hit_after_l1_eviction(self):
        h = CacheHierarchy()
        # stream enough lines to overflow L1 (32 KB = 512 lines) but not L2
        for i in range(1024):
            h.access(i * 64)
        r = h.access(0)
        assert r.level == "L2"

    def test_latency_ordering(self):
        h = CacheHierarchy()
        h.access(0)
        l1 = h.access(0).latency
        mem = h.access(1 << 30).latency
        assert l1 < mem

    def test_run_trace_aggregates(self):
        h = CacheHierarchy()
        stats = h.run_trace(np.array([0, 0, 64, 64]))
        assert stats["accesses"] == 4
        assert stats["levels"]["MEM"] == 2
        assert stats["levels"]["L1"] == 2
        assert stats["latency"] > 0

    def test_run_trace_shape_check(self):
        h = CacheHierarchy()
        with pytest.raises(ValueError):
            h.run_trace(np.array([0, 1]), writes=np.array([True]))


class TestAnalyticalHelpers:
    def test_fit_level_thresholds(self):
        h = CacheHierarchy()
        assert h.fit_level(16 * 1024) == "L1"
        assert h.fit_level(128 * 1024) == "L2"
        assert h.fit_level(4 * 1024 * 1024) == "L3"
        assert h.fit_level(64 * 1024 * 1024) == "MEM"

    def test_level_bandwidth_ordering(self):
        h = CacheHierarchy()
        assert (
            h.level_bandwidth("L1")
            > h.level_bandwidth("L2")
            > h.level_bandwidth("L3")
            > h.level_bandwidth("MEM")
        )

    def test_energy_per_byte_ordering(self):
        h = CacheHierarchy()
        assert (
            h.level_energy_per_byte("L1")
            < h.level_energy_per_byte("L2")
            < h.level_energy_per_byte("L3")
            < h.level_energy_per_byte("MEM")
        )

    def test_unknown_level(self):
        with pytest.raises(ValueError):
            CacheHierarchy().level_energy_per_byte("L4")
