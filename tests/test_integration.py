"""End-to-end integration scenarios across the whole stack."""

import numpy as np
import pytest

from repro.apps.bitvector import PimBitVector
from repro.core.pinatubo import PinatuboSystem
from repro.memsim.geometry import MemoryGeometry
from repro.runtime.api import PimRuntime


GEOM = MemoryGeometry(
    channels=2,
    ranks_per_channel=1,
    chips_per_rank=1,
    banks_per_chip=2,
    subarrays_per_bank=4,
    rows_per_subarray=64,
    mats_per_subarray=1,
    cols_per_mat=1024,
    mux_ratio=8,
)


@pytest.fixture
def rt():
    return PimRuntime(PinatuboSystem.pcm(geometry=GEOM))


class TestExpressionPipelines:
    """Chained operations with intermediate results staying in memory."""

    def test_masked_union(self, rt):
        rng = np.random.default_rng(0)
        n = 512
        sets = [rng.integers(0, 2, n).astype(np.uint8) for _ in range(6)]
        mask = rng.integers(0, 2, n).astype(np.uint8)
        vecs = [PimBitVector.from_bits(rt, s, "q") for s in sets]
        mask_v = PimBitVector.from_bits(rt, mask, "q")
        result = PimBitVector.any_of(vecs) & mask_v
        expected = np.bitwise_or.reduce(sets) & mask
        np.testing.assert_array_equal(result.to_numpy(), expected)

    def test_symmetric_difference_chain(self, rt):
        rng = np.random.default_rng(1)
        n = 512
        a, b, c = (rng.integers(0, 2, n).astype(np.uint8) for _ in range(3))
        va = PimBitVector.from_bits(rt, a, "q")
        vb = PimBitVector.from_bits(rt, b, "q")
        vc = PimBitVector.from_bits(rt, c, "q")
        result = (va ^ vb) ^ vc
        np.testing.assert_array_equal(result.to_numpy(), a ^ b ^ c)

    def test_demorgan_identity(self, rt):
        """NOT(a OR b) == NOT(a) AND NOT(b), computed both ways in PIM."""
        rng = np.random.default_rng(2)
        n = 512
        a = rng.integers(0, 2, n).astype(np.uint8)
        b = rng.integers(0, 2, n).astype(np.uint8)
        va = PimBitVector.from_bits(rt, a, "q")
        vb = PimBitVector.from_bits(rt, b, "q")
        left = ~(va | vb)
        right = (~va) & (~vb)
        np.testing.assert_array_equal(left.to_numpy(), right.to_numpy())

    def test_double_inversion_is_identity(self, rt):
        rng = np.random.default_rng(3)
        bits = rng.integers(0, 2, 512).astype(np.uint8)
        v = PimBitVector.from_bits(rt, bits, "q")
        np.testing.assert_array_equal((~(~v)).to_numpy(), bits)


class TestCommutativityProperties:
    def test_or_operand_order_irrelevant(self, rt):
        rng = np.random.default_rng(4)
        n = 256
        data = [rng.integers(0, 2, n).astype(np.uint8) for _ in range(5)]
        vecs = [PimBitVector.from_bits(rt, d, "g") for d in data]
        fwd = PimBitVector.any_of(vecs)
        rev = PimBitVector.any_of(list(reversed(vecs)))
        np.testing.assert_array_equal(fwd.to_numpy(), rev.to_numpy())


class TestTechnologyPortability:
    @pytest.mark.parametrize("ctor", [
        PinatuboSystem.pcm,
        PinatuboSystem.reram,
        PinatuboSystem.stt,
    ])
    def test_full_stack_on_each_technology(self, ctor):
        rt = PimRuntime(ctor(geometry=GEOM))
        rng = np.random.default_rng(5)
        n = 512
        data = [rng.integers(0, 2, n).astype(np.uint8) for _ in range(4)]
        vecs = [PimBitVector.from_bits(rt, d, "g") for d in data]
        out = PimBitVector.any_of(vecs)
        np.testing.assert_array_equal(out.to_numpy(), np.bitwise_or.reduce(data))

    def test_stt_decomposes_wide_or(self):
        rt = PimRuntime(PinatuboSystem.stt(geometry=GEOM))
        rng = np.random.default_rng(6)
        n = 256
        data = [rng.integers(0, 2, n).astype(np.uint8) for _ in range(8)]
        vecs = [rt.pim_malloc(n, "g") for _ in data]
        for v, d in zip(vecs, data):
            rt.pim_write(v, d)
        dest = rt.pim_malloc(n, "g")
        result = rt.pim_op("or", dest, vecs)
        assert result.steps == 7  # 2-row technology: pairwise accumulation
        np.testing.assert_array_equal(
            rt.pim_read(dest), np.bitwise_or.reduce(data)
        )


class TestEnduranceAccounting:
    def test_write_counts_tracked(self, rt):
        a = rt.pim_malloc(256, "g")
        bits = np.ones(256, np.uint8)
        rt.pim_write(a, bits)
        rt.pim_write(a, bits)
        frame = a.frames[0]
        assert rt.system.memory.frame_writes(frame) == 2

    def test_pim_ops_wear_only_destination(self, rt):
        rng = np.random.default_rng(7)
        a = rt.pim_malloc(256, "g")
        b = rt.pim_malloc(256, "g")
        dest = rt.pim_malloc(256, "g")
        rt.pim_write(a, rng.integers(0, 2, 256).astype(np.uint8))
        rt.pim_write(b, rng.integers(0, 2, 256).astype(np.uint8))
        writes_a = rt.system.memory.frame_writes(a.frames[0])
        rt.pim_op("or", dest, [a, b])
        assert rt.system.memory.frame_writes(a.frames[0]) == writes_a
        assert rt.system.memory.frame_writes(dest.frames[0]) == 1


class TestAccountingInvariants:
    def test_latency_energy_strictly_increase(self, rt):
        rng = np.random.default_rng(8)
        checkpoints = []
        for i in range(3):
            a = PimBitVector.from_bits(
                rt, rng.integers(0, 2, 256).astype(np.uint8), "g"
            )
            b = PimBitVector.from_bits(
                rt, rng.integers(0, 2, 256).astype(np.uint8), "g"
            )
            _ = a | b
            checkpoints.append(
                (rt.pim_accounting.latency, rt.pim_accounting.energy)
            )
        latencies = [c[0] for c in checkpoints]
        energies = [c[1] for c in checkpoints]
        assert latencies == sorted(latencies)
        assert energies == sorted(energies)
        assert latencies[0] > 0

    def test_bus_carries_no_data_for_pim_ops(self, rt):
        rng = np.random.default_rng(9)
        a = PimBitVector.from_bits(rt, rng.integers(0, 2, 256).astype(np.uint8), "g")
        b = PimBitVector.from_bits(rt, rng.integers(0, 2, 256).astype(np.uint8), "g")
        before = rt.pim_accounting.bus_data_bytes
        _ = a | b
        assert rt.pim_accounting.bus_data_bytes == before
