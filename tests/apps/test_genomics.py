"""Tests for the population-genomics bit-matrix application."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.genomics import (
    GenotypePanel,
    PimGenotypePanel,
    burden_oracle,
    burden_trace,
    haplotype_oracle,
    random_gene_sets,
    synthetic_panel,
)
from repro.core.pinatubo import PinatuboSystem
from repro.memsim.geometry import MemoryGeometry
from repro.runtime.api import PimRuntime
from repro.workloads.trace import BitwiseEvent


GEOM = MemoryGeometry(
    channels=1,
    ranks_per_channel=1,
    chips_per_rank=1,
    banks_per_chip=2,
    subarrays_per_bank=8,
    rows_per_subarray=64,
    mats_per_subarray=1,
    cols_per_mat=2048,
    mux_ratio=8,
)


@pytest.fixture(scope="module")
def panel():
    return synthetic_panel(n_variants=64, n_samples=1024, seed=3)


class TestPanel:
    def test_shape(self, panel):
        assert panel.n_variants == 64
        assert panel.n_samples == 1024

    def test_sfs_is_rare_skewed(self, panel):
        freqs = [panel.allele_frequency(v) for v in range(panel.n_variants)]
        rare = sum(1 for f in freqs if f < 0.05)
        assert rare > panel.n_variants // 2
        assert max(freqs) > 0.1  # a few common variants exist

    def test_deterministic(self):
        a = synthetic_panel(16, 128, seed=9)
        b = synthetic_panel(16, 128, seed=9)
        np.testing.assert_array_equal(a.bitmaps, b.bitmaps)

    def test_validation(self):
        with pytest.raises(ValueError):
            synthetic_panel(0, 10)
        with pytest.raises(ValueError):
            GenotypePanel(np.zeros(4, np.uint8))


class TestOracles:
    def test_burden_is_union(self, panel):
        out = burden_oracle(panel, [0, 1, 2])
        expected = panel.variant(0) | panel.variant(1) | panel.variant(2)
        np.testing.assert_array_equal(out, expected)

    def test_haplotype_is_intersection(self, panel):
        out = haplotype_oracle(panel, [0, 1])
        np.testing.assert_array_equal(out, panel.variant(0) & panel.variant(1))

    def test_empty_set_rejected(self, panel):
        with pytest.raises(ValueError):
            burden_oracle(panel, [])
        with pytest.raises(ValueError):
            haplotype_oracle(panel, [])


class TestTrace:
    def test_burden_trace_shape(self, panel):
        sets = random_gene_sets(panel, 10, seed=1)
        trace = burden_trace(panel, sets)
        events = [e for e in trace.events if isinstance(e, BitwiseEvent)]
        assert len(events) == 10
        assert all(e.op == "or" for e in events)
        assert trace.cpu_ops > 0

    def test_gene_sets_deterministic(self, panel):
        assert random_gene_sets(panel, 5, seed=2) == random_gene_sets(
            panel, 5, seed=2
        )

    def test_validation(self, panel):
        with pytest.raises(ValueError):
            random_gene_sets(panel, 0)
        with pytest.raises(ValueError):
            burden_trace(panel, [[]])


class TestPimExecution:
    @pytest.fixture
    def pim(self, panel):
        runtime = PimRuntime(PinatuboSystem.pcm(geometry=GEOM))
        return PimGenotypePanel(runtime, panel)

    def test_burden_matches_oracle(self, pim, panel):
        variant_set = [3, 7, 11, 20, 41]
        got = pim.burden(variant_set)
        np.testing.assert_array_equal(got, burden_oracle(panel, variant_set))

    def test_haplotype_matches_oracle(self, pim, panel):
        variant_set = [1, 2]
        got = pim.haplotype(variant_set)
        np.testing.assert_array_equal(got, haplotype_oracle(panel, variant_set))

    def test_single_variant_shortcut(self, pim, panel):
        np.testing.assert_array_equal(pim.burden([5]), panel.variant(5))

    def test_discordance(self, pim, panel):
        rng = np.random.default_rng(4)
        phenotype = rng.integers(0, 2, panel.n_samples).astype(np.uint8)
        handle = pim.runtime.pim_malloc(panel.n_samples, "pheno")
        pim.runtime.pim_write(handle, phenotype)
        got = pim.discordance(9, handle)
        np.testing.assert_array_equal(got, panel.variant(9) ^ phenotype)

    def test_carrier_count(self, pim, panel):
        variant_set = [0, 10, 30]
        assert pim.carrier_count(variant_set) == int(
            burden_oracle(panel, variant_set).sum()
        )

    def test_multirow_or_is_one_step(self, pim):
        before = pim.runtime.pim_accounting.in_memory_steps
        pim.burden(list(range(40)))  # 40 variants <= 128-row budget
        assert pim.runtime.pim_accounting.in_memory_steps == before + 1

    def test_empty_set_rejected(self, pim):
        with pytest.raises(ValueError):
            pim.burden([])

    @given(
        seed=st.integers(0, 2**12),
        size=st.integers(1, 20),
    )
    @settings(max_examples=10, deadline=None)
    def test_property_burden(self, seed, size):
        panel = synthetic_panel(32, 512, seed=seed)
        runtime = PimRuntime(PinatuboSystem.pcm(geometry=GEOM))
        pim = PimGenotypePanel(runtime, panel)
        rng = np.random.default_rng(seed + 1)
        variant_set = sorted(rng.choice(32, size, replace=False))
        np.testing.assert_array_equal(
            pim.burden(variant_set), burden_oracle(panel, variant_set)
        )
