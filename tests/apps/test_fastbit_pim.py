"""Tests for the end-to-end PIM-resident FastBit engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.fastbit import FastBitDB, RangeQuery
from repro.apps.fastbit_pim import PimFastBit
from repro.apps.star import ColumnSpec, synthetic_star_table
from repro.core.pinatubo import PinatuboSystem
from repro.memsim.geometry import MemoryGeometry
from repro.runtime.api import PimRuntime


#: small schema so the whole index fits comfortably in the test geometry
COLUMNS = (
    ColumnSpec("energy", 16, "exponential"),
    ColumnSpec("charge", 8, "normal"),
)

GEOM = MemoryGeometry(
    channels=1,
    ranks_per_channel=1,
    chips_per_rank=1,
    banks_per_chip=2,
    subarrays_per_bank=8,
    rows_per_subarray=64,
    mats_per_subarray=1,
    cols_per_mat=2048,
    mux_ratio=8,
)

N_EVENTS = 2048


@pytest.fixture(scope="module")
def table():
    return synthetic_star_table(N_EVENTS, columns=COLUMNS, seed=5)


@pytest.fixture
def db(table):
    runtime = PimRuntime(PinatuboSystem.pcm(geometry=GEOM))
    return PimFastBit(runtime, table)


class TestIndexResidency:
    def test_one_row_per_bin(self, db):
        assert db.index_rows == 16 + 8

    def test_bins_partition_events(self, db):
        total = 0
        for handle in db.bin_handles["energy"]:
            total += int(db.runtime.pim_read(handle).sum())
        assert total == N_EVENTS


class TestQueries:
    @pytest.mark.parametrize("predicates", [
        (("energy", 0, 3),),
        (("energy", 0, 15),),
        (("charge", 2, 5),),
        (("energy", 0, 7), ("charge", 0, 3)),
        (("energy", 2, 2),),  # single bin
    ])
    def test_matches_oracle(self, db, table, predicates):
        query = RangeQuery(predicates)
        oracle = FastBitDB(table, functional=False).query_oracle(query)
        assert db.query(query).hits == oracle

    def test_verify_helper(self, db):
        assert db.verify(RangeQuery((("energy", 1, 9),)))

    def test_wide_range_is_one_multirow_step(self, db):
        result = db.query(RangeQuery((("energy", 0, 15),)))
        assert result.in_memory_steps == 1  # 16 bins <= 128-row budget

    def test_conjunction_adds_and_step(self, db):
        result = db.query(RangeQuery((("energy", 0, 7), ("charge", 0, 3))))
        assert result.in_memory_steps == 3  # two ORs + one AND

    def test_costs_accumulate(self, db):
        r1 = db.query(RangeQuery((("energy", 0, 7),)))
        assert r1.latency > 0
        assert r1.energy > 0

    def test_workload(self, db, table):
        oracle_db = FastBitDB(table, functional=False)
        queries = oracle_db.random_queries(6, seed=3)
        results = db.run_workload(queries)
        for q, r in zip(queries, results):
            assert r.hits == oracle_db.query_oracle(q)

    def test_empty_range_rejected(self, db):
        db.bin_handles["broken"] = []
        with pytest.raises(ValueError):
            db.query(RangeQuery((("broken", 0, 0),)))


class TestPinatubo2Decomposition:
    def test_two_row_system_needs_more_steps(self, table):
        runtime = PimRuntime(PinatuboSystem.pcm(geometry=GEOM, max_rows=2))
        db = PimFastBit(runtime, table)
        result = db.query(RangeQuery((("energy", 0, 15),)))
        assert result.in_memory_steps == 15  # pairwise accumulation
        oracle = FastBitDB(table, functional=False).query_oracle(
            RangeQuery((("energy", 0, 15),))
        )
        assert result.hits == oracle


class TestPropertyBased:
    @given(
        lo=st.integers(0, 15),
        width=st.integers(0, 15),
        lo2=st.integers(0, 7),
        width2=st.integers(0, 7),
    )
    @settings(max_examples=12, deadline=None)
    def test_random_conjunctions(self, lo, width, lo2, width2):
        table = synthetic_star_table(512, columns=COLUMNS, seed=9)
        runtime = PimRuntime(PinatuboSystem.pcm(geometry=GEOM))
        db = PimFastBit(runtime, table)
        hi = min(15, lo + width)
        hi2 = min(7, lo2 + width2)
        query = RangeQuery((("energy", lo, hi), ("charge", lo2, hi2)))
        oracle = FastBitDB(table, functional=False).query_oracle(query)
        assert db.query(query).hits == oracle
