"""Tests for the set-algebra expression layer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.setops import (
    BinOp,
    Not,
    PimSetAlgebra,
    SetExpressionError,
    Var,
    evaluate_numpy,
    expression_names,
    parse_expression,
    tokenize,
)
from repro.core.pinatubo import PinatuboSystem
from repro.memsim.geometry import MemoryGeometry
from repro.runtime.api import PimRuntime


GEOM = MemoryGeometry(
    channels=1,
    ranks_per_channel=1,
    chips_per_rank=1,
    banks_per_chip=2,
    subarrays_per_bank=8,
    rows_per_subarray=64,
    mats_per_subarray=1,
    cols_per_mat=1024,
    mux_ratio=8,
)

N = 512


def make_sets(names, seed=0):
    rng = np.random.default_rng(seed)
    return {n: rng.integers(0, 2, N).astype(np.uint8) for n in names}


class TestTokenizer:
    def test_tokens(self):
        assert tokenize("a & (b|c) ^ ~d") == [
            "a", "&", "(", "b", "|", "c", ")", "^", "~", "d",
        ]

    def test_underscored_names(self):
        assert tokenize("tag_a|tag_b") == ["tag_a", "|", "tag_b"]

    def test_bad_character(self):
        with pytest.raises(SetExpressionError, match="unexpected character"):
            tokenize("a + b")


class TestParser:
    def test_single_var(self):
        assert parse_expression("dogs") == Var("dogs")

    def test_precedence(self):
        node = parse_expression("a | b & c")
        assert isinstance(node, BinOp) and node.op == "|"
        right = node.operands[1]
        assert isinstance(right, BinOp) and right.op == "&"

    def test_not_binds_tightest(self):
        node = parse_expression("~a & b")
        assert node.op == "&"
        assert isinstance(node.operands[0], Not)

    def test_or_chain_flattens(self):
        node = parse_expression("a | b | c | d")
        assert node.op == "|"
        assert len(node.operands) == 4  # one n-ary op, not a tree

    def test_parenthesised_or_still_flattens(self):
        node = parse_expression("(a | b) | (c | d)")
        assert node.op == "|"
        assert len(node.operands) == 4

    def test_xor_chain_stays_left_assoc_shape(self):
        node = parse_expression("a ^ b ^ c")
        assert node.op == "^"
        assert len(node.operands) == 3

    def test_parens(self):
        node = parse_expression("(a | b) & c")
        assert node.op == "&"

    def test_errors(self):
        for bad in ("", "a |", "| a", "(a", "a b", "a & & b", "~"):
            with pytest.raises(SetExpressionError):
                parse_expression(bad)

    def test_expression_names(self):
        node = parse_expression("a & (b | ~c) ^ a")
        assert expression_names(node) == {"a", "b", "c"}

    def test_parenthesised_xor_flattens_too(self):
        node = parse_expression("(a ^ b) ^ c")
        assert node.op == "^"
        assert len(node.operands) == 3


class TestUnparse:
    @pytest.mark.parametrize("expression", [
        "a",
        "~a",
        "a | b | c",
        "a & b | c",
        "~(a | b) & c",
        "(a ^ b) | (c & d)",
        "a & (b | c) & ~d",
    ])
    def test_roundtrip(self, expression):
        from repro.apps.setops import unparse

        node = parse_expression(expression)
        assert parse_expression(unparse(node)) == node

    def test_canonical_text(self):
        from repro.apps.setops import unparse

        assert unparse(parse_expression("a|b|c")) == "a | b | c"
        assert unparse(parse_expression("~( a )")) == "~a"

    @given(
        depth_seed=st.integers(0, 2**16),
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property_random_asts(self, depth_seed):
        from repro.apps.setops import unparse

        rng = np.random.default_rng(depth_seed)

        def build(depth):
            choice = rng.integers(0, 4 if depth < 3 else 1)
            if choice == 0:
                return Var(f"s{int(rng.integers(0, 5))}")
            if choice == 1:
                return Not(build(depth + 1))
            op = ["&", "|", "^"][int(rng.integers(0, 3))]
            n = int(rng.integers(2, 4))
            operands = []
            for _ in range(n):
                operand = build(depth + 1)
                # keep the AST canonical (as the parser would produce):
                # no same-op child of an associative chain
                if isinstance(operand, BinOp) and operand.op == op:
                    operands.extend(operand.operands)
                else:
                    operands.append(operand)
            return BinOp(op, tuple(operands))

        node = build(0)
        assert parse_expression(unparse(node)) == node


class TestNumpyEvaluation:
    def test_matches_direct(self):
        sets = make_sets("abcd")
        node = parse_expression("a & (b | c) & ~d")
        expected = sets["a"] & (sets["b"] | sets["c"]) & (1 - sets["d"])
        np.testing.assert_array_equal(evaluate_numpy(node, sets), expected)

    def test_unknown_name(self):
        with pytest.raises(SetExpressionError, match="unknown set"):
            evaluate_numpy(parse_expression("ghost"), {})


class TestPimEvaluation:
    @pytest.fixture
    def algebra(self):
        rt = PimRuntime(PinatuboSystem.pcm(geometry=GEOM))
        return PimSetAlgebra(rt, N)

    def _load(self, algebra, sets):
        for name, bits in sets.items():
            algebra.define(name, bits)

    @pytest.mark.parametrize("expression", [
        "a | b",
        "a & b",
        "a ^ b",
        "~a",
        "a & (b | c) & ~d",
        "(a ^ b) | (c & d)",
        "a | b | c | d",
    ])
    def test_matches_numpy(self, algebra, expression):
        sets = make_sets("abcd", seed=3)
        self._load(algebra, sets)
        expected = evaluate_numpy(parse_expression(expression), sets)
        np.testing.assert_array_equal(algebra.query(expression), expected)

    def test_wide_or_is_one_step(self, algebra):
        sets = make_sets([f"s{i}" for i in range(12)], seed=4)
        self._load(algebra, sets)
        before = algebra.runtime.pim_accounting.in_memory_steps
        algebra.query(" | ".join(sets))
        # the flattened 12-way OR runs as one multi-row activation
        assert algebra.runtime.pim_accounting.in_memory_steps == before + 1

    def test_count(self, algebra):
        sets = make_sets("ab", seed=5)
        self._load(algebra, sets)
        assert algebra.count("a & b") == int((sets["a"] & sets["b"]).sum())

    def test_redefine_overwrites(self, algebra):
        algebra.define("x", np.zeros(N, np.uint8))
        algebra.define("x", np.ones(N, np.uint8))
        assert algebra.count("x") == N

    def test_names(self, algebra):
        algebra.define("zeta", np.zeros(N, np.uint8))
        algebra.define("alpha", np.zeros(N, np.uint8))
        assert algebra.names() == ["alpha", "zeta"]

    def test_validation(self, algebra):
        with pytest.raises(ValueError, match="bits"):
            algebra.define("short", np.zeros(3, np.uint8))
        with pytest.raises(SetExpressionError):
            algebra.query("missing_set")
        with pytest.raises(ValueError):
            PimSetAlgebra(algebra.runtime, 0)

    @given(
        seed=st.integers(0, 2**12),
        expression=st.sampled_from([
            "a & b | c",
            "~(a | b) & c",
            "a ^ b ^ c",
            "(a | b | c) & ~a",
        ]),
    )
    @settings(max_examples=10, deadline=None)
    def test_property_random_sets(self, seed, expression):
        sets = make_sets("abc", seed=seed)
        rt = PimRuntime(PinatuboSystem.pcm(geometry=GEOM))
        algebra = PimSetAlgebra(rt, N)
        for name, bits in sets.items():
            algebra.define(name, bits)
        expected = evaluate_numpy(parse_expression(expression), sets)
        np.testing.assert_array_equal(algebra.query(expression), expected)
