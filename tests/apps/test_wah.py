"""Tests for WAH bitmap compression."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.wah import (
    GROUP_BITS,
    compression_ratio,
    wah_and,
    wah_decode,
    wah_encode,
    wah_or,
    wah_popcount,
)


def sparse_bits(n, density, seed=0):
    rng = np.random.default_rng(seed)
    return (rng.random(n) < density).astype(np.uint8)


class TestRoundTrip:
    @pytest.mark.parametrize("n", [1, 31, 32, 62, 93, 1000, 4096])
    @pytest.mark.parametrize("density", [0.0, 0.01, 0.5, 1.0])
    def test_encode_decode(self, n, density):
        bits = sparse_bits(n, density, seed=n)
        np.testing.assert_array_equal(wah_decode(wah_encode(bits), n), bits)

    def test_all_zeros_is_one_fill(self):
        bits = np.zeros(31 * 100, dtype=np.uint8)
        words = wah_encode(bits)
        assert len(words) == 1

    def test_all_ones_is_one_fill(self):
        bits = np.ones(31 * 100, dtype=np.uint8)
        words = wah_encode(bits)
        assert len(words) == 1
        np.testing.assert_array_equal(wah_decode(words, 31 * 100), bits)

    def test_dense_random_is_mostly_literals(self):
        bits = sparse_bits(31 * 64, 0.5, seed=1)
        assert len(wah_encode(bits)) == pytest.approx(64, abs=2)

    def test_wrong_length_decode_rejected(self):
        words = wah_encode(np.zeros(62, np.uint8))
        with pytest.raises(ValueError, match="groups"):
            wah_decode(words, 1000)

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            wah_encode(np.zeros((2, 31), np.uint8))

    @given(
        n=st.integers(1, 500),
        density=st.floats(0.0, 1.0),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, n, density, seed):
        bits = sparse_bits(n, density, seed)
        np.testing.assert_array_equal(wah_decode(wah_encode(bits), n), bits)


class TestCompressedOps:
    @pytest.mark.parametrize("da,db", [(0.01, 0.01), (0.5, 0.01), (0.9, 0.9)])
    def test_and_or_match_numpy(self, da, db):
        n = 31 * 40
        a = sparse_bits(n, da, seed=2)
        b = sparse_bits(n, db, seed=3)
        wa, wb = wah_encode(a), wah_encode(b)
        np.testing.assert_array_equal(wah_decode(wah_and(wa, wb), n), a & b)
        np.testing.assert_array_equal(wah_decode(wah_or(wa, wb), n), a | b)

    def test_result_stays_canonical(self):
        """Ops must re-merge fills (0 AND anything = 0-fill)."""
        n = 31 * 100
        a = sparse_bits(n, 0.3, seed=4)
        zeros = np.zeros(n, np.uint8)
        result = wah_and(wah_encode(a), wah_encode(zeros))
        assert len(result) == 1  # one zero fill

    def test_mismatched_lengths_rejected(self):
        a = wah_encode(np.zeros(31, np.uint8))
        b = wah_encode(np.zeros(62, np.uint8))
        with pytest.raises(ValueError, match="different bit counts"):
            wah_and(a, b)

    @given(
        n_groups=st.integers(1, 30),
        da=st.floats(0.0, 1.0),
        db=st.floats(0.0, 1.0),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=50, deadline=None)
    def test_ops_property(self, n_groups, da, db, seed):
        n = GROUP_BITS * n_groups
        a = sparse_bits(n, da, seed)
        b = sparse_bits(n, db, seed + 1)
        np.testing.assert_array_equal(
            wah_decode(wah_or(wah_encode(a), wah_encode(b)), n), a | b
        )


class TestPopcountAndRatio:
    def test_popcount_matches(self):
        bits = sparse_bits(31 * 50, 0.2, seed=5)
        assert wah_popcount(wah_encode(bits)) == int(bits.sum())

    def test_sparse_bitmaps_compress_well(self):
        bits = sparse_bits(31 * 32 * 100, 0.001, seed=6)
        assert compression_ratio(bits) > 5

    def test_dense_bitmaps_do_not_compress(self):
        bits = sparse_bits(31 * 32 * 10, 0.5, seed=7)
        assert compression_ratio(bits) < 1.1

    def test_equality_encoded_index_bitmaps_compress(self):
        """The FastBit use case: one bitmap per bin is ~1/n_bins dense."""
        from repro.apps.fastbit import BitmapIndex
        from repro.apps.star import synthetic_star_table

        table = synthetic_star_table(31 * 1000, seed=8)
        idx = BitmapIndex(table.bin_indices("energy"), 128)
        ratios = [compression_ratio(idx.bitmap(b)) for b in (60, 90, 120)]
        assert min(ratios) > 3  # high bins of a falling spectrum are sparse
