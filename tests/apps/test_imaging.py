"""Tests for bit-plane image processing on PIM."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.bitvector import PimBitVector
from repro.apps.imaging import (
    band_mask_pim,
    from_bit_planes,
    synthetic_image,
    threshold_bits,
    threshold_mask_numpy,
    threshold_mask_pim,
    threshold_trace,
    to_bit_planes,
)
from repro.core.pinatubo import PinatuboSystem
from repro.memsim.geometry import MemoryGeometry
from repro.runtime.api import PimRuntime


GEOM = MemoryGeometry(
    channels=1,
    ranks_per_channel=1,
    chips_per_rank=1,
    banks_per_chip=2,
    subarrays_per_bank=4,
    rows_per_subarray=64,
    mats_per_subarray=1,
    cols_per_mat=2048,
    mux_ratio=8,
)


@pytest.fixture
def rt():
    return PimRuntime(PinatuboSystem.pcm(geometry=GEOM))


def load_planes(rt, image):
    handles = []
    for plane in to_bit_planes(image):
        h = rt.pim_malloc(plane.size, "img")
        rt.pim_write(h, plane)
        handles.append(h)
    return handles


class TestBitPlanes:
    def test_roundtrip(self):
        image = synthetic_image(16, 16, seed=1)
        planes = to_bit_planes(image)
        assert len(planes) == 8
        np.testing.assert_array_equal(from_bit_planes(planes, image.shape), image)

    def test_msb_first(self):
        image = np.array([[128, 1]], dtype=np.uint8)
        planes = to_bit_planes(image)
        np.testing.assert_array_equal(planes[0], [1, 0])  # MSB
        np.testing.assert_array_equal(planes[7], [0, 1])  # LSB

    def test_dtype_checked(self):
        with pytest.raises(ValueError):
            to_bit_planes(np.zeros((2, 2), dtype=np.int32))

    def test_plane_count_checked(self):
        with pytest.raises(ValueError):
            from_bit_planes([np.zeros(4, np.uint8)] * 7, (2, 2))

    def test_threshold_bits(self):
        assert threshold_bits(0) == [0] * 8
        assert threshold_bits(255) == [1] * 8
        assert threshold_bits(130) == [1, 0, 0, 0, 0, 0, 1, 0]
        with pytest.raises(ValueError):
            threshold_bits(300)


class TestNumpyComparator:
    @pytest.mark.parametrize("t", [0, 1, 127, 128, 200, 254, 255])
    def test_matches_direct_compare(self, t):
        image = synthetic_image(12, 12, seed=t)
        planes = to_bit_planes(image)
        mask = threshold_mask_numpy(planes, t)
        np.testing.assert_array_equal(
            mask.reshape(image.shape), (image > t).astype(np.uint8)
        )

    @given(t=st.integers(0, 255), seed=st.integers(0, 2**10))
    @settings(max_examples=40, deadline=None)
    def test_property(self, t, seed):
        rng = np.random.default_rng(seed)
        pixels = rng.integers(0, 256, 64).astype(np.uint8)
        planes = to_bit_planes(pixels.reshape(8, 8))
        mask = threshold_mask_numpy(planes, t)
        np.testing.assert_array_equal(mask, (pixels > t).astype(np.uint8))


class TestPimComparator:
    @pytest.mark.parametrize("t", [0, 100, 250])
    def test_matches_oracle(self, rt, t):
        image = synthetic_image(16, 16, seed=3)
        handles = load_planes(rt, image)
        mask_h = threshold_mask_pim(rt, handles, t)
        mask = rt.pim_read(mask_h).reshape(image.shape)
        np.testing.assert_array_equal(mask, (image > t).astype(np.uint8))

    def test_band_mask(self, rt):
        image = synthetic_image(16, 16, seed=4)
        handles = load_planes(rt, image)
        band_h = band_mask_pim(rt, handles, 64, 192)
        band = rt.pim_read(band_h).reshape(image.shape)
        expected = ((image > 64) & ~(image > 192)).astype(np.uint8)
        np.testing.assert_array_equal(band, expected)

    def test_band_validation(self, rt):
        image = synthetic_image(8, 8)
        handles = load_planes(rt, image)
        with pytest.raises(ValueError):
            band_mask_pim(rt, handles, 200, 100)

    def test_plane_count_checked(self, rt):
        with pytest.raises(ValueError):
            threshold_mask_pim(rt, [], 10)

    def test_runs_in_memory(self, rt):
        image = synthetic_image(8, 8, seed=5)
        handles = load_planes(rt, image)
        before = rt.pim_accounting.bus_data_bytes
        threshold_mask_pim(rt, handles, 99)
        assert rt.pim_accounting.bus_data_bytes == before  # commands only
        assert rt.driver.stats.instructions > 8


class TestMaskComposition:
    def test_popcount_segmentation(self, rt):
        image = synthetic_image(16, 16, seed=6)
        handles = load_planes(rt, image)
        mask_h = threshold_mask_pim(rt, handles, 240)
        bright = PimBitVector(rt, mask_h.n_bits, handle=mask_h).popcount()
        assert bright == int((image > 240).sum())


class TestTrace:
    def test_trace_shape(self):
        trace = threshold_trace(4096, 130)
        hist = trace.op_histogram()
        # t=130: six zero-bits -> 6*(2 ands + or + inv); two one-bits -> 1 and
        assert hist["and"] == 6 * 2 + 2
        assert hist["or"] == 6
        assert hist["inv"] == 6 + 1

    def test_trace_priceable(self):
        from repro.core.model import PinatuboModel

        cost = threshold_trace(1 << 16, 128).price(PinatuboModel())
        assert cost.bitwise_latency > 0

    def test_trace_validation(self):
        with pytest.raises(ValueError):
            threshold_trace(0, 10)


class TestSyntheticImage:
    def test_shape_and_dtype(self):
        image = synthetic_image(32, 48, seed=1)
        assert image.shape == (32, 48)
        assert image.dtype == np.uint8

    def test_deterministic(self):
        np.testing.assert_array_equal(
            synthetic_image(16, 16, seed=2), synthetic_image(16, 16, seed=2)
        )

    def test_has_contrast(self):
        image = synthetic_image(32, 32, seed=3)
        assert image.min() < 50
        assert image.max() > 200

    def test_validation(self):
        with pytest.raises(ValueError):
            synthetic_image(0, 4)
