"""Tests for graph generators and the Graph container."""

import pytest

from repro.apps.bfs import bfs_reference
from repro.apps.graphs import Graph, amazon_like, dblp_like, eswiki_like


class TestGraphContainer:
    def test_counts(self):
        g = Graph("t", [[1], [0, 2], [1]])
        assert g.n == 3
        assert g.m == 2
        assert g.avg_degree == pytest.approx(4 / 3)
        assert g.degree(1) == 2

    def test_adjacency_bitmap(self):
        g = Graph("t", [[1, 2], [0], [0]])
        bmp = g.adjacency_bitmap(0)
        assert bmp.tolist() == [0, 1, 1]

    def test_bad_edge_rejected(self):
        with pytest.raises(ValueError):
            Graph("t", [[5]])


class TestGenerators:
    @pytest.mark.parametrize("gen", [dblp_like, eswiki_like, amazon_like])
    def test_deterministic(self, gen):
        a = gen(n=512, seed=4)
        b = gen(n=512, seed=4)
        assert a.adjacency == b.adjacency

    @pytest.mark.parametrize("gen", [dblp_like, eswiki_like, amazon_like])
    def test_no_self_loops_or_duplicates(self, gen):
        g = gen(n=512, seed=1)
        for u, neighbors in enumerate(g.adjacency):
            assert u not in neighbors
            assert len(set(neighbors)) == len(neighbors)

    def test_dblp_is_dense_and_connected(self):
        g = dblp_like(n=1024)
        reachable = bfs_reference(g, 0)
        assert len(reachable) > 0.95 * g.n  # giant component
        assert g.avg_degree > 6

    def test_eswiki_is_loose(self):
        g = eswiki_like(n=2048)
        reachable = bfs_reference(g, 0)
        # a single BFS visits only the core's component
        assert len(reachable) < 0.5 * g.n

    def test_amazon_is_clustered(self):
        g = amazon_like(n=1024)
        # loose product clusters: a single BFS stays inside one cluster
        assert g.avg_degree < 8
        reachable = bfs_reference(g, 0)
        assert 10 < len(reachable) < 0.3 * g.n

    def test_structural_ordering(self):
        """The properties driving Fig. 12: dblp is one giant component
        (no restarts), eswiki and amazon are loose (BFS keeps restarting
        and scanning for unvisited vertices)."""
        from repro.apps.bfs import bitmap_bfs_trace

        dblp = bitmap_bfs_trace(dblp_like(n=2048), 0)
        eswiki = bitmap_bfs_trace(eswiki_like(n=2048), 0)
        amazon = bitmap_bfs_trace(amazon_like(n=2048), 0)
        assert dblp.restarts == 0
        assert eswiki.restarts > amazon.restarts > 3
        assert max(dblp.levels) > max(amazon.levels)
