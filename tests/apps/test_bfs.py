"""Tests for bitmap BFS in both trace and functional-PIM modes."""

import pytest

from repro.apps.bfs import bfs_reference, bitmap_bfs_pim, bitmap_bfs_trace
from repro.apps.graphs import Graph, dblp_like, eswiki_like
from repro.core.pinatubo import PinatuboSystem
from repro.memsim.geometry import MemoryGeometry
from repro.runtime.api import PimRuntime
from repro.workloads.trace import BitwiseEvent


SMALL_GEOM = MemoryGeometry(
    channels=1,
    ranks_per_channel=1,
    chips_per_rank=1,
    banks_per_chip=2,
    subarrays_per_bank=8,
    rows_per_subarray=128,
    mats_per_subarray=1,
    cols_per_mat=512,
    mux_ratio=8,
)


def line_graph(n):
    adjacency = [[] for _ in range(n)]
    for i in range(n - 1):
        adjacency[i].append(i + 1)
        adjacency[i + 1].append(i)
    return Graph("line", adjacency)


class TestTraceMode:
    def test_visits_everything_connected(self):
        g = dblp_like(n=1024)
        result = bitmap_bfs_trace(g, 0)
        assert result.visited_count == g.n  # restarts cover all components

    def test_levels_match_reference_on_line(self):
        g = line_graph(10)
        result = bitmap_bfs_trace(g, 0, restart=False)
        # every frontier (including the source) has exactly one vertex
        assert result.levels == [1] * 10
        assert result.visited_count == 10

    def test_no_restart_visits_one_component(self):
        g = eswiki_like(n=2048)
        no_restart = bitmap_bfs_trace(g, 0, restart=False)
        oracle = bfs_reference(g, 0)
        assert no_restart.visited_count == len(oracle)

    def test_restarts_counted_on_loose_graph(self):
        g = eswiki_like(n=2048)
        result = bitmap_bfs_trace(g, 0)
        assert result.restarts > 10
        assert result.visited_count == g.n

    def test_trace_has_multirow_or_events(self):
        g = dblp_like(n=1024)
        result = bitmap_bfs_trace(g, 0)
        fanins = [
            e.n_operands
            for e in result.trace.events
            if isinstance(e, BitwiseEvent) and e.op == "or"
        ]
        # exploding frontier -> adjacency-row OR with wide fan-in
        assert max(fanins) > 128

    def test_trace_has_cpu_work(self):
        g = eswiki_like(n=2048)
        result = bitmap_bfs_trace(g, 0)
        assert result.trace.cpu_ops > 0

    def test_source_validated(self):
        with pytest.raises(ValueError):
            bitmap_bfs_trace(line_graph(4), 9)


class TestFunctionalPimMode:
    @pytest.fixture
    def runtime(self):
        return PimRuntime(PinatuboSystem.pcm(geometry=SMALL_GEOM))

    def test_matches_reference(self, runtime):
        g = dblp_like(n=96, seed=5)
        result = bitmap_bfs_pim(runtime, g, source=0)
        oracle = bfs_reference(g, 0)
        assert result.visited_count == len(oracle)

    def test_line_graph_level_structure(self, runtime):
        g = line_graph(12)
        result = bitmap_bfs_pim(runtime, g, 0)
        assert result.levels == [1] * 12
        assert result.visited_count == 12

    def test_matches_trace_mode_levels(self, runtime):
        g = dblp_like(n=96, seed=5)
        functional = bitmap_bfs_pim(runtime, g, 0)
        traced = bitmap_bfs_trace(g, 0, restart=False)
        assert functional.levels == traced.levels

    def test_too_large_graph_rejected(self, runtime):
        g = line_graph(SMALL_GEOM.row_bits + 1)
        with pytest.raises(ValueError, match="row frame"):
            bitmap_bfs_pim(runtime, g, 0)

    def test_uses_real_pim_ops(self, runtime):
        g = line_graph(8)
        result = bitmap_bfs_pim(runtime, g, 0, bitmap_threshold=1)
        assert result.bitmap_levels == result.n_levels
        assert runtime.driver.stats.instructions > 0
        assert runtime.pim_accounting.latency > 0

    def test_narrow_frontiers_stay_scalar(self, runtime):
        g = line_graph(8)
        result = bitmap_bfs_pim(runtime, g, 0, bitmap_threshold=2)
        assert result.bitmap_levels == 0
        assert result.visited_count == 8
