"""Tests for predicate-result caching in the PIM-resident FastBit."""

import pytest

from repro.apps.fastbit import FastBitDB, RangeQuery
from repro.apps.fastbit_pim import PimFastBit
from repro.apps.star import ColumnSpec, synthetic_star_table
from repro.core.pinatubo import PinatuboSystem
from repro.memsim.geometry import MemoryGeometry
from repro.runtime.api import PimRuntime


COLUMNS = (
    ColumnSpec("energy", 16, "exponential"),
    ColumnSpec("charge", 8, "normal"),
)

GEOM = MemoryGeometry(
    channels=1,
    ranks_per_channel=1,
    chips_per_rank=1,
    banks_per_chip=2,
    subarrays_per_bank=8,
    rows_per_subarray=64,
    mats_per_subarray=1,
    cols_per_mat=2048,
    mux_ratio=8,
)


@pytest.fixture(scope="module")
def table():
    return synthetic_star_table(1024, columns=COLUMNS, seed=7)


@pytest.fixture
def db(table):
    runtime = PimRuntime(PinatuboSystem.pcm(geometry=GEOM))
    return PimFastBit(runtime, table, cache_predicates=True)


class TestPredicateCache:
    def test_repeated_predicate_hits_cache(self, db):
        q = RangeQuery((("energy", 0, 7), ("charge", 0, 3)))
        db.query(q)
        assert db.cache_hits == 0
        db.query(q)
        assert db.cache_hits == 2  # both predicates reused

    def test_cached_answers_stay_correct(self, db, table):
        oracle = FastBitDB(table, functional=False)
        q1 = RangeQuery((("energy", 0, 7), ("charge", 0, 3)))
        q2 = RangeQuery((("energy", 0, 7), ("charge", 4, 7)))  # shares one
        for q in (q1, q2, q1, q2):
            assert db.query(q).hits == oracle.query_oracle(q)
        assert db.cache_hits >= 3

    def test_cache_saves_in_memory_steps(self, db):
        q = RangeQuery((("energy", 0, 15),))
        first = db.query(q)
        second = db.query(q)
        assert first.in_memory_steps >= 1
        assert second.in_memory_steps == 0  # pure cache read

    def test_cache_saves_latency(self, db):
        q = RangeQuery((("energy", 0, 15), ("charge", 0, 7)))
        first = db.query(q)
        second = db.query(q)
        assert second.latency < first.latency

    def test_release_scratch_frees_memory(self, db):
        q = RangeQuery((("energy", 0, 7), ("charge", 0, 3)))
        db.query(q)
        live_before = db.runtime.allocator.live_handles
        db.release_scratch()
        assert db.runtime.allocator.live_handles < live_before
        # after the release, queries recompute (cache cleared) but stay right
        result = db.query(q)
        assert result.in_memory_steps > 0

    def test_disabled_by_default(self, table):
        runtime = PimRuntime(PinatuboSystem.pcm(geometry=GEOM))
        db = PimFastBit(runtime, table)
        q = RangeQuery((("energy", 0, 7),))
        db.query(q)
        db.query(q)
        assert db.cache_hits == 0
