"""AnalyticsTable: SQL-ish filter+aggregate queries, oracle-verified."""

import numpy as np
import pytest

from repro.apps.analytics import AnalyticsTable, analytics_oracle
from repro.runtime.api import PimRuntime

N = 400


def loaded_table(plan=True, seed=9):
    rt = PimRuntime.pcm(plan=plan)
    rng = np.random.default_rng(seed)
    table = AnalyticsTable(rt, N)
    data = {
        "age": rng.integers(0, 64, N).astype(np.int64),
        "income": rng.integers(0, 128, N).astype(np.int64),
        "region": rng.integers(0, 6, N).astype(np.int64),
    }
    table.load_column("age", data["age"], 6)
    table.load_column("income", data["income"], 7)
    table.load_index("region", data["region"], 6)
    return table, data


class TestQueries:
    @pytest.mark.parametrize("plan", [False, True])
    def test_count(self, plan):
        table, data = loaded_table(plan)
        result = table.filter(("cmp", "age", "lt", 30)).count()
        assert result.popcount == int((data["age"] < 30).sum())
        assert result.value == float(result.popcount)
        assert result.groups is None

    def test_conjunction_sum(self):
        table, data = loaded_table()
        result = table.filter(
            ("cmp", "age", "ge", 18), ("range", "region", 1, 3)
        ).sum("income")
        want = (data["age"] >= 18) & (data["region"] >= 1) & (data["region"] <= 3)
        assert result.popcount == int(want.sum())
        assert result.value == float(data["income"][want].sum())

    def test_histogram(self):
        table, data = loaded_table()
        result = table.filter(("cmp", "income", "gt", 60)).histogram("region")
        want = data["income"] > 60
        np.testing.assert_array_equal(
            result.groups, np.bincount(data["region"][want], minlength=6)
        )
        assert result.value == float(sum(result.groups))

    def test_unfiltered_aggregates(self):
        table, data = loaded_table()
        assert table.filter().count().popcount == N
        assert table.filter().sum("age").value == float(data["age"].sum())

    def test_every_query_is_priced(self):
        table, _ = loaded_table()
        result = table.filter(("cmp", "age", "le", 9)).count()
        assert result.latency_s > 0
        assert result.energy_j > 0

    def test_verify_replays_all(self):
        table, _ = loaded_table()
        table.filter(("cmp", "age", "lt", 30)).count()
        table.filter(("range", "region", 0, 2)).sum("income")
        table.filter().histogram("region")
        assert table.verify() == 3

    def test_aggregate_spec_form(self):
        table, data = loaded_table()
        result = table.filter(("cmp", "age", "lt", 30)).aggregate(
            ("sum", "income")
        )
        want = data["age"] < 30
        assert result.value == float(data["income"][want].sum())


class TestValidation:
    def test_unknown_column(self):
        table, _ = loaded_table()
        with pytest.raises(KeyError, match="no bit-sliced column"):
            table.filter(("cmp", "nope", "lt", 3))
        with pytest.raises(KeyError, match="no bitmap index"):
            table.filter(("range", "age", 0, 1))

    def test_bad_predicate(self):
        table, _ = loaded_table()
        with pytest.raises(ValueError, match="unknown comparison"):
            table.filter(("cmp", "age", "between", 3))
        with pytest.raises(ValueError, match="outside"):
            table.filter(("range", "region", 0, 99))
        with pytest.raises(ValueError, match="unknown predicate"):
            table.filter(("join", "age"))

    def test_duplicate_load_rejected(self):
        table, _ = loaded_table()
        with pytest.raises(ValueError, match="already loaded"):
            table.load_column("age", np.zeros(N, dtype=np.int64), 4)

    def test_shape_mismatch_rejected(self):
        table, _ = loaded_table()
        with pytest.raises(ValueError, match="rows"):
            table.load_column("extra", np.zeros(N - 1, dtype=np.int64), 4)


class TestOracle:
    def test_oracle_matches_plain_numpy(self):
        rng = np.random.default_rng(3)
        cols = {
            "x": rng.integers(0, 32, 100).astype(np.int64),
            "g": rng.integers(0, 4, 100).astype(np.int64),
        }
        mask, value, groups = analytics_oracle(
            cols, [("cmp", "x", "ge", 10)], ("hist", "g")
        )
        want = cols["x"] >= 10
        np.testing.assert_array_equal(mask.astype(bool), want)
        np.testing.assert_array_equal(
            groups, np.bincount(cols["g"][want], minlength=4)
        )
        assert value == float(want.sum())


class TestLifecycle:
    def test_free_releases_everything(self):
        table, _ = loaded_table()
        table.filter(("cmp", "age", "lt", 30)).count()
        table.free()
        # a fresh table in the same runtime can re-allocate cleanly
        table2 = AnalyticsTable(table.runtime, N, group="analytics2")
        table2.load_column("age", np.zeros(N, dtype=np.int64), 4)
        assert table2.filter().count().popcount == N

    def test_repeat_query_deterministic(self):
        table, _ = loaded_table()
        spec = (("cmp", "age", "lt", 30), ("range", "region", 1, 4))
        r1 = table.filter(*spec).sum("income")
        r2 = table.filter(*spec).sum("income")
        assert (r1.value, r1.popcount, r1.groups) == (
            r2.value,
            r2.popcount,
            r2.groups,
        )
