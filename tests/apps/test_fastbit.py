"""Tests for the FastBit-style bitmap database and STAR table."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.fastbit import BitmapIndex, FastBitDB, RangeQuery
from repro.apps.star import ColumnSpec, STAR_COLUMNS, synthetic_star_table
from repro.workloads.trace import BitwiseEvent, OpTrace


@pytest.fixture(scope="module")
def table():
    return synthetic_star_table(n_events=4096, seed=1)


@pytest.fixture(scope="module")
def db(table):
    return FastBitDB(table)


class TestStarTable:
    def test_shape(self, table):
        assert table.n_events == 4096
        assert len(table.columns) == len(STAR_COLUMNS)

    def test_bins_in_range(self, table):
        for spec in table.columns:
            bins = table.bin_indices(spec.name)
            assert bins.min() >= 0
            assert bins.max() < spec.n_bins

    def test_deterministic(self):
        a = synthetic_star_table(256, seed=3)
        b = synthetic_star_table(256, seed=3)
        for spec in a.columns:
            np.testing.assert_array_equal(
                a.bin_indices(spec.name), b.bin_indices(spec.name)
            )

    def test_exponential_columns_are_skewed(self, table):
        bins = table.bin_indices("energy")
        # steeply falling: the lowest quarter of bins holds most events
        low = np.count_nonzero(bins < 32)
        assert low > 0.6 * table.n_events

    def test_column_lookup(self, table):
        assert table.column("pt").n_bins == 64
        with pytest.raises(KeyError):
            table.column("nope")

    def test_validation(self):
        with pytest.raises(ValueError):
            synthetic_star_table(0)
        with pytest.raises(ValueError):
            ColumnSpec("x", 1)
        with pytest.raises(ValueError):
            ColumnSpec("x", 8, "zipf")


class TestBitmapIndex:
    def test_one_bit_per_event(self):
        idx = BitmapIndex(np.array([0, 1, 1, 2]), n_bins=3)
        total = sum(idx.bitmap(b).sum() for b in range(3))
        assert total == 4

    def test_bitmap_contents(self):
        idx = BitmapIndex(np.array([0, 1, 1, 2]), n_bins=3)
        np.testing.assert_array_equal(idx.bitmap(1), [0, 1, 1, 0])

    def test_range_or(self):
        idx = BitmapIndex(np.array([0, 1, 2, 3]), n_bins=4)
        np.testing.assert_array_equal(idx.range_or(1, 2), [0, 1, 1, 0])

    def test_bounds(self):
        idx = BitmapIndex(np.array([0]), n_bins=2)
        with pytest.raises(IndexError):
            idx.bitmap(2)
        with pytest.raises(IndexError):
            idx.range_or(1, 5)
        with pytest.raises(ValueError):
            BitmapIndex(np.array([5]), n_bins=3)


class TestQueries:
    def test_bitmap_matches_oracle(self, db):
        query = RangeQuery((("energy", 0, 20), ("pt", 5, 40)))
        assert db.query_bitmap(query) == db.query_oracle(query)

    def test_single_predicate(self, db):
        query = RangeQuery((("trigger_id", 2, 5),))
        assert db.query_bitmap(query) == db.query_oracle(query)

    def test_full_range_counts_everything(self, db, table):
        query = RangeQuery((("eta", 0, table.column("eta").n_bins - 1),))
        assert db.query_bitmap(query) == table.n_events

    def test_trace_records_or_and(self, db):
        trace = OpTrace()
        query = RangeQuery((("energy", 0, 20), ("pt", 5, 40)))
        db.query_bitmap(query, trace)
        hist = trace.op_histogram()
        assert hist["or"] == 2
        assert hist["and"] == 1
        assert trace.cpu_ops > 0

    def test_wide_range_is_multirow_or(self, db, table):
        trace = OpTrace()
        db.query_bitmap(RangeQuery((("energy", 0, 99),)), trace)
        ors = [e for e in trace.events if isinstance(e, BitwiseEvent) and e.op == "or"]
        assert ors[0].n_operands == 100

    def test_trace_only_mode_matches_functional_trace(self, table):
        functional = FastBitDB(table)
        traced = FastBitDB(table, functional=False)
        query = RangeQuery((("energy", 3, 30), ("eta", 1, 9)))
        t1, t2 = OpTrace(), OpTrace()
        functional.query_bitmap(query, t1)
        traced.query_trace_only(query, t2)
        assert t1.op_histogram() == t2.op_histogram()

    def test_trace_only_cannot_answer(self, table):
        db = FastBitDB(table, functional=False)
        with pytest.raises(RuntimeError):
            db.query_bitmap(RangeQuery((("energy", 0, 2),)))

    def test_query_validation(self):
        with pytest.raises(ValueError):
            RangeQuery(())
        with pytest.raises(ValueError):
            RangeQuery((("energy", 5, 2),))

    @given(
        lo=st.integers(0, 100),
        width=st.integers(0, 27),
        lo2=st.integers(0, 50),
        width2=st.integers(0, 13),
    )
    @settings(max_examples=30, deadline=None)
    def test_random_queries_match_oracle(self, lo, width, lo2, width2):
        table = synthetic_star_table(n_events=512, seed=9)
        db = FastBitDB(table)
        query = RangeQuery(
            (("energy", lo, lo + width), ("pt", lo2, lo2 + width2))
        )
        assert db.query_bitmap(query) == db.query_oracle(query)


class TestWorkload:
    def test_workload_sizes(self, db):
        trace = db.run_workload(50)
        assert trace.n_bitwise_ops >= 50  # >= one OR per query

    def test_workload_deterministic(self, db):
        a = db.run_workload(20, seed=3)
        b = db.run_workload(20, seed=3)
        assert a.op_histogram() == b.op_histogram()

    def test_more_queries_more_work(self, db):
        small = db.run_workload(20)
        big = db.run_workload(60)
        assert big.n_bitwise_ops > small.n_bitwise_ops
        assert big.cpu_ops > small.cpu_ops

    def test_bad_count(self, db):
        with pytest.raises(ValueError):
            db.random_queries(0)
