"""Tests for the Vector microbenchmark and the PimBitVector sugar."""

import numpy as np
import pytest

from repro.apps.bitvector import PimBitVector
from repro.apps.vectorbench import vector_run_pim, vector_trace
from repro.core.pinatubo import PinatuboSystem
from repro.memsim.geometry import MemoryGeometry
from repro.runtime.api import PimRuntime
from repro.workloads.spec import PAPER_VECTOR_SPECS, VectorSpec
from repro.workloads.trace import BitwiseEvent


SMALL_GEOM = MemoryGeometry(
    channels=1,
    ranks_per_channel=1,
    chips_per_rank=1,
    banks_per_chip=2,
    subarrays_per_bank=8,
    rows_per_subarray=64,
    mats_per_subarray=1,
    cols_per_mat=512,
    mux_ratio=8,
)


@pytest.fixture
def runtime():
    return PimRuntime(PinatuboSystem.pcm(geometry=SMALL_GEOM))


class TestVectorSpec:
    def test_parse_paper_specs(self):
        for text in PAPER_VECTOR_SPECS:
            spec = VectorSpec.parse(text)
            assert spec.label == text

    def test_fields(self):
        spec = VectorSpec.parse("19-16-7s")
        assert spec.vector_bits == 1 << 19
        assert spec.n_vectors == 1 << 16
        assert spec.operands_per_op == 128
        assert spec.n_ops == (1 << 16) // 128

    def test_random_suffix(self):
        from repro.baselines.base import AccessPattern

        assert VectorSpec.parse("14-16-7r").access is AccessPattern.RANDOM

    def test_bad_specs(self):
        for bad in ("19-16", "19-16-7x", "a-b-cs", ""):
            with pytest.raises(ValueError):
                VectorSpec.parse(bad)


class TestVectorTrace:
    def test_event_shape(self):
        trace = vector_trace("19-16-7s")
        events = [e for e in trace.events if isinstance(e, BitwiseEvent)]
        assert len(events) == 1
        e = events[0]
        assert e.op == "or"
        assert e.n_operands == 128
        assert e.vector_bits == 1 << 19
        assert e.count == (1 << 16) // 128

    def test_operand_bits_total(self):
        trace = vector_trace("19-16-1s")
        # every vector consumed once
        assert trace.bitwise_operand_bits == (1 << 16) * (1 << 19)


class TestVectorFunctional:
    def test_small_instance_correct(self, runtime):
        spec = VectorSpec(log_length=8, log_vectors=4, log_rows=2,
                          access=VectorSpec.parse("19-16-1s").access)
        results, oracles = vector_run_pim(runtime, spec, seed=3)
        assert len(results) == spec.n_ops
        for got, want in zip(results, oracles):
            np.testing.assert_array_equal(got, want)


class TestPimBitVector:
    def test_operators_match_numpy(self, runtime):
        rng = np.random.default_rng(0)
        da = rng.integers(0, 2, 256).astype(np.uint8)
        db_ = rng.integers(0, 2, 256).astype(np.uint8)
        a = PimBitVector.from_bits(runtime, da)
        b = PimBitVector.from_bits(runtime, db_)
        np.testing.assert_array_equal((a | b).to_numpy(), da | db_)
        np.testing.assert_array_equal((a & b).to_numpy(), da & db_)
        np.testing.assert_array_equal((a ^ b).to_numpy(), da ^ db_)
        np.testing.assert_array_equal((~a).to_numpy(), 1 - da)

    def test_any_of_multirow(self, runtime):
        rng = np.random.default_rng(1)
        data = [rng.integers(0, 2, 128).astype(np.uint8) for _ in range(8)]
        vecs = [PimBitVector.from_bits(runtime, d, group="g") for d in data]
        out = PimBitVector.any_of(vecs)
        np.testing.assert_array_equal(out.to_numpy(), np.bitwise_or.reduce(data))

    def test_popcount(self, runtime):
        bits = np.zeros(100, np.uint8)
        bits[[1, 5, 7]] = 1
        v = PimBitVector.from_bits(runtime, bits)
        assert v.popcount() == 3

    def test_length_mismatch_rejected(self, runtime):
        a = PimBitVector.zeros(runtime, 64)
        b = PimBitVector.zeros(runtime, 128)
        with pytest.raises(ValueError):
            _ = a | b

    def test_any_of_needs_two(self, runtime):
        a = PimBitVector.zeros(runtime, 64)
        with pytest.raises(ValueError):
            PimBitVector.any_of([a])

    def test_free(self, runtime):
        v = PimBitVector.zeros(runtime, 64)
        live = runtime.allocator.live_handles
        v.free()
        assert runtime.allocator.live_handles == live - 1

    def test_len_and_repr(self, runtime):
        v = PimBitVector.zeros(runtime, 64)
        assert len(v) == 64
        assert "PimBitVector" in repr(v)
