"""Cross-validation of the graph layer against networkx.

networkx is the one external graph oracle available offline; these tests
pin the synthetic generators' structure and the bitmap BFS's semantics
to an independent implementation.
"""

import networkx as nx
import pytest

from repro.apps.bfs import bfs_reference, bitmap_bfs_pim, bitmap_bfs_trace
from repro.apps.graphs import amazon_like, dblp_like, eswiki_like
from repro.core.pinatubo import PinatuboSystem
from repro.memsim.geometry import MemoryGeometry
from repro.runtime.api import PimRuntime


def to_networkx(graph):
    g = nx.Graph()
    g.add_nodes_from(range(graph.n))
    for u, neighbors in enumerate(graph.adjacency):
        for v in neighbors:
            g.add_edge(u, v)
    return g


@pytest.mark.parametrize("gen", [dblp_like, eswiki_like, amazon_like])
class TestAgainstNetworkx:
    def test_edge_counts_match(self, gen):
        graph = gen(n=1024)
        assert to_networkx(graph).number_of_edges() == graph.m

    def test_reachable_set_matches_bfs(self, gen):
        graph = gen(n=1024)
        nxg = to_networkx(graph)
        ours = bfs_reference(graph, 0)
        theirs = set(nx.node_connected_component(nxg, 0))
        assert ours == theirs

    def test_level_structure_matches_shortest_paths(self, gen):
        graph = gen(n=512)
        nxg = to_networkx(graph)
        result = bitmap_bfs_trace(graph, 0, restart=False)
        lengths = nx.single_source_shortest_path_length(nxg, 0)
        level_sizes = {}
        for depth in lengths.values():
            level_sizes[depth] = level_sizes.get(depth, 0) + 1
        expected = [level_sizes[d] for d in sorted(level_sizes)]
        assert result.levels == expected

    def test_restart_mode_counts_components(self, gen):
        graph = gen(n=1024)
        nxg = to_networkx(graph)
        result = bitmap_bfs_trace(graph, 0, restart=True)
        assert result.restarts + 1 == nx.number_connected_components(nxg)


class TestFunctionalPimAgainstNetworkx:
    def test_pim_bfs_visits_the_component(self):
        geom = MemoryGeometry(
            channels=1,
            ranks_per_channel=1,
            chips_per_rank=1,
            banks_per_chip=2,
            subarrays_per_bank=8,
            rows_per_subarray=128,
            mats_per_subarray=1,
            cols_per_mat=512,
            mux_ratio=8,
        )
        graph = dblp_like(n=128, seed=3)
        nxg = to_networkx(graph)
        rt = PimRuntime(PinatuboSystem.pcm(geometry=geom))
        result = bitmap_bfs_pim(rt, graph, source=0)
        assert result.visited_count == len(
            nx.node_connected_component(nxg, 0)
        )
