"""Tests for endurance/wear monitoring."""

import numpy as np
import pytest

from repro.core.pinatubo import PinatuboSystem
from repro.memsim.geometry import MemoryGeometry
from repro.memsim.mainmem import MainMemory
from repro.nvm.technology import get_technology
from repro.runtime.api import PimRuntime
from repro.runtime.wear import WearMonitor


GEOM = MemoryGeometry(
    channels=1,
    ranks_per_channel=1,
    chips_per_rank=1,
    banks_per_chip=1,
    subarrays_per_bank=2,
    rows_per_subarray=32,
    mats_per_subarray=1,
    cols_per_mat=512,
    mux_ratio=8,
)


@pytest.fixture
def memory():
    return MainMemory(GEOM)


@pytest.fixture
def monitor(memory):
    return WearMonitor(memory, get_technology("pcm"))


def _write(memory, frame, times=1, seed=0):
    rng = np.random.default_rng(seed)
    for _ in range(times):
        memory.write_frame(
            frame, rng.integers(0, 256, GEOM.row_bytes).astype(np.uint8)
        )


class TestReport:
    def test_empty_memory(self, monitor):
        report = monitor.report()
        assert report.frames_written == 0
        assert report.imbalance == 0.0

    def test_counts(self, memory, monitor):
        _write(memory, 0, times=5)
        _write(memory, 1, times=1)
        report = monitor.report()
        assert report.frames_written == 2
        assert report.total_writes == 6
        assert report.max_writes == 5
        assert report.mean_writes == pytest.approx(3.0)
        assert report.hottest[0] == (0, 5)

    def test_imbalance(self, memory, monitor):
        _write(memory, 0, times=9)
        _write(memory, 1, times=1)
        assert monitor.report().imbalance == pytest.approx(9 / 5)

    def test_hot_list_capped(self, memory):
        for f in range(12):
            _write(memory, f)
        monitor = WearMonitor(memory, hot_list_size=4)
        assert len(monitor.report().hottest) == 4

    def test_validation(self, memory):
        with pytest.raises(ValueError):
            WearMonitor(memory, hot_list_size=0)


class TestEnduranceBudget:
    def test_remaining_endurance(self, memory, monitor):
        _write(memory, 0, times=3)
        expected = 1.0 - 3 / get_technology("pcm").endurance
        assert monitor.remaining_endurance(0) == pytest.approx(expected)
        assert monitor.remaining_endurance(1) == 1.0

    def test_lifetime_estimate(self, memory, monitor):
        _write(memory, 0, times=100)
        years = monitor.lifetime_years(elapsed_seconds=1.0)
        # 100 writes/s against ~1e8 endurance -> ~11.6 days; well under 1y
        assert 0 < years < 0.1

    def test_lifetime_infinite_when_idle(self, monitor):
        assert monitor.lifetime_years(10.0) == float("inf")

    def test_lifetime_validation(self, monitor):
        with pytest.raises(ValueError):
            monitor.lifetime_years(0.0)

    def test_over_budget(self, memory):
        scaled = get_technology("pcm").scaled(endurance=10.0)
        monitor = WearMonitor(memory, scaled)
        _write(memory, 3, times=15)
        _write(memory, 4, times=5)
        assert monitor.over_budget_frames() == [3]
        assert monitor.over_budget_frames(budget_fraction=0.3) == [3, 4]
        with pytest.raises(ValueError):
            monitor.over_budget_frames(0.0)


class TestTelemetryPublish:
    def test_publish_pushes_counters_and_gauges(self, memory, monitor):
        from repro import telemetry

        telemetry.reset()
        _write(memory, 0, times=4)
        _write(memory, 1, times=2)
        report = monitor.publish()
        assert report.total_writes == 6
        agg = telemetry.aggregate()
        assert agg["counters"]["runtime.wear.total_writes"] == 6
        assert agg["counters"]["runtime.wear.frames_written"] == 2
        assert agg["gauges"]["runtime.wear.max_writes"] == 4.0
        assert agg["gauges"]["runtime.wear.imbalance"] == pytest.approx(4 / 3)
        telemetry.reset()

    def test_repeated_publish_adds_only_deltas(self, memory, monitor):
        from repro import telemetry

        telemetry.reset()
        _write(memory, 0, times=3)
        monitor.publish()
        monitor.publish()  # nothing new: counters must not double
        agg = telemetry.aggregate()
        assert agg["counters"]["runtime.wear.total_writes"] == 3
        _write(memory, 1, times=2)
        monitor.publish()
        agg = telemetry.aggregate()
        assert agg["counters"]["runtime.wear.total_writes"] == 5
        assert agg["counters"]["runtime.wear.frames_written"] == 2
        telemetry.reset()

    def test_mainmem_live_counter_tracks_every_write(self, memory):
        from repro import telemetry

        telemetry.reset()
        _write(memory, 0, times=3)
        _write(memory, 5, times=1)
        agg = telemetry.aggregate()
        assert agg["counters"]["memsim.mainmem.frame_writes"] == 4
        telemetry.reset()


class TestPimWorkloadWear:
    def test_accumulator_rows_run_hot(self):
        """A PIM accumulation loop concentrates wear on the destination --
        the pattern the monitor exists to expose."""
        rt = PimRuntime(PinatuboSystem.pcm(geometry=GEOM))
        rng = np.random.default_rng(1)
        acc = rt.pim_malloc(GEOM.row_bits, "g")
        rt.pim_write(acc, rng.integers(0, 2, GEOM.row_bits).astype(np.uint8))
        for i in range(10):
            v = rt.pim_malloc(GEOM.row_bits, "g")
            rt.pim_write(v, rng.integers(0, 2, GEOM.row_bits).astype(np.uint8))
            rt.pim_op("xor", acc, [acc, v])
        monitor = WearMonitor(rt.system.memory)
        report = monitor.report()
        assert report.hottest[0][0] == acc.frames[0]
        assert report.imbalance > 3
