"""Tests for the PIM-aware OS memory manager."""

import pytest

from repro.memsim.address import classify_locality, OpLocality
from repro.memsim.geometry import MemoryGeometry
from repro.runtime.os_mm import PimMemoryManager, PlacementPolicy


SMALL = MemoryGeometry(
    channels=2,
    ranks_per_channel=1,
    chips_per_rank=1,
    banks_per_chip=2,
    subarrays_per_bank=4,
    rows_per_subarray=16,
    mats_per_subarray=1,
    cols_per_mat=512,
    mux_ratio=8,
)


@pytest.fixture
def mm():
    return PimMemoryManager(SMALL)


class TestPimAwarePlacement:
    def test_same_group_lands_in_one_subarray(self, mm):
        frames = mm.allocate_rows(3, "g") + mm.allocate_rows(2, "g")
        addrs = [mm.frame_address(f) for f in frames]
        assert classify_locality(addrs) == OpLocality.INTRA_SUBARRAY

    def test_different_groups_different_subarrays(self, mm):
        a = mm.allocate_rows(1, "a")[0]
        b = mm.allocate_rows(1, "b")[0]
        assert not mm.frame_address(a).same_subarray(mm.frame_address(b))

    def test_group_spills_when_subarray_full(self, mm):
        frames = mm.allocate_rows(SMALL.rows_per_subarray + 1, "g")
        addrs = [mm.frame_address(f) for f in frames]
        first = addrs[0]
        assert all(a.same_subarray(first) for a in addrs[:-1])
        assert not addrs[-1].same_subarray(first)

    def test_all_frames_distinct(self, mm):
        frames = mm.allocate_rows(100, "g")
        assert len(set(frames)) == 100

    def test_full_memory_allocatable(self, mm):
        total = SMALL.total_rows
        frames = mm.allocate_rows(total)
        assert len(set(frames)) == total
        assert mm.total_free_rows == 0

    def test_out_of_memory(self, mm):
        mm.allocate_rows(SMALL.total_rows)
        with pytest.raises(MemoryError):
            mm.allocate_rows(1)

    def test_bad_count(self, mm):
        with pytest.raises(ValueError):
            mm.allocate_rows(0)


class TestInterleavedPlacement:
    def test_scatters_across_subarrays(self):
        mm = PimMemoryManager(SMALL, PlacementPolicy.INTERLEAVED)
        frames = mm.allocate_rows(4)
        addrs = [mm.frame_address(f) for f in frames]
        assert classify_locality(addrs) != OpLocality.INTRA_SUBARRAY

    def test_still_allocates_everything(self):
        mm = PimMemoryManager(SMALL, PlacementPolicy.INTERLEAVED)
        frames = mm.allocate_rows(SMALL.total_rows)
        assert len(set(frames)) == SMALL.total_rows


class TestFree:
    def test_free_returns_rows(self, mm):
        frames = mm.allocate_rows(10, "g")
        before = mm.total_free_rows
        mm.free_rows(frames)
        assert mm.total_free_rows == before + 10
        assert mm.frames_allocated == 0

    def test_freed_rows_reusable(self, mm):
        frames = mm.allocate_rows(SMALL.total_rows)
        mm.free_rows(frames[:5])
        again = mm.allocate_rows(5, "new")
        assert len(again) == 5

    def test_double_free_detected(self, mm):
        frames = mm.allocate_rows(2, "g")
        mm.free_rows(frames)
        with pytest.raises(ValueError, match="double free"):
            mm.free_rows(frames)
