"""Tests for the PIM-aware OS memory manager."""

import pytest

from repro.memsim.address import classify_locality, OpLocality
from repro.memsim.geometry import MemoryGeometry
from repro.runtime.os_mm import PimMemoryManager, PlacementPolicy


SMALL = MemoryGeometry(
    channels=2,
    ranks_per_channel=1,
    chips_per_rank=1,
    banks_per_chip=2,
    subarrays_per_bank=4,
    rows_per_subarray=16,
    mats_per_subarray=1,
    cols_per_mat=512,
    mux_ratio=8,
)


@pytest.fixture
def mm():
    return PimMemoryManager(SMALL)


class TestPimAwarePlacement:
    def test_same_group_lands_in_one_subarray(self, mm):
        frames = mm.allocate_rows(3, "g") + mm.allocate_rows(2, "g")
        addrs = [mm.frame_address(f) for f in frames]
        assert classify_locality(addrs) == OpLocality.INTRA_SUBARRAY

    def test_different_groups_different_subarrays(self, mm):
        a = mm.allocate_rows(1, "a")[0]
        b = mm.allocate_rows(1, "b")[0]
        assert not mm.frame_address(a).same_subarray(mm.frame_address(b))

    def test_group_spills_when_subarray_full(self, mm):
        frames = mm.allocate_rows(SMALL.rows_per_subarray + 1, "g")
        addrs = [mm.frame_address(f) for f in frames]
        first = addrs[0]
        assert all(a.same_subarray(first) for a in addrs[:-1])
        assert not addrs[-1].same_subarray(first)

    def test_all_frames_distinct(self, mm):
        frames = mm.allocate_rows(100, "g")
        assert len(set(frames)) == 100

    def test_full_memory_allocatable(self, mm):
        total = SMALL.total_rows
        frames = mm.allocate_rows(total)
        assert len(set(frames)) == total
        assert mm.total_free_rows == 0

    def test_out_of_memory(self, mm):
        mm.allocate_rows(SMALL.total_rows)
        with pytest.raises(MemoryError):
            mm.allocate_rows(1)

    def test_bad_count(self, mm):
        with pytest.raises(ValueError):
            mm.allocate_rows(0)


class TestInterleavedPlacement:
    def test_scatters_across_subarrays(self):
        mm = PimMemoryManager(SMALL, PlacementPolicy.INTERLEAVED)
        frames = mm.allocate_rows(4)
        addrs = [mm.frame_address(f) for f in frames]
        assert classify_locality(addrs) != OpLocality.INTRA_SUBARRAY

    def test_still_allocates_everything(self):
        mm = PimMemoryManager(SMALL, PlacementPolicy.INTERLEAVED)
        frames = mm.allocate_rows(SMALL.total_rows)
        assert len(set(frames)) == SMALL.total_rows


#: two ranks per channel so every spill level (subarray -> bank -> rank
#: -> channel) is exercisable
TALL = MemoryGeometry(
    channels=2,
    ranks_per_channel=2,
    chips_per_rank=1,
    banks_per_chip=2,
    subarrays_per_bank=2,
    rows_per_subarray=4,
    mats_per_subarray=1,
    cols_per_mat=512,
    mux_ratio=8,
)


class TestSpillOrder:
    """A group overflows subarray -> bank -> rank -> channel, in order."""

    def _fill_group(self, mm, geometry, n_subarrays):
        """One address per claimed subarray, by filling each completely."""
        addrs = []
        for _ in range(n_subarrays):
            frames = mm.allocate_rows(geometry.rows_per_subarray, "g")
            addrs.append(mm.frame_address(frames[0]))
        return addrs

    def test_subarray_then_bank_then_rank_then_channel(self):
        mm = PimMemoryManager(TALL)
        g = TALL
        per_bank = g.subarrays_per_bank
        per_rank = per_bank * g.banks_per_rank
        per_channel = per_rank * g.ranks_per_channel
        addrs = self._fill_group(mm, g, per_channel + 1)

        first = addrs[0]
        # consecutive subarrays stay in the first bank until it is full
        assert all(
            a.same_bank(first) for a in addrs[:per_bank]
        )
        assert not addrs[per_bank].same_bank(first)
        # ... then stay in the first rank until the rank is full
        assert all(
            (a.channel, a.rank) == (first.channel, first.rank)
            for a in addrs[:per_rank]
        )
        assert addrs[per_rank].rank != first.rank
        # ... then stay on the first channel until the channel is full
        assert all(a.channel == first.channel for a in addrs[:per_channel])
        assert addrs[per_channel].channel != first.channel

    def test_spill_never_revisits_a_full_subarray(self):
        mm = PimMemoryManager(TALL)
        total_subarrays = (
            TALL.channels
            * TALL.ranks_per_channel
            * TALL.banks_per_rank
            * TALL.subarrays_per_bank
        )
        addrs = self._fill_group(mm, TALL, total_subarrays)
        seen = {(a.channel, a.rank, a.bank, a.subarray) for a in addrs}
        assert len(seen) == total_subarrays

    def test_partial_subarray_fills_before_spilling(self):
        mm = PimMemoryManager(SMALL)
        mm.allocate_rows(SMALL.rows_per_subarray - 1, "g")
        last = mm.allocate_rows(2, "g")
        addrs = [mm.frame_address(f) for f in last]
        # first row tops off the current subarray, second spills
        assert not addrs[0].same_subarray(addrs[1])


class TestChannelStripedPlacement:
    def test_chunk_to_channel_mapping(self):
        mm = PimMemoryManager(SMALL, PlacementPolicy.CHANNEL_STRIPED)
        frames = mm.allocate_rows(6, "g")
        addrs = [mm.frame_address(f) for f in frames]
        for i, addr in enumerate(addrs):
            assert addr.channel == i % SMALL.channels

    def test_group_vectors_share_stripe_subarrays(self):
        mm = PimMemoryManager(SMALL, PlacementPolicy.CHANNEL_STRIPED)
        v1 = [mm.frame_address(f) for f in mm.allocate_rows(4, "g")]
        v2 = [mm.frame_address(f) for f in mm.allocate_rows(4, "g")]
        # chunk c of every vector in the group lands intra-subarray,
        # which is what keeps chunk-c ops subarray-local
        for a, b in zip(v1, v2):
            assert a.same_subarray(b)

    def test_stripe_claims_are_first_fit_per_channel(self):
        # unlike PIM_AWARE's round-robin cursor, stripes claim the first
        # subarray with free rows on the chunk's channel, so different
        # groups may share one (ops are still subarray-local per chunk)
        mm = PimMemoryManager(SMALL, PlacementPolicy.CHANNEL_STRIPED)
        a = mm.frame_address(mm.allocate_rows(1, "a")[0])
        b = mm.frame_address(mm.allocate_rows(1, "b")[0])
        assert a.channel == 0 and b.channel == 0
        assert a.same_subarray(b)

    def test_stripe_spills_within_its_channel(self):
        mm = PimMemoryManager(SMALL, PlacementPolicy.CHANNEL_STRIPED)
        # overflow channel 0's stripe subarray: rows 0, 2, 4, ... go to
        # channel 0, so 2 * rows_per_subarray + 1 rows overflow it
        n = 2 * SMALL.rows_per_subarray + 1
        frames = mm.allocate_rows(n, "g")
        chan0 = [
            mm.frame_address(f) for i, f in enumerate(frames) if i % 2 == 0
        ]
        assert all(a.channel == 0 for a in chan0)
        subarrays = {(a.rank, a.bank, a.subarray) for a in chan0}
        assert len(subarrays) == 2  # spilled exactly once, stayed on-channel

    def test_striped_fills_whole_memory(self):
        mm = PimMemoryManager(SMALL, PlacementPolicy.CHANNEL_STRIPED)
        frames = mm.allocate_rows(SMALL.total_rows, "g")
        assert len(set(frames)) == SMALL.total_rows


class TestFree:
    def test_free_returns_rows(self, mm):
        frames = mm.allocate_rows(10, "g")
        before = mm.total_free_rows
        mm.free_rows(frames)
        assert mm.total_free_rows == before + 10
        assert mm.frames_allocated == 0

    def test_freed_rows_reusable(self, mm):
        frames = mm.allocate_rows(SMALL.total_rows)
        mm.free_rows(frames[:5])
        again = mm.allocate_rows(5, "new")
        assert len(again) == 5

    def test_double_free_detected(self, mm):
        frames = mm.allocate_rows(2, "g")
        mm.free_rows(frames)
        with pytest.raises(ValueError, match="double free"):
            mm.free_rows(frames)
