"""Tests for pim_malloc handles and the extended-ISA encoding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ops import PimOp
from repro.memsim.geometry import MemoryGeometry
from repro.runtime.allocator import AllocationError, BitVectorHandle, PimAllocator
from repro.runtime.isa import (
    PimInstruction,
    decode_instruction,
    encode_instruction,
)
from repro.runtime.os_mm import PimMemoryManager


SMALL = MemoryGeometry(
    channels=1,
    ranks_per_channel=1,
    chips_per_rank=1,
    banks_per_chip=2,
    subarrays_per_bank=4,
    rows_per_subarray=16,
    mats_per_subarray=1,
    cols_per_mat=512,
    mux_ratio=8,
)


@pytest.fixture
def alloc():
    return PimAllocator(PimMemoryManager(SMALL))


class TestPimMalloc:
    def test_small_vector_gets_one_row(self, alloc):
        h = alloc.pim_malloc(100)
        assert h.n_rows == 1
        assert h.n_bits == 100

    def test_long_vector_gets_multiple_rows(self, alloc):
        h = alloc.pim_malloc(SMALL.row_bits * 2 + 1)
        assert h.n_rows == 3

    def test_distinct_vectors_distinct_rows(self, alloc):
        a = alloc.pim_malloc(SMALL.row_bits)
        b = alloc.pim_malloc(SMALL.row_bits)
        assert set(a.frames).isdisjoint(b.frames)

    def test_ids_unique(self, alloc):
        ids = {alloc.pim_malloc(8).vid for _ in range(10)}
        assert len(ids) == 10

    def test_free_releases(self, alloc):
        h = alloc.pim_malloc(100)
        assert alloc.is_live(h)
        alloc.pim_free(h)
        assert not alloc.is_live(h)
        assert alloc.live_handles == 0

    def test_double_free_rejected(self, alloc):
        h = alloc.pim_malloc(100)
        alloc.pim_free(h)
        with pytest.raises(AllocationError):
            alloc.pim_free(h)

    def test_bad_size(self, alloc):
        with pytest.raises(AllocationError):
            alloc.pim_malloc(0)

    def test_handle_validation(self):
        with pytest.raises(ValueError):
            BitVectorHandle(vid=1, n_bits=0, frames=(0,))
        with pytest.raises(ValueError):
            BitVectorHandle(vid=1, n_bits=8, frames=())


class TestIsaEncoding:
    def test_roundtrip(self):
        instr = PimInstruction(PimOp.OR, 42, (1, 2, 3), 4096)
        assert decode_instruction(encode_instruction(instr)) == instr

    def test_mode_codes_distinct(self):
        codes = {PimInstruction(op, 0, (1,), 8).mode_code for op in PimOp}
        assert len(codes) == 4

    def test_bad_magic_rejected(self):
        payload = bytearray(encode_instruction(PimInstruction(PimOp.OR, 0, (1,), 8)))
        payload[0] ^= 0xFF
        with pytest.raises(ValueError, match="magic"):
            decode_instruction(bytes(payload))

    def test_truncated_rejected(self):
        payload = encode_instruction(PimInstruction(PimOp.OR, 0, (1, 2), 8))
        with pytest.raises(ValueError):
            decode_instruction(payload[:10])
        with pytest.raises(ValueError, match="length mismatch"):
            decode_instruction(payload[:-8])

    def test_validation(self):
        with pytest.raises(ValueError):
            PimInstruction(PimOp.OR, -1, (0,), 8)
        with pytest.raises(ValueError):
            PimInstruction(PimOp.OR, 0, (), 8)
        with pytest.raises(ValueError):
            PimInstruction(PimOp.OR, 0, (1,), 0)

    @given(
        dest=st.integers(0, 2**40),
        sources=st.lists(st.integers(0, 2**40), min_size=1, max_size=130),
        n_bits=st.integers(1, 2**30),
        op=st.sampled_from(list(PimOp)),
    )
    @settings(max_examples=60)
    def test_roundtrip_property(self, dest, sources, n_bits, op):
        instr = PimInstruction(op, dest, tuple(sources), n_bits)
        assert decode_instruction(encode_instruction(instr)) == instr
