"""PimRuntime construction: one canonical path, shortcut equivalence.

``PimRuntime.from_config(SystemConfig)`` through
``repro.backends.build_system`` is THE constructor; ``pcm()``/``stt()``
are documented one-line wrappers over it.  These tests pin that
equivalence (same technology, geometry, op results, accounting) and the
error paths.
"""

import numpy as np
import pytest

from repro.backends.config import (
    SystemConfig,
    geometry_name,
    register_geometry,
)
from repro.memsim.geometry import DEFAULT_GEOMETRY, MemoryGeometry
from repro.runtime.api import PimRuntime


def run_or(runtime, bits_a, bits_b):
    a = runtime.pim_malloc(bits_a.size)
    b = runtime.pim_malloc(bits_b.size)
    dst = runtime.pim_malloc(bits_a.size)
    runtime.pim_write(a, bits_a)
    runtime.pim_write(b, bits_b)
    runtime.pim_op("or", dst, [a, b])
    return runtime.pim_read(dst)


class TestShortcutEquivalence:
    def test_pcm_is_from_config(self):
        shortcut = PimRuntime.pcm()
        canonical = PimRuntime.from_config(
            SystemConfig(backend="pinatubo", technology="pcm")
        )
        assert (
            shortcut.system.technology.name
            == canonical.system.technology.name
        )
        assert shortcut.system.geometry == canonical.system.geometry
        rng = np.random.default_rng(0)
        a = rng.integers(0, 2, 1024, dtype=np.uint8)
        b = rng.integers(0, 2, 1024, dtype=np.uint8)
        assert np.array_equal(
            run_or(shortcut, a, b), run_or(canonical, a, b)
        )
        assert (
            shortcut.pim_accounting.to_dict()
            == canonical.pim_accounting.to_dict()
        )

    def test_stt_is_from_config(self):
        shortcut = PimRuntime.stt()
        canonical = PimRuntime.from_config(
            SystemConfig(backend="pinatubo", technology="stt")
        )
        assert (
            shortcut.system.technology.name
            == canonical.system.technology.name
        )
        assert shortcut.system.geometry == canonical.system.geometry

    def test_pcm_forwards_planner_knobs(self):
        runtime = PimRuntime.pcm(plan=True)
        assert runtime.planner is not None

    def test_custom_geometry_rides_the_config_path(self):
        geometry = MemoryGeometry(
            channels=2,
            ranks_per_channel=1,
            chips_per_rank=1,
            banks_per_chip=4,
            subarrays_per_bank=4,
            rows_per_subarray=128,
            mats_per_subarray=4,
            cols_per_mat=256,
            mux_ratio=4,
        )
        runtime = PimRuntime.pcm(geometry=geometry)
        assert runtime.system.geometry == geometry
        # auto-registered under a deterministic name: the same geometry
        # resolves to the same config twice
        assert geometry_name(geometry) == geometry_name(geometry)

    def test_register_geometry_conflict_rejected(self):
        name = geometry_name(DEFAULT_GEOMETRY)
        other = MemoryGeometry(
            channels=1,
            ranks_per_channel=1,
            chips_per_rank=1,
            banks_per_chip=1,
            subarrays_per_bank=2,
            rows_per_subarray=64,
            mats_per_subarray=2,
            cols_per_mat=128,
            mux_ratio=2,
        )
        with pytest.raises(ValueError, match="already registered"):
            register_geometry(name, other)
        # re-registering the same value is a no-op
        assert register_geometry(name, DEFAULT_GEOMETRY) == name


class TestFromConfigErrors:
    def test_runtime_less_backend_raises_with_registry_list(self):
        with pytest.raises(ValueError, match="no functional runtime"):
            PimRuntime.from_config(SystemConfig(backend="simd"))

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            PimRuntime.from_config(SystemConfig(backend="nope"))
