"""Tests for the runtime-level host-emission API."""

import numpy as np
import pytest

from repro.core.pinatubo import PinatuboSystem
from repro.memsim.geometry import MemoryGeometry
from repro.runtime.api import PimRuntime


GEOM = MemoryGeometry(
    channels=1,
    ranks_per_channel=1,
    chips_per_rank=1,
    banks_per_chip=2,
    subarrays_per_bank=4,
    rows_per_subarray=32,
    mats_per_subarray=1,
    cols_per_mat=512,
    mux_ratio=8,
)


@pytest.fixture
def rt():
    return PimRuntime(PinatuboSystem.pcm(geometry=GEOM))


def vectors(rt, n, seed=0):
    rng = np.random.default_rng(seed)
    handles, data = [], []
    for _ in range(n):
        h = rt.pim_malloc(GEOM.row_bits, "g")
        d = rng.integers(0, 2, GEOM.row_bits).astype(np.uint8)
        rt.pim_write(h, d)
        handles.append(h)
        data.append(d)
    return handles, data


class TestPimOpToHost:
    def test_result_correct(self, rt):
        (a, b), (da, db) = vectors(rt, 2)
        scratch = rt.pim_malloc(GEOM.row_bits, "g")
        bits = rt.pim_op_to_host("or", scratch, [a, b])
        np.testing.assert_array_equal(bits, da | db)

    def test_counts_as_pim_work(self, rt):
        (a, b), _ = vectors(rt, 2)
        scratch = rt.pim_malloc(GEOM.row_bits, "g")
        before = rt.pim_accounting.latency
        rt.pim_op_to_host("xor", scratch, [a, b])
        assert rt.pim_accounting.latency > before
        assert rt.driver.stats.instructions == 1

    def test_scratch_untouched_for_single_step(self, rt):
        (a, b), _ = vectors(rt, 2)
        scratch = rt.pim_malloc(GEOM.row_bits, "g")
        rt.pim_op_to_host("and", scratch, [a, b])
        frame = scratch.frames[0]
        assert rt.system.memory.frame_writes(frame) == 0

    def test_length_inferred(self, rt):
        a = rt.pim_malloc(100, "g")
        b = rt.pim_malloc(200, "g")
        scratch = rt.pim_malloc(200, "g")
        rt.pim_write(a, np.ones(100, np.uint8))
        rt.pim_write(b, np.ones(200, np.uint8))
        bits = rt.pim_op_to_host("and", scratch, [a, b])
        assert bits.size == 100
