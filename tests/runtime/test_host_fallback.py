"""Tests for the driver's host fallback on inter-chip placements."""

import numpy as np
import pytest

from repro.core.pinatubo import PinatuboSystem
from repro.memsim.address import RowAddress
from repro.memsim.geometry import MemoryGeometry
from repro.runtime.allocator import BitVectorHandle
from repro.runtime.api import PimRuntime


GEOM = MemoryGeometry(
    channels=2,
    ranks_per_channel=1,
    chips_per_rank=1,
    banks_per_chip=2,
    subarrays_per_bank=4,
    rows_per_subarray=32,
    mats_per_subarray=1,
    cols_per_mat=512,
    mux_ratio=8,
)


@pytest.fixture
def rt():
    return PimRuntime(PinatuboSystem.pcm(geometry=GEOM))


def handle_on_channel(rt, channel, row, bits, vid):
    frame = rt.system.mapper.encode(RowAddress(channel, 0, 0, 0, row))
    rt.system.memory.write_bits(frame, bits)
    return BitVectorHandle(vid=1000 + vid, n_bits=bits.size, frames=(frame,))


class TestHostFallback:
    def test_cross_channel_op_still_computes(self, rt):
        rng = np.random.default_rng(0)
        a_bits = rng.integers(0, 2, 256).astype(np.uint8)
        b_bits = rng.integers(0, 2, 256).astype(np.uint8)
        a = handle_on_channel(rt, 0, 0, a_bits, 1)
        b = handle_on_channel(rt, 1, 0, b_bits, 2)
        dest = handle_on_channel(rt, 0, 1, np.zeros(256, np.uint8), 3)
        rt.pim_op("or", dest, [a, b])
        got = rt.system.memory.read_bits(dest.frames[0], 256)
        np.testing.assert_array_equal(got, a_bits | b_bits)

    def test_fallback_counted_and_offload_lost(self, rt):
        rng = np.random.default_rng(1)
        a = handle_on_channel(rt, 0, 0, rng.integers(0, 2, 256).astype(np.uint8), 1)
        b = handle_on_channel(rt, 1, 0, rng.integers(0, 2, 256).astype(np.uint8), 2)
        dest = handle_on_channel(rt, 0, 1, np.zeros(256, np.uint8), 3)
        result = rt.pim_op("and", dest, [a, b])
        assert rt.driver.stats.host_fallbacks == 1
        assert result.steps == 0  # nothing executed in memory
        assert result.accounting.bus_data_bytes > 0  # data crossed the bus

    def test_inv_fallback(self, rt):
        rng = np.random.default_rng(2)
        bits = rng.integers(0, 2, 256).astype(np.uint8)
        # INV never needs fallback by itself (one operand), so force it
        # with a cross-channel destination
        src = handle_on_channel(rt, 0, 0, bits, 1)
        dest = handle_on_channel(rt, 1, 0, np.zeros(256, np.uint8), 2)
        rt.pim_op("inv", dest, [src])
        got = rt.system.memory.read_bits(dest.frames[0], 256)
        np.testing.assert_array_equal(got, 1 - bits)
        assert rt.driver.stats.host_fallbacks == 1

    def test_fallback_far_costlier_than_pim(self, rt):
        rng = np.random.default_rng(3)
        a_bits = rng.integers(0, 2, GEOM.row_bits).astype(np.uint8)
        b_bits = rng.integers(0, 2, GEOM.row_bits).astype(np.uint8)
        # cross-channel pair -> fallback
        a = handle_on_channel(rt, 0, 0, a_bits, 1)
        b = handle_on_channel(rt, 1, 0, b_bits, 2)
        d = handle_on_channel(rt, 0, 1, np.zeros(GEOM.row_bits, np.uint8), 3)
        fallback = rt.pim_op("or", d, [a, b])
        # co-located pair -> in-memory
        x = rt.pim_malloc(GEOM.row_bits, "g")
        y = rt.pim_malloc(GEOM.row_bits, "g")
        z = rt.pim_malloc(GEOM.row_bits, "g")
        rt.pim_write(x, a_bits)
        rt.pim_write(y, b_bits)
        pim = rt.pim_op("or", z, [x, y])
        # with this tiny test row the fixed latencies dominate; the bus
        # traffic is the structural difference, and the latency gap grows
        # with the row size (full-size rows: several x)
        assert fallback.latency > pim.latency
        assert fallback.accounting.bus_data_bytes > 0
        assert pim.accounting.bus_data_bytes == 0

    def test_no_fallback_for_good_placement(self, rt):
        rng = np.random.default_rng(4)
        x = rt.pim_malloc(256, "g")
        y = rt.pim_malloc(256, "g")
        z = rt.pim_malloc(256, "g")
        rt.pim_write(x, rng.integers(0, 2, 256).astype(np.uint8))
        rt.pim_write(y, rng.integers(0, 2, 256).astype(np.uint8))
        rt.pim_op("or", z, [x, y])
        assert rt.driver.stats.host_fallbacks == 0
