"""Tests for the driver (scheduling) and the PimRuntime programming model."""

import numpy as np
import pytest

from repro.core.pinatubo import PinatuboSystem
from repro.core.ops import PimOp
from repro.memsim.geometry import MemoryGeometry
from repro.runtime.api import PimRuntime
from repro.runtime.driver import PimRequest
from repro.runtime.os_mm import PlacementPolicy


SMALL = MemoryGeometry(
    channels=1,
    ranks_per_channel=1,
    chips_per_rank=1,
    banks_per_chip=2,
    subarrays_per_bank=4,
    rows_per_subarray=32,
    mats_per_subarray=1,
    cols_per_mat=512,
    mux_ratio=8,
)


@pytest.fixture
def rt():
    return PimRuntime(PinatuboSystem.pcm(geometry=SMALL))


def make_vectors(rt, n, bits=None, group="g", seed=0):
    bits = bits or SMALL.row_bits
    rng = np.random.default_rng(seed)
    handles, data = [], []
    for _ in range(n):
        h = rt.pim_malloc(bits, group)
        d = rng.integers(0, 2, size=bits).astype(np.uint8)
        rt.pim_write(h, d)
        handles.append(h)
        data.append(d)
    return handles, data


class TestProgrammingModel:
    def test_write_read_roundtrip(self, rt):
        h = rt.pim_malloc(300)
        data = np.random.default_rng(1).integers(0, 2, 300).astype(np.uint8)
        rt.pim_write(h, data)
        np.testing.assert_array_equal(rt.pim_read(h), data)

    def test_pim_op_or(self, rt):
        (a, b), (da, db) = make_vectors(rt, 2)
        dest = rt.pim_malloc(SMALL.row_bits, "g")
        rt.pim_op("or", dest, [a, b])
        np.testing.assert_array_equal(rt.pim_read(dest), da | db)

    def test_pim_op_accepts_enum_and_string_op(self, rt):
        (a, b), (da, db) = make_vectors(rt, 2)
        d1 = rt.pim_malloc(SMALL.row_bits, "g")
        d2 = rt.pim_malloc(SMALL.row_bits, "g")
        rt.pim_op(PimOp.AND, d1, [a, b])
        rt.pim_op("and", d2, [a, b])
        np.testing.assert_array_equal(rt.pim_read(d1), da & db)
        np.testing.assert_array_equal(rt.pim_read(d2), da & db)

    def test_pim_op_optional_params_are_keyword_only(self, rt):
        (a, b), _ = make_vectors(rt, 2)
        dest = rt.pim_malloc(SMALL.row_bits, "g")
        with pytest.raises(TypeError):
            rt.pim_op("or", dest, [a, b], 64)  # n_bits must be keyword
        rt.pim_op("or", dest, [a, b], n_bits=64)

    def test_pim_op_to_host_n_bits_is_keyword_only(self, rt):
        (a, b), (da, db) = make_vectors(rt, 2)
        scratch = rt.pim_malloc(SMALL.row_bits, "g")
        with pytest.raises(TypeError):
            rt.pim_op_to_host("or", scratch, [a, b], 64)
        bits = rt.pim_op_to_host("or", scratch, [a, b], n_bits=64)
        np.testing.assert_array_equal(bits, (da | db)[:64])

    def test_pim_op_xor_and_inv(self, rt):
        (a, b), (da, db) = make_vectors(rt, 2)
        d1 = rt.pim_malloc(SMALL.row_bits, "g")
        d2 = rt.pim_malloc(SMALL.row_bits, "g")
        rt.pim_op("xor", d1, [a, b])
        rt.pim_op("inv", d2, [a])
        np.testing.assert_array_equal(rt.pim_read(d1), da ^ db)
        np.testing.assert_array_equal(rt.pim_read(d2), 1 - da)

    def test_multi_operand_or(self, rt):
        handles, data = make_vectors(rt, 6)
        dest = rt.pim_malloc(SMALL.row_bits, "g")
        result = rt.pim_op("or", dest, handles)
        np.testing.assert_array_equal(
            rt.pim_read(dest), np.bitwise_or.reduce(data)
        )
        assert result.steps == 1  # multi-row capable

    def test_length_inferred_from_shortest(self, rt):
        a = rt.pim_malloc(100, "g")
        b = rt.pim_malloc(200, "g")
        dest = rt.pim_malloc(200, "g")
        rt.pim_write(a, np.ones(100, np.uint8))
        rt.pim_write(b, np.ones(200, np.uint8))
        result = rt.pim_op("and", dest, [a, b])
        assert result.accounting.bits_processed == 2 * 100

    def test_oversized_write_rejected(self, rt):
        h = rt.pim_malloc(10)
        with pytest.raises(ValueError):
            rt.pim_write(h, np.ones(11, np.uint8))

    def test_oversized_read_rejected(self, rt):
        h = rt.pim_malloc(10)
        with pytest.raises(ValueError):
            rt.pim_read(h, 11)

    def test_accounting_accumulates(self, rt):
        (a, b), _ = make_vectors(rt, 2)
        dest = rt.pim_malloc(SMALL.row_bits, "g")
        assert rt.pim_accounting.latency == 0.0
        rt.pim_op("or", dest, [a, b])
        assert rt.pim_accounting.latency > 0
        assert rt.total_latency() > rt.pim_accounting.latency  # host writes
        assert rt.total_energy() > 0


class TestPlacementMatters:
    def test_pim_aware_ops_are_intra_subarray(self, rt):
        from repro.memsim.address import OpLocality

        (a, b), _ = make_vectors(rt, 2)
        dest = rt.pim_malloc(SMALL.row_bits, "g")
        result = rt.pim_op("or", dest, [a, b])
        assert result.localities == {OpLocality.INTRA_SUBARRAY: 1}

    def test_interleaved_ops_are_not(self):
        from repro.memsim.address import OpLocality

        rt = PimRuntime(
            PinatuboSystem.pcm(geometry=SMALL),
            policy=PlacementPolicy.INTERLEAVED,
        )
        (a, b), _ = make_vectors(rt, 2)
        dest = rt.pim_malloc(SMALL.row_bits)
        result = rt.pim_op("or", dest, [a, b])
        assert OpLocality.INTRA_SUBARRAY not in result.localities


class TestDriverScheduling:
    def test_batch_groups_same_op(self, rt):
        handles, _ = make_vectors(rt, 4)
        d1 = rt.pim_malloc(SMALL.row_bits, "g")
        d2 = rt.pim_malloc(SMALL.row_bits, "g")
        d3 = rt.pim_malloc(SMALL.row_bits, "g")
        d4 = rt.pim_malloc(SMALL.row_bits, "g")
        # interleaved op kinds; no data deps between them
        rt.driver.submit("or", d1, [handles[0], handles[1]])
        rt.driver.submit("and", d2, [handles[0], handles[1]])
        rt.driver.submit("or", d3, [handles[2], handles[3]])
        rt.driver.submit("and", d4, [handles[2], handles[3]])
        rt.driver.flush()
        # grouped: or,or,and,and (or and,and,or,or) -> 2 switches, not 4
        assert rt.driver.stats.mode_switches == 2

    def test_dependences_respected(self, rt):
        (a, b), (da, db) = make_vectors(rt, 2)
        tmp = rt.pim_malloc(SMALL.row_bits, "g")
        out = rt.pim_malloc(SMALL.row_bits, "g")
        # tmp = a | b ; out = tmp ^ a  -- RAW on tmp
        rt.driver.submit("or", tmp, [a, b])
        rt.driver.submit("xor", out, [tmp, a])
        rt.driver.flush()
        np.testing.assert_array_equal(rt.pim_read(out), (da | db) ^ da)

    def test_waw_on_dest_respected(self, rt):
        (a, b, c), (da, db, dc) = make_vectors(rt, 3)
        out = rt.pim_malloc(SMALL.row_bits, "g")
        rt.driver.submit("or", out, [a, b])
        rt.driver.submit("and", out, [out, c])  # must run second
        rt.driver.flush()
        np.testing.assert_array_equal(rt.pim_read(out), (da | db) & dc)

    def test_stats_counters(self, rt):
        (a, b), _ = make_vectors(rt, 2)
        dest = rt.pim_malloc(SMALL.row_bits, "g")
        rt.pim_op("or", dest, [a, b])
        assert rt.driver.stats.requests == 1
        assert rt.driver.stats.instructions == 1
        assert rt.driver.pending == 0


class TestPimRequest:
    def _handles(self, rt):
        (a, b), _ = make_vectors(rt, 2)
        c = rt.pim_malloc(SMALL.row_bits, "g")
        return a, b, c

    def test_raw_dependence(self, rt):
        a, b, c = self._handles(rt)
        first = PimRequest(PimOp.OR, c, (a, b), 8)
        second = PimRequest(PimOp.XOR, a, (c, b), 8)
        assert second.depends_on(first)

    def test_independent(self, rt):
        a, b, c = self._handles(rt)
        d = rt.pim_malloc(SMALL.row_bits, "g")
        first = PimRequest(PimOp.OR, c, (a, b), 8)
        second = PimRequest(PimOp.XOR, d, (a, b), 8)
        assert not second.depends_on(first)
