"""Keep the documentation honest: inventory vs reality."""

import pathlib
import re


ROOT = pathlib.Path(__file__).resolve().parent.parent


def read(name: str) -> str:
    return (ROOT / name).read_text()


class TestDesignDoc:
    def test_every_benchmark_file_is_indexed(self):
        design = read("DESIGN.md")
        for bench in sorted((ROOT / "benchmarks").glob("bench_*.py")):
            assert bench.name in design, f"{bench.name} missing from DESIGN.md"

    def test_every_indexed_benchmark_exists(self):
        design = read("DESIGN.md")
        for name in re.findall(r"benchmarks/(bench_\w+\.py)", design):
            assert (ROOT / "benchmarks" / name).exists(), name

    def test_inventory_modules_exist(self):
        design = read("DESIGN.md")
        for module in re.findall(r"`repro\.([\w.]+)`", design):
            path = ROOT / "src" / "repro" / (module.replace(".", "/") + ".py")
            package = ROOT / "src" / "repro" / module.replace(".", "/")
            assert path.exists() or package.exists(), module


class TestReadme:
    def test_listed_examples_exist(self):
        readme = read("README.md")
        for name in re.findall(r"examples/(\w+\.py)", readme):
            assert (ROOT / "examples" / name).exists(), name

    def test_all_examples_are_listed(self):
        readme = read("README.md")
        for example in sorted((ROOT / "examples").glob("*.py")):
            assert example.name in readme, f"{example.name} missing from README"

    def test_docs_links_exist(self):
        readme = read("README.md")
        for name in re.findall(r"docs/([\w.]+\.md)", readme):
            assert (ROOT / "docs" / name).exists(), name


class TestExperimentsDoc:
    def test_mentions_every_figure(self):
        experiments = read("EXPERIMENTS.md")
        for fig in (5, 6, 7, 9, 10, 11, 12, 13):
            assert f"Fig. {fig}" in experiments

    def test_ablation_benches_listed(self):
        experiments = read("EXPERIMENTS.md")
        for bench in sorted((ROOT / "benchmarks").glob("bench_ablation_*.py")):
            assert bench.name in experiments, bench.name


class TestPaperMapping:
    def test_mapped_modules_exist(self):
        mapping = read("docs/paper_mapping.md")
        for module in re.findall(r"`repro/([\w/]+)\.py`", mapping):
            assert (ROOT / "src" / "repro" / (module + ".py")).exists(), module
