"""Tests for the LWL driver transient model (paper Fig. 7)."""

import pytest

from repro.circuits.lwl_sim import LWLDriverSim


@pytest.fixture
def sim():
    return LWLDriverSim(n_rows=16)


class TestLatching:
    def test_single_activation_latches(self, sim):
        trace = sim.run_sequence([3])
        assert trace.latched_rows == (3,)

    def test_multi_activation_all_latched(self, sim):
        trace = sim.run_sequence([1, 4, 9])
        assert trace.latched_rows == (1, 4, 9)

    def test_wordline_stays_high_after_pulse_ends(self, sim):
        trace = sim.run_sequence([2], pulse_width=0.5e-9, tail=4e-9)
        wl = trace.wordline[2]
        cfg = sim.config
        # After the decode pulse the latch must hold the WL near VDD.
        assert wl.final > 0.9 * cfg.vdd

    def test_unselected_rows_stay_low(self, sim):
        trace = sim.run_sequence([5])
        for row, wl in trace.wordline.items():
            if row != 5:
                assert wl.final < 0.2 * sim.config.vdd

    def test_earlier_rows_hold_while_later_latch(self, sim):
        """The point of the latch: row latched first must still be high
        when the last row's pulse fires."""
        trace = sim.run_sequence([0, 7], pulse_width=0.5e-9, gap=0.5e-9)
        wl_first = trace.wordline[0]
        # time when second pulse starts
        t_second = 0.5e-9 + 0.5e-9 + (0.5e-9 + 0.5e-9)
        assert wl_first.at(t_second) > 0.8 * sim.config.vdd

    def test_reset_clears_before_sequence(self, sim):
        trace = sim.run_sequence([1])
        wl = trace.wordline[1]
        # During RESET the WL is held at ground.
        assert wl.at(0.25e-9) < 0.1 * sim.config.vdd


class TestWaveformShape:
    def test_decode_pulse_windows_are_disjoint(self, sim):
        trace = sim.run_sequence([1, 2, 3])
        pulses = [trace.decode[r] for r in (1, 2, 3)]
        # at any time at most one decode pulse is high
        total = sum(p.values for p in pulses)
        assert total.max() <= sim.config.vdd + 1e-9

    def test_reset_waveform_shape(self, sim):
        trace = sim.run_sequence([1], reset_width=0.5e-9)
        assert trace.reset.at(0.2e-9) == sim.config.vdd
        assert trace.reset.at(1.0e-9) == 0.0

    def test_wordline_rise_time_finite(self, sim):
        trace = sim.run_sequence([1])
        wl = trace.wordline[1]
        t_cross = wl.crossing_time(sim.config.vdd / 2)
        assert t_cross is not None
        assert t_cross > 0


class TestValidation:
    def test_row_out_of_range(self, sim):
        with pytest.raises(ValueError, match="out of range"):
            sim.run_sequence([99])

    def test_duplicate_rows_rejected(self, sim):
        with pytest.raises(ValueError, match="duplicate"):
            sim.run_sequence([1, 1])

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            LWLDriverSim(n_rows=0)

    def test_128_row_activation(self):
        """The PCM case: a full 128-row multi-activation latches all rows."""
        sim = LWLDriverSim(n_rows=256)
        rows = list(range(0, 256, 2))  # 128 rows
        trace = sim.run_sequence(rows, pulse_width=0.3e-9, gap=0.2e-9, tail=1e-9)
        assert trace.latched_rows == tuple(rows)
