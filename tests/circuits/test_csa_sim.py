"""Tests for the CSA transient model (paper Fig. 6)."""

import pytest

from repro.circuits.csa_sim import CSAConfig, CSATransientSim
from repro.nvm.sense_amp import SenseMode
from repro.nvm.technology import get_technology


@pytest.fixture(scope="module")
def pcm():
    return get_technology("pcm")


@pytest.fixture(scope="module")
def sim(pcm):
    return CSATransientSim(pcm)


def r_of(pcm, bit):
    return pcm.r_low if bit else pcm.r_high


class TestRead:
    def test_read_one(self, sim, pcm):
        assert sim.read(pcm.r_low).bit == 1

    def test_read_zero(self, sim, pcm):
        assert sim.read(pcm.r_high).bit == 0

    def test_output_swings_rail_to_rail(self, sim, pcm):
        cfg = sim.config
        one = sim.read(pcm.r_low)
        zero = sim.read(pcm.r_high)
        assert one.v_out.final > 0.9 * cfg.vdd
        assert zero.v_out.final < 0.1 * cfg.vdd

    def test_sampling_phase_monotone_charge(self, sim, pcm):
        trace = sim.read(pcm.r_low)
        t_half = sim.config.t_sample / 2
        assert trace.v_cell.at(t_half) < trace.v_cell.at(sim.config.t_sample)

    def test_cell_charges_faster_than_ref_for_one(self, sim, pcm):
        trace = sim.read(pcm.r_low)
        t = sim.config.t_sample
        assert trace.v_cell.at(t) > trace.v_ref.at(t)

    def test_nonpositive_resistance_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.read(0.0)


class TestBitwiseOps:
    @pytest.mark.parametrize("a,b", [(0, 0), (0, 1), (1, 0), (1, 1)])
    def test_or_truth_table(self, sim, pcm, a, b):
        trace = sim.bitwise_or([r_of(pcm, a), r_of(pcm, b)])
        assert trace.bit == (a | b)

    @pytest.mark.parametrize("a,b", [(0, 0), (0, 1), (1, 0), (1, 1)])
    def test_and_truth_table(self, sim, pcm, a, b):
        trace = sim.bitwise_and([r_of(pcm, a), r_of(pcm, b)])
        assert trace.bit == (a & b)

    @pytest.mark.parametrize("a,b", [(0, 0), (0, 1), (1, 0), (1, 1)])
    def test_xor_truth_table(self, sim, pcm, a, b):
        trace = sim.bitwise_xor(r_of(pcm, a), r_of(pcm, b))
        assert trace.bit == (a ^ b)

    @pytest.mark.parametrize("bit", [0, 1])
    def test_inv_truth_table(self, sim, pcm, bit):
        assert sim.invert(r_of(pcm, bit)).bit == (1 - bit)

    def test_multirow_or_all_zero(self, sim, pcm):
        cells = [pcm.r_high] * 128
        assert sim.bitwise_or(cells).bit == 0

    def test_multirow_or_single_one(self, sim, pcm):
        cells = [pcm.r_high] * 127 + [pcm.r_low]
        assert sim.bitwise_or(cells).bit == 1

    def test_or_needs_two_cells(self, sim, pcm):
        with pytest.raises(ValueError):
            sim.bitwise_or([pcm.r_low])

    def test_and_needs_exactly_two(self, sim, pcm):
        with pytest.raises(ValueError):
            sim.bitwise_and([pcm.r_low] * 3)


class TestOtherTechnologies:
    @pytest.mark.parametrize("name", ["reram", "stt"])
    @pytest.mark.parametrize("a,b", [(0, 0), (0, 1), (1, 1)])
    def test_or_and_on_other_cells(self, name, a, b):
        tech = get_technology(name)
        sim = CSATransientSim(tech)
        ra = tech.r_low if a else tech.r_high
        rb = tech.r_low if b else tech.r_high
        assert sim.bitwise_or([ra, rb]).bit == (a | b)
        assert sim.bitwise_and([ra, rb]).bit == (a & b)


class TestFigure6Sequence:
    def test_default_sequence_is_correct(self, sim):
        results = sim.figure6_sequence()
        assert len(results) == 15
        for entry in results:
            a, b, mode = entry["a"], entry["b"], entry["mode"]
            expected = {
                SenseMode.OR: a | b,
                SenseMode.AND: a & b,
                SenseMode.XOR: a ^ b,
            }[mode]
            assert entry["bit"] == expected, (mode, a, b)

    def test_custom_pattern(self, sim):
        results = sim.figure6_sequence([(SenseMode.OR, 1, 1)])
        assert len(results) == 1
        assert results[0]["bit"] == 1

    def test_unsupported_mode_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.figure6_sequence([(SenseMode.READ, 1, 0)])


class TestConfig:
    def test_total_time(self):
        cfg = CSAConfig(t_sample=1e-9, t_amplify=2e-9, t_output=3e-9)
        assert cfg.t_total == pytest.approx(6e-9)

    def test_custom_config_used(self, pcm):
        cfg = CSAConfig(vdd=1.0)
        sim = CSATransientSim(pcm, cfg)
        trace = sim.read(pcm.r_low)
        assert trace.v_out.final <= 1.0 + 1e-9
