"""Tests for the CSA corner-sweep validator (E2)."""

import numpy as np
import pytest

from repro.circuits.validate import CornerReport, validate_csa_corners
from repro.nvm.technology import get_technology


class TestCornerValidation:
    @pytest.mark.parametrize("name", ["pcm", "reram", "stt"])
    def test_all_corners_pass(self, name):
        report = validate_csa_corners(get_technology(name))
        assert report.all_pass, report.failures[:5]

    def test_pcm_with_monte_carlo(self):
        report = validate_csa_corners(
            get_technology("pcm"),
            monte_carlo=10,
            rng=np.random.default_rng(1),
        )
        assert report.all_pass, report.failures[:5]

    def test_pcm_128_row_or_corners(self):
        report = validate_csa_corners(get_technology("pcm"), or_rows=128)
        assert report.all_pass
        # the n-row cases must actually have been exercised
        assert report.n_cases > 60

    def test_case_counting(self):
        report = CornerReport("X")
        report.record("read", (1,), 1, 1)
        report.record("read", (0,), 0, 1)
        assert report.n_cases == 2
        assert report.n_pass == 1
        assert not report.all_pass
        assert report.failures[0]["op"] == "read"

    def test_empty_report_does_not_pass(self):
        assert not CornerReport("X").all_pass
