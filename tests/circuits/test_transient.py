"""Tests for the forward-Euler transient solver."""

import math

import numpy as np
import pytest

from repro.circuits.transient import RCNode, Switch, TransientSolver, Waveform


class TestWaveform:
    def test_final_value(self):
        w = Waveform([0, 1, 2], [0.0, 0.5, 1.0])
        assert w.final == 1.0

    def test_interpolation(self):
        w = Waveform([0, 2], [0.0, 1.0])
        assert w.at(1.0) == pytest.approx(0.5)

    def test_rising_crossing(self):
        w = Waveform([0, 1, 2], [0.0, 0.4, 1.0])
        t = w.crossing_time(0.7, rising=True)
        assert t == pytest.approx(1.5)

    def test_falling_crossing(self):
        w = Waveform([0, 1], [1.0, 0.0])
        assert w.crossing_time(0.5, rising=False) == pytest.approx(0.5)

    def test_no_crossing_returns_none(self):
        w = Waveform([0, 1], [0.0, 0.1])
        assert w.crossing_time(0.5) is None

    def test_settled(self):
        w = Waveform(np.linspace(0, 1, 100), np.full(100, 0.99))
        assert w.settled(1.0, tolerance=0.02)
        assert not w.settled(0.5, tolerance=0.02)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Waveform([0, 1], [0.0])

    def test_decreasing_times_rejected(self):
        with pytest.raises(ValueError):
            Waveform([1, 0], [0.0, 0.0])

    def test_empty_final_raises(self):
        w = Waveform([], [])
        with pytest.raises(ValueError):
            _ = w.final


class TestRCCharging:
    """The solver must reproduce the analytic RC step response."""

    def test_rc_charge_curve(self):
        solver = TransientSolver()
        solver.add_node(RCNode("v", capacitance=1e-12))
        solver.add_resistor_to_rail("v", 1.0, 1e3)  # tau = 1 ns
        waves = solver.run(5e-9)
        v = waves["v"]
        for t_check in (0.5e-9, 1e-9, 2e-9, 4e-9):
            analytic = 1.0 - math.exp(-t_check / 1e-9)
            assert v.at(t_check) == pytest.approx(analytic, abs=0.02)

    def test_rc_discharge(self):
        solver = TransientSolver()
        solver.add_node(RCNode("v", capacitance=1e-12, v_init=1.0))
        solver.add_resistor_to_rail("v", 0.0, 1e3)
        waves = solver.run(5e-9)
        assert waves["v"].final == pytest.approx(math.exp(-5.0), abs=0.01)

    def test_constant_current_ramp(self):
        solver = TransientSolver()
        solver.add_node(RCNode("v", capacitance=1e-12))
        solver.add_current_source("v", lambda t, volts: 1e-6)
        waves = solver.run(1e-9, dt=1e-12)
        # dV = I*t/C = 1e-6 A * 1e-9 s / 1e-12 F = 1 mV
        assert waves["v"].final == pytest.approx(1e-3, rel=0.01)

    def test_charge_sharing_between_nodes(self):
        solver = TransientSolver()
        solver.add_node(RCNode("a", 1e-12, v_init=1.0))
        solver.add_node(RCNode("b", 1e-12, v_init=0.0))
        solver.add_resistor("a", "b", 1e3)
        waves = solver.run(20e-9)
        assert waves["a"].final == pytest.approx(0.5, abs=0.01)
        assert waves["b"].final == pytest.approx(0.5, abs=0.01)

    def test_charge_conservation(self):
        solver = TransientSolver()
        solver.add_node(RCNode("a", 2e-12, v_init=1.5))
        solver.add_node(RCNode("b", 1e-12, v_init=0.0))
        solver.add_resistor("a", "b", 5e3)
        waves = solver.run(100e-9)
        q_total = 2e-12 * waves["a"].final + 1e-12 * waves["b"].final
        assert q_total == pytest.approx(2e-12 * 1.5, rel=0.01)


class TestSwitches:
    def test_window_switch_gates_charging(self):
        solver = TransientSolver()
        solver.add_node(RCNode("v", 1e-12))
        solver.add_resistor_to_rail("v", 1.0, 1e3, Switch.window(0.0, 1e-9))
        waves = solver.run(5e-9)
        v_at_cut = waves["v"].at(1e-9)
        assert waves["v"].final == pytest.approx(v_at_cut, abs=0.01)

    def test_after_switch(self):
        solver = TransientSolver()
        solver.add_node(RCNode("v", 1e-12))
        solver.add_resistor_to_rail("v", 1.0, 1e3, Switch.after(2e-9))
        waves = solver.run(3e-9)
        assert waves["v"].at(1.9e-9) == pytest.approx(0.0, abs=1e-6)
        assert waves["v"].final > 0.5

    def test_window_validation(self):
        with pytest.raises(ValueError):
            Switch.window(2.0, 1.0)


class TestNetworkValidation:
    def test_duplicate_node_rejected(self):
        solver = TransientSolver()
        solver.add_node(RCNode("v", 1e-12))
        with pytest.raises(ValueError, match="duplicate"):
            solver.add_node(RCNode("v", 1e-12))

    def test_unknown_node_rejected(self):
        solver = TransientSolver()
        with pytest.raises(KeyError):
            solver.add_resistor_to_rail("ghost", 1.0, 1e3)

    def test_nonpositive_resistance_rejected(self):
        solver = TransientSolver()
        solver.add_node(RCNode("v", 1e-12))
        with pytest.raises(ValueError):
            solver.add_resistor_to_rail("v", 1.0, 0.0)

    def test_nonpositive_capacitance_rejected(self):
        with pytest.raises(ValueError):
            RCNode("v", 0.0)

    def test_bad_run_args(self):
        solver = TransientSolver()
        solver.add_node(RCNode("v", 1e-12))
        with pytest.raises(ValueError):
            solver.run(-1.0)
        with pytest.raises(ValueError):
            solver.run(1e-9, dt=0.0)
