"""Tests for ASCII waveform rendering."""

import numpy as np
import pytest

from repro.circuits.lwl_sim import LWLDriverSim
from repro.circuits.render import render_digital, render_traces, render_waveform
from repro.circuits.transient import Waveform


def ramp(n=100, top=1.0):
    return Waveform(np.linspace(0, 1e-9, n), np.linspace(0, top, n))


class TestAnalogRender:
    def test_shape(self):
        text = render_waveform(ramp(), width=40, height=6, label="ramp")
        lines = text.split("\n")
        assert lines[0] == "ramp"
        assert len(lines) == 1 + 6 + 1  # label + rows + footer
        assert all("|" in line for line in lines[1:-1])

    def test_ramp_fills_towards_the_right(self):
        text = render_waveform(ramp(), width=40, height=4)
        top_row = text.split("\n")[0]
        inner = top_row.split("|")[1]
        assert inner[:10].strip() == ""  # low at the start
        assert "#" in inner[-5:]  # high at the end

    def test_footer_shows_duration(self):
        assert "1.0 ns" in render_waveform(ramp())

    def test_validation(self):
        with pytest.raises(ValueError):
            render_waveform(ramp(), width=1)
        with pytest.raises(ValueError):
            render_waveform(Waveform([], []), width=10)


class TestDigitalRender:
    def test_levels(self):
        wave = Waveform([0, 1, 2, 3], [0.0, 0.0, 1.0, 1.0])
        trace = render_digital(wave, threshold=0.5, width=8)
        assert set(trace) <= {"^", "_"}
        assert trace[0] == "_"
        assert trace[-1] == "^"

    def test_width(self):
        assert len(render_digital(ramp(), 0.5, width=32)) == 32

    def test_validation(self):
        with pytest.raises(ValueError):
            render_digital(ramp(), 0.5, width=1)


class TestTraceGroup:
    def test_lwl_figure7_render(self):
        sim = LWLDriverSim(n_rows=8)
        trace = sim.run_sequence([1, 3])
        text = render_traces(
            {f"WL{r}": w for r, w in trace.wordline.items()},
            threshold=sim.config.vdd / 2,
        )
        lines = text.split("\n")
        assert len(lines) == len(trace.wordline)
        # latched wordlines end high, unselected end low
        for line in lines:
            name, digital = line.split(maxsplit=1)
            if name in ("WL1", "WL3"):
                assert digital.endswith("^")
            else:
                assert digital.endswith("_")

    def test_alignment(self):
        waves = {"a": ramp(), "longname": ramp()}
        lines = render_traces(waves, 0.5, width=10).split("\n")
        assert len(set(line.index(" ") for line in lines)) >= 1
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_traces({}, 0.5)
