"""Serving-layer benchmark: coalescing + shard placement vs one-at-a-time.

The acceptance experiment for ``repro.service``: a 16-tenant mixed
workload (bitwise ops + bitmap range queries, Zipf-skewed tenants,
open-loop Poisson arrivals) runs twice on identical Pinatubo systems:

- *serial*: ``max_batch=1`` -- every request is its own dispatch, the
  server pays the full serial latency sum plus one dispatch overhead
  per request (a one-at-a-time query service);
- *coalesced*: ``max_batch=16`` -- backlogged requests from different
  tenants share one driver command stream, and requests on different
  (channel, bank) shards overlap, so the batch makespan is the per-shard
  maximum, not the total.

The memory geometry gives 16 independent shards (4 channels x 4 banks,
one subarray each), and ``bank_spread`` placement lands each tenant on
its own shard.  Both runs produce identical per-request results (numpy
oracle checked); the coalesced run must deliver **>= 2x** the simulated
ops/s.  Results land in ``BENCH_service.json`` at the repo root.

Run directly (``python benchmarks/bench_service_load.py [--smoke]``) or
through pytest (``pytest benchmarks/bench_service_load.py``).
"""

import sys
import time
from pathlib import Path

from repro.backends.config import SystemConfig
from repro.core.pinatubo import PinatuboSystem
from repro.memsim.geometry import MemoryGeometry
from repro.nvm.technology import get_technology
from repro.runtime.api import PimRuntime
from repro.runtime.os_mm import PlacementPolicy
from repro.service import ServiceConfig, TenantQuota
from repro.service.engine import ResidentPimEngine
from repro.workloads.service_load import ServiceLoadSpec, run_service_load

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"

#: 4 channels x 4 banks, one subarray each: 16 independent shards, so
#: each of the 16 tenants owns one under bank_spread placement
GEOM = MemoryGeometry(
    channels=4,
    ranks_per_channel=1,
    chips_per_rank=1,
    banks_per_chip=4,
    subarrays_per_bank=1,
    rows_per_subarray=64,
    mats_per_subarray=1,
    cols_per_mat=1024,
    mux_ratio=8,
)

SYSTEM = SystemConfig(backend="pinatubo", placement="bank_spread")


def _spec(n_requests: int) -> ServiceLoadSpec:
    return ServiceLoadSpec(
        n_tenants=16,
        vectors_per_tenant=4,
        vector_bits=GEOM.row_bits,
        index_bins=8,
        index_events=GEOM.row_bits,
        n_requests=n_requests,
        arrival_rate_per_s=2e6,  # offered load >> serial capacity
        zipf_s=1.0,
        seed=42,
    )


def _engine() -> ResidentPimEngine:
    runtime = PimRuntime(
        PinatuboSystem(get_technology("pcm"), GEOM, batch_commands=True),
        policy=PlacementPolicy.BANK_SPREAD,
    )
    return ResidentPimEngine(SYSTEM, runtime=runtime)


def _service_config(max_batch: int) -> ServiceConfig:
    return ServiceConfig(
        system=SYSTEM,
        max_batch=max_batch,
        dispatch_overhead_s=1e-6,
        # throughput experiment: queues deep enough that nothing rejects
        default_quota=TenantQuota(max_pending=1 << 16),
        keep_bits=True,
    )


def _one_run(spec: ServiceLoadSpec, max_batch: int) -> dict:
    t0 = time.perf_counter()
    service, stats = run_service_load(
        spec, _service_config(max_batch), engine=_engine()
    )
    wall_s = time.perf_counter() - t0
    verified = service.verify_results()
    assert verified == stats.completed == spec.n_requests
    latency = stats.latency
    return {
        "max_batch": max_batch,
        "completed": stats.completed,
        "batches": stats.batches,
        "mean_batch_size": stats.mean_batch_size,
        "sim_ops_per_s": stats.ops_per_s,
        "sim_makespan_s": stats.makespan_s,
        "p50_s": latency.percentile(50),
        "p99_s": latency.percentile(99),
        "energy_j": stats.energy_j,
        "oracle_verified": verified,
        "wall_s": wall_s,
    }


def run_service_benchmark(smoke: bool = False) -> dict:
    spec = _spec(n_requests=128 if smoke else 512)
    serial = _one_run(spec, max_batch=1)
    coalesced = _one_run(spec, max_batch=16)
    return {
        "workload": {
            "n_tenants": spec.n_tenants,
            "n_requests": spec.n_requests,
            "arrival_rate_per_s": spec.arrival_rate_per_s,
            "zipf_s": spec.zipf_s,
            "n_shards": GEOM.channels * GEOM.banks_per_rank,
            "smoke": smoke,
        },
        "serial": serial,
        "coalesced": coalesced,
        "ops_per_s_speedup": coalesced["sim_ops_per_s"]
        / serial["sim_ops_per_s"],
    }


def _write_result(result: dict) -> None:
    try:
        from benchmarks.bench_io import write_bench
    except ImportError:  # run as a script: the benchmarks dir is sys.path[0]
        from bench_io import write_bench

    write_bench(RESULT_PATH, "service_load", result)


def _report(result: dict) -> str:
    serial, coalesced = result["serial"], result["coalesced"]
    return (
        f"service load ({result['workload']['n_requests']} requests, "
        f"{result['workload']['n_tenants']} tenants): "
        f"serial {serial['sim_ops_per_s']:.3e} ops/s "
        f"(p99 {serial['p99_s']:.2e}s), "
        f"coalesced {coalesced['sim_ops_per_s']:.3e} ops/s "
        f"(p99 {coalesced['p99_s']:.2e}s, "
        f"mean batch {coalesced['mean_batch_size']:.1f}), "
        f"speedup {result['ops_per_s_speedup']:.1f}x -> {RESULT_PATH.name}"
    )


def test_service_load_throughput(once):
    """Cross-tenant coalescing >= 2x simulated ops/s over one-at-a-time
    serving on the 16-tenant mixed workload; writes BENCH_service.json."""
    result = once(run_service_benchmark)
    _write_result(result)
    print()
    print(_report(result))
    assert result["ops_per_s_speedup"] >= 2.0


if __name__ == "__main__":
    res = run_service_benchmark(smoke="--smoke" in sys.argv[1:])
    _write_result(res)
    print(_report(res))
    assert res["ops_per_s_speedup"] >= 2.0, (
        f"serving regression: coalescing speedup "
        f"{res['ops_per_s_speedup']:.2f}x < 2x"
    )
