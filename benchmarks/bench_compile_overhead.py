"""Kernel-compiler overhead: compile cost vs steady-state break-even.

The compiler only pays off if its one-time cost (recording a wave,
lowering it to a flat program, snapshotting resident replay state) is
amortised by cheaper steady-state passes.  This benchmark measures both
sides on the ``bench_plan_cache`` workload:

- *compile cost*: the wall-clock spent inside program lowering
  (``PlanStats.compile_seconds``) plus the slowdown of the recording
  pass relative to the interpreted planner's equivalent pass;
- *steady-state saving*: interpreted minus compiled per-pass wall once
  both arms serve everything from cache.

``break_even_passes`` is how many steady-state stream passes repay the
total warm-up overhead; fractional values below 1 mean the compiler
pays for itself before the first measured pass completes.  Results
land in ``BENCH_compile.json`` at the repo root.
"""

import sys
import time
from pathlib import Path

from repro.apps.star import synthetic_star_table

try:
    from benchmarks.bench_plan_cache import (
        COLUMNS, N_EVENTS, REPEATS, _build_db, _query_pool, _stream,
    )
except ImportError:  # run as a script: the benchmarks dir is sys.path[0]
    from bench_plan_cache import (
        COLUMNS, N_EVENTS, REPEATS, _build_db, _query_pool, _stream,
    )

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_compile.json"

STEADY_PASSES = 3


def _timed_pass(db, stream) -> float:
    t0 = time.perf_counter()
    db.query_many(list(stream))
    return time.perf_counter() - t0


def run_compile_overhead(repeats: int = REPEATS) -> dict:
    table = synthetic_star_table(N_EVENTS, columns=COLUMNS, seed=31)
    stream = _stream(_query_pool(), repeats)
    n_queries = len(stream)

    # Both planner arms walk the same lifecycle: pass 1 executes and
    # fills the cache, pass 2 serves (and, compiled, records programs +
    # resident state), passes 3+ are steady state.
    db_comp = _build_db(table, plan=True, compile_=True)
    comp_cold = _timed_pass(db_comp, stream)
    comp_record = _timed_pass(db_comp, stream)
    comp_steady = min(_timed_pass(db_comp, stream) for _ in range(STEADY_PASSES))
    comp_stats = db_comp.runtime.plan_stats

    db_interp = _build_db(table, plan=True, compile_=False)
    interp_cold = _timed_pass(db_interp, stream)
    interp_record = _timed_pass(db_interp, stream)
    interp_steady = min(
        _timed_pass(db_interp, stream) for _ in range(STEADY_PASSES)
    )

    # warm-up overhead the compiler added on the two non-steady passes
    warmup_overhead = max(
        0.0, (comp_cold + comp_record) - (interp_cold + interp_record)
    )
    saving_per_pass = interp_steady - comp_steady
    break_even = (
        warmup_overhead / saving_per_pass if saving_per_pass > 0 else None
    )
    return {
        "workload": {
            "n_queries": n_queries,
            "steady_passes": STEADY_PASSES,
            "smoke": repeats != REPEATS,
        },
        "compiled": {
            "cold_pass_s": comp_cold,
            "record_pass_s": comp_record,
            "steady_pass_s": comp_steady,
            "compile_seconds": comp_stats.compile_seconds,
            "compilations": comp_stats.compilations,
            "program_hits": comp_stats.program_hits,
            "serve_replays": comp_stats.serve_replays,
        },
        "interpreted": {
            "cold_pass_s": interp_cold,
            "record_pass_s": interp_record,
            "steady_pass_s": interp_steady,
        },
        "warmup_overhead_s": warmup_overhead,
        "steady_saving_per_pass_s": saving_per_pass,
        "break_even_passes": break_even,
        "steady_speedup": (
            interp_steady / comp_steady if comp_steady > 0 else None
        ),
    }


def _write_result(result: dict) -> None:
    try:
        from benchmarks.bench_io import write_bench
    except ImportError:
        from bench_io import write_bench

    write_bench(RESULT_PATH, "compile_overhead", result)


def _report(result: dict) -> str:
    comp = result["compiled"]
    be = result["break_even_passes"]
    be_txt = f"{be:.2f}" if be is not None else "n/a (no steady saving)"
    return (
        f"compile overhead ({result['workload']['n_queries']} queries/pass): "
        f"{comp['compilations']} programs in {comp['compile_seconds']*1e3:.2f}ms, "
        f"warm-up overhead {result['warmup_overhead_s']*1e3:.1f}ms, "
        f"steady saving {result['steady_saving_per_pass_s']*1e3:.1f}ms/pass, "
        f"break-even {be_txt} passes -> {RESULT_PATH.name}"
    )


def test_compile_overhead(once):
    """Compiling must pay for itself within a handful of steady passes;
    writes BENCH_compile.json."""
    result = once(run_compile_overhead)
    _write_result(result)
    print()
    print(_report(result))
    assert result["compiled"]["compilations"] >= 1
    assert result["steady_saving_per_pass_s"] > 0
    assert result["break_even_passes"] is not None
    assert result["break_even_passes"] <= 10.0


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv[1:]
    res = run_compile_overhead(repeats=2 if smoke else REPEATS)
    _write_result(res)
    print(_report(res))
    assert res["compiled"]["compilations"] >= 1
    if not smoke:
        assert res["steady_saving_per_pass_s"] > 0, (
            "kernel compiler never beats the interpreted planner in steady "
            "state"
        )
