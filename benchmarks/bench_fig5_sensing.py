"""E1/E10 -- Fig. 5: reference placement and multi-row sensing limits.

Regenerates the resistance-case picture behind Fig. 5 and the Section 4.2
row limits (PCM 128-row OR, STT-MRAM 2-row), and benchmarks the margin
analysis itself.
"""

from repro.analysis.figures import fig5_data
from repro.nvm.margin import max_multirow_or
from repro.nvm.technology import get_technology


def _print_fig5(data) -> None:
    print(f"\nFig. 5 -- {data['technology']} reference placement")
    cases = data["cases"]
    for case in cases["read_cases"]:
        print(f"  read case {case.label:10s}: "
              f"[{case.lower:10.0f}, {case.upper:10.0f}] ohm")
    print(f"  Rref-read = {cases['ref_read']:.0f} ohm")
    for case in cases["or_cases"]:
        print(f"  2-row OR case {case.label:10s}: "
              f"[{case.lower:10.0f}, {case.upper:10.0f}] ohm")
    print(f"  Rref-or   = {cases['ref_or']:.0f} ohm")
    print(f"  max one-step OR rows: {data['max_or_rows']} "
          f"(electrical limit {data['electrical_or_limit']})")


def test_fig5_pcm_reference_placement(benchmark):
    data = benchmark(fig5_data, "pcm")
    _print_fig5(data)
    cases = data["cases"]
    # references must sit strictly between their closest cases
    one, zero = cases["read_cases"]
    assert one.upper < cases["ref_read"] < zero.lower
    assert data["max_or_rows"] == 128  # the paper's PCM assumption
    assert data["and_feasible"]
    # margins shrink with fan-in but stay positive through 128 rows
    margins = data["or_margins_log"]
    assert margins[2] > margins[8] > margins[32] > margins[128] > 0


def test_fig5_per_technology_row_limits(benchmark):
    limits = benchmark(
        lambda: {
            name: max_multirow_or(get_technology(name))
            for name in ("pcm", "reram", "stt")
        }
    )
    print(f"\nSection 4.2 row limits: {limits}")
    assert limits["pcm"] == 128
    assert limits["stt"] == 2  # conservative low-TMR limit
    assert 2 < limits["reram"] <= 128
