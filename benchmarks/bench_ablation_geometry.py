"""Ablation A2 -- geometry choices: SA mux ratio and row length.

The 32:1 column mux is why Fig. 9's turning point A sits at 2^14: one
rank senses row_bits/mux bits per step.  Sweeping the mux ratio moves the
point and trades SA area against sense serialisation; sweeping mats per
subarray moves point B's row size.
"""

import pytest

from repro.core.pinatubo import PinatuboSystem
from repro.memsim.geometry import MemoryGeometry


def geometry_with(mux_ratio=32, mats=16):
    return MemoryGeometry(mux_ratio=mux_ratio, mats_per_subarray=mats)


@pytest.fixture(scope="module")
def mux_sweep():
    """{mux: throughput GBps at 2^19, 2-row} -- the mux-bound regime."""
    out = {}
    for mux in (8, 16, 32, 64):
        system = PinatuboSystem.pcm(geometry=geometry_with(mux_ratio=mux))
        out[mux] = system.or_throughput(1 << 19, 2).throughput_gbps
    return out


def test_ablation_mux_table(mux_sweep, once):
    once(lambda: None)  # register with --benchmark-only
    print("\nAblation: SA mux ratio vs full-row 2-row OR throughput")
    for mux, gbps in mux_sweep.items():
        print(f"  mux {mux:3d}:1 -> {gbps:8.1f} GBps "
              f"(sense step = 2^19/{mux} bits)")


def test_ablation_fewer_shared_columns_is_faster(mux_sweep, once):
    """Smaller mux = more SAs = fewer serial sense steps."""
    once(lambda: None)  # register with --benchmark-only
    values = [mux_sweep[m] for m in (8, 16, 32, 64)]
    assert values == sorted(values, reverse=True)


def test_ablation_mux_moves_turning_point(once):
    """With mux 8, point A moves from 2^14 to 2^16."""
    once(lambda: None)  # register with --benchmark-only
    g = geometry_with(mux_ratio=8)
    assert g.sense_bits_per_step == 1 << 16
    assert g.sense_steps_for_bits(1 << 16) == 1
    assert g.sense_steps_for_bits((1 << 16) + 1) == 2


def test_ablation_mux_area_tradeoff(once):
    """The flip side: smaller mux multiplies SA count, and with it the
    and/or + xor add-on area."""
    once(lambda: None)  # register with --benchmark-only
    from repro.energy.area import AreaModel

    wide = AreaModel(geometry_with(mux_ratio=8))
    narrow = AreaModel(geometry_with(mux_ratio=32))
    assert (
        wide.pinatubo().components["xor"]
        == pytest.approx(4 * narrow.pinatubo().components["xor"])
    )


def test_ablation_row_length_moves_point_b(once):
    once(lambda: None)  # register with --benchmark-only
    short_rows = geometry_with(mats=8)  # rank row = 2^18
    assert short_rows.row_bits == 1 << 18
    assert short_rows.rows_for_bits(1 << 19) == 2


def test_ablation_geometry_bench(benchmark):
    def run():
        system = PinatuboSystem.pcm(geometry=geometry_with(mux_ratio=16))
        return system.or_throughput(1 << 16, 8)

    acct = benchmark(run)
    assert acct.throughput_gbps > 0
