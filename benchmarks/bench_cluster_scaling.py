"""Cluster scaling benchmark: 1 -> 4 -> 16 -> 64 nodes on the Zipf load.

The acceptance experiment for ``repro.cluster``: the same seeded
Zipf-skewed service load (16 tenants, open-loop Poisson arrivals at an
offered rate far above one node's capacity) runs against clusters of
1, 4, 16, and 64 nodes sharing one deterministic event loop.  The two
hottest (Zipf-head) tenants are registered 2-way replicated, so their
reads round-robin across replicas and wide range queries scatter.

Three properties are asserted:

- **equivalence**: the 1-node arm is byte-identical (per-node stats
  JSON, result dicts) to a standalone ``BitmapQueryService`` run of the
  identical spec -- the cluster layer adds routing, never behaviour;
- **correctness**: every completed read matches the numpy oracle on
  every arm (the stream is read-only, so final-state verification is
  exact);
- **scaling**: the 16-node arm delivers **>= 3x** the simulated ops/s
  of the 1-node arm (placement skew and the Zipf head cap it well below
  the ideal 16x).

Results (ops/s and p99 per node count) land in ``BENCH_cluster.json``
at the repo root.  Run directly
(``python benchmarks/bench_cluster_scaling.py [--smoke]``; smoke = 4
nodes max on a short stream, used by CI) or through pytest.
"""

import sys
import time
from pathlib import Path

from repro.backends.config import SystemConfig
from repro.cluster import ClusterConfig
from repro.core.pinatubo import PinatuboSystem
from repro.memsim.geometry import MemoryGeometry
from repro.nvm.technology import get_technology
from repro.runtime.api import PimRuntime
from repro.runtime.os_mm import PlacementPolicy
from repro.service import ServiceConfig, TenantQuota
from repro.service.engine import ResidentPimEngine
from repro.workloads.service_load import (
    ServiceLoadSpec,
    run_cluster_load,
    run_service_load,
)

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_cluster.json"

#: per-node memory: 4 channels x 4 banks, one subarray each -- the same
#: 16-shard geometry the service bench uses, replicated per node
GEOM = MemoryGeometry(
    channels=4,
    ranks_per_channel=1,
    chips_per_rank=1,
    banks_per_chip=4,
    subarrays_per_bank=1,
    rows_per_subarray=64,
    mats_per_subarray=1,
    cols_per_mat=1024,
    mux_ratio=8,
)

SYSTEM = SystemConfig(backend="pinatubo", placement="bank_spread")

#: Zipf-head tenants replicated on multi-node arms (reads fan out).
#: With zipf_s=1.0 over 32 tenants the top four carry ~half the
#: traffic; 4-way replication caps any single node at ~6% of the
#: stream, which is what lets the 16-node arm actually scale.
HEAD_TENANTS = 4
HEAD_REPLICAS = 4


def _spec(n_requests: int) -> ServiceLoadSpec:
    return ServiceLoadSpec(
        n_tenants=32,
        vectors_per_tenant=4,
        vector_bits=GEOM.row_bits,
        index_bins=8,
        index_events=GEOM.row_bits,
        n_requests=n_requests,
        # offered load >> even the 16-node capacity: every arm stays
        # backlogged, so ops/s measures service capacity, not arrivals
        arrival_rate_per_s=1e8,
        zipf_s=1.0,
        seed=42,
    )


def _engine(_node_id: int = 0) -> ResidentPimEngine:
    runtime = PimRuntime(
        PinatuboSystem(get_technology("pcm"), GEOM, batch_commands=True),
        policy=PlacementPolicy.BANK_SPREAD,
    )
    return ResidentPimEngine(SYSTEM, runtime=runtime)


def _service_config() -> ServiceConfig:
    return ServiceConfig(
        system=SYSTEM,
        max_batch=16,
        dispatch_overhead_s=1e-6,
        # throughput experiment: queues deep enough that nothing rejects
        default_quota=TenantQuota(max_pending=1 << 16),
    )


def _cluster_config(n_nodes: int) -> ClusterConfig:
    return ClusterConfig(
        n_nodes=n_nodes,
        service=_service_config(),
        scatter_fanin=4,
    )


def _one_arm(spec: ServiceLoadSpec, n_nodes: int) -> dict:
    t0 = time.perf_counter()
    router, stats = run_cluster_load(
        spec,
        _cluster_config(n_nodes),
        head_tenants=HEAD_TENANTS,
        head_replicas=HEAD_REPLICAS,
        engine_factory=_engine,
    )
    wall_s = time.perf_counter() - t0
    verified = router.verify_results()
    assert verified == stats.completed == spec.n_requests
    router.verify_replicas()
    return {
        "n_nodes": n_nodes,
        "completed": stats.completed,
        "scattered": stats.scattered,
        "replica_writes": stats.replica_writes,
        "sim_ops_per_s": stats.ops_per_s,
        "sim_makespan_s": stats.makespan_s,
        "p50_s": stats.latency.percentile(50),
        "p99_s": stats.latency.percentile(99),
        "energy_j": stats.energy_j,
        "oracle_verified": verified,
        "wall_s": wall_s,
    }, router


def _check_one_node_identity(spec: ServiceLoadSpec, router) -> bool:
    """The 1-node arm must reproduce the standalone service byte-for-byte."""
    service, stats = run_service_load(spec, _service_config(), engine=_engine())
    node0 = router.nodes[0].service
    assert stats.to_json() == node0.stats.to_json(), (
        "1-node cluster stats diverged from the standalone service"
    )
    single = [r.to_dict() for r in service.results]
    clustered = [r.to_dict() for r in router.results]
    assert single == clustered, (
        "1-node cluster results diverged from the standalone service"
    )
    return True


def run_cluster_benchmark(smoke: bool = False) -> dict:
    spec = _spec(n_requests=96 if smoke else 512)
    node_counts = (1, 4) if smoke else (1, 4, 16, 64)
    arms = {}
    routers = {}
    for n_nodes in node_counts:
        arms[str(n_nodes)], routers[n_nodes] = _one_arm(spec, n_nodes)
    identical = _check_one_node_identity(spec, routers[1])
    result = {
        "workload": {
            "n_tenants": spec.n_tenants,
            "n_requests": spec.n_requests,
            "arrival_rate_per_s": spec.arrival_rate_per_s,
            "zipf_s": spec.zipf_s,
            "head_tenants": HEAD_TENANTS,
            "head_replicas": HEAD_REPLICAS,
            "smoke": smoke,
        },
        "nodes": arms,
        "one_node_byte_identical": identical,
        "scaling_4x": arms["4"]["sim_ops_per_s"] / arms["1"]["sim_ops_per_s"],
    }
    if "16" in arms:
        result["scaling_16x"] = (
            arms["16"]["sim_ops_per_s"] / arms["1"]["sim_ops_per_s"]
        )
    if "64" in arms:
        # with 32 tenants the 64-node arm mostly measures that adding
        # nodes past the tenant count stays flat, not that it helps
        result["scaling_64x"] = (
            arms["64"]["sim_ops_per_s"] / arms["1"]["sim_ops_per_s"]
        )
    return result


def _write_result(result: dict) -> None:
    try:
        from benchmarks.bench_io import write_bench
    except ImportError:  # run as a script: the benchmarks dir is sys.path[0]
        from bench_io import write_bench

    write_bench(RESULT_PATH, "cluster_scaling", result)


def _report(result: dict) -> str:
    parts = []
    for n_nodes, arm in result["nodes"].items():
        parts.append(
            f"{n_nodes}n {arm['sim_ops_per_s']:.3e} ops/s "
            f"(p99 {arm['p99_s']:.2e}s)"
        )
    if "scaling_16x" in result:
        scale = f"16-node scaling {result['scaling_16x']:.1f}x"
        if "scaling_64x" in result:
            scale += f", 64-node scaling {result['scaling_64x']:.1f}x"
    else:
        scale = f"4-node scaling {result['scaling_4x']:.1f}x (smoke)"
    return (
        f"cluster scaling ({result['workload']['n_requests']} requests, "
        f"{result['workload']['n_tenants']} tenants): "
        + ", ".join(parts)
        + f", {scale} -> {RESULT_PATH.name}"
    )


def test_cluster_scaling(once):
    """16 nodes >= 3x simulated ops/s over 1 node on the Zipf load (64
    nodes must at least hold that), with the 1-node arm byte-identical
    to the standalone service; writes BENCH_cluster.json."""
    result = once(run_cluster_benchmark)
    _write_result(result)
    print()
    print(_report(result))
    assert result["one_node_byte_identical"]
    assert result["scaling_16x"] >= 3.0
    assert result["scaling_64x"] >= 3.0


if __name__ == "__main__":
    res = run_cluster_benchmark(smoke="--smoke" in sys.argv[1:])
    _write_result(res)
    print(_report(res))
    assert res["one_node_byte_identical"]
    if "scaling_16x" in res:
        assert res["scaling_16x"] >= 3.0, (
            f"cluster scaling regression: 16-node speedup "
            f"{res['scaling_16x']:.2f}x < 3x"
        )
    if "scaling_64x" in res:
        assert res["scaling_64x"] >= 3.0, (
            f"cluster scaling regression: 64-node speedup "
            f"{res['scaling_64x']:.2f}x < 3x"
        )
