"""Extension E12 -- channel-striped placement + overlapped chunks.

Beyond the paper: Fig. 9's turning point B exists because a long vector's
chunks execute serially.  With the CHANNEL_STRIPED placement policy and
``overlap_chunks=True`` the chunks run on different channels
concurrently, pushing point B out by the channel count.
"""

import numpy as np
import pytest

from repro.core.pinatubo import PinatuboSystem
from repro.memsim.geometry import MemoryGeometry
from repro.runtime.api import PimRuntime
from repro.runtime.os_mm import PlacementPolicy


GEOM = MemoryGeometry(
    channels=4,
    ranks_per_channel=1,
    chips_per_rank=1,
    banks_per_chip=2,
    subarrays_per_bank=8,
    rows_per_subarray=64,
    mats_per_subarray=2,
    cols_per_mat=4096,
    mux_ratio=32,
)


def run_long_or(policy, overlap, n_chunks=4, n_operands=8):
    rt = PimRuntime(PinatuboSystem.pcm(geometry=GEOM), policy=policy)
    n_bits = n_chunks * GEOM.row_bits
    rng = np.random.default_rng(2)
    operands = []
    for _ in range(n_operands):
        h = rt.pim_malloc(n_bits, "g")
        rt.pim_write(h, rng.integers(0, 2, n_bits).astype(np.uint8))
        operands.append(h)
    dest = rt.pim_malloc(n_bits, "g")
    result = rt.pim_op("or", dest, operands, overlap_chunks=overlap)
    return result


@pytest.fixture(scope="module")
def results():
    return {
        "serial (paper)": run_long_or(PlacementPolicy.PIM_AWARE, overlap=False),
        "striped+overlap": run_long_or(PlacementPolicy.CHANNEL_STRIPED, overlap=True),
    }


def test_extension_table(results, once):
    once(lambda: None)  # register with --benchmark-only
    print("\nExtension: 4-chunk 8-operand OR, serial vs channel-overlapped")
    for name, result in results.items():
        print(f"  {name:16s}: {result.latency * 1e9:9.1f} ns, "
              f"{result.energy * 1e9:9.2f} nJ")


def test_extension_near_linear_speedup(results, once):
    once(lambda: None)  # register with --benchmark-only
    gain = results["serial (paper)"].latency / results["striped+overlap"].latency
    assert gain > 2.5  # 4 channels, minus the shared MRS + batch overhead


def test_extension_energy_neutral(results, once):
    once(lambda: None)  # register with --benchmark-only
    assert results["striped+overlap"].energy == pytest.approx(
        results["serial (paper)"].energy, rel=0.05
    )


def test_extension_bench(benchmark):
    result = benchmark(
        lambda: run_long_or(PlacementPolicy.CHANNEL_STRIPED, overlap=True, n_operands=2)
    )
    assert result.latency > 0
