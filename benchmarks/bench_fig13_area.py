"""E8 -- Fig. 13: area overhead comparison and breakdown.

Pinatubo ~0.9 % of the PCM chip vs AC-PIM ~6.4 %, with the
inter-subarray buffer logic dominating Pinatubo's budget.
"""

import pytest

from repro.analysis.figures import fig13_data
from repro.energy.area import AreaModel


@pytest.fixture(scope="module")
def data():
    return fig13_data()


def test_fig13_table(data, once):
    once(lambda: None)  # register with --benchmark-only
    print(f"\nFig. 13 -- area overhead (fraction of chip area)")
    print(f"  Pinatubo: {data['pinatubo_fraction'] * 100:.2f}%  (paper 0.9%)")
    print(f"  AC-PIM  : {data['acpim_fraction'] * 100:.2f}%  (paper 6.4%)")
    print("  Pinatubo breakdown:")
    for component, fraction in data["pinatubo_breakdown"].items():
        print(f"    {component:>12s}: {fraction * 100:.3f}%")


def test_fig13_pinatubo_total(data, once):
    once(lambda: None)  # register with --benchmark-only
    assert data["pinatubo_fraction"] == pytest.approx(0.009, abs=0.002)


def test_fig13_acpim_total(data, once):
    once(lambda: None)  # register with --benchmark-only
    assert data["acpim_fraction"] == pytest.approx(0.064, abs=0.008)


def test_fig13_breakdown_matches_paper(data, once):
    once(lambda: None)  # register with --benchmark-only
    bd = data["pinatubo_breakdown"]
    assert bd["inter-sub"] == pytest.approx(0.0072, rel=0.15)
    assert bd["inter-bank"] == pytest.approx(0.0009, rel=0.2)
    assert bd["xor"] == pytest.approx(0.0006, rel=0.2)
    assert bd["wl act"] == pytest.approx(0.0005, rel=0.2)
    assert bd["and/or"] == pytest.approx(0.0002, rel=0.3)
    assert data["intra_subarray_fraction"] == pytest.approx(0.0013, rel=0.2)


def test_fig13_inter_sub_dominates(data, once):
    once(lambda: None)  # register with --benchmark-only
    assert next(iter(data["pinatubo_breakdown"])) == "inter-sub"


def test_fig13_model_speed(benchmark):
    model = AreaModel()
    report = benchmark(model.pinatubo)
    assert report.overhead_fraction > 0
