"""E7 -- Fig. 12: overall application speedup and energy saving.

The Amdahl picture: graph processing and FastBit with their full scalar
parts, per scheme, including the Ideal (zero-cost bitwise) ceiling.
"""

import pytest

from repro.analysis.figures import fig12_data
from benchmarks.conftest import bench_scale


@pytest.fixture(scope="module")
def data():
    return fig12_data(scale=bench_scale())


def _print_block(title, block):
    schemes = list(next(iter(block.values())))
    print(f"\n{title}")
    print(f"{'app':>16s} " + " ".join(f"{s:>14s}" for s in schemes))
    for app, row in block.items():
        print(f"{app:>16s} " + " ".join(f"{row[s]:>14.3f}" for s in schemes))


def test_fig12_tables(data, once):
    once(lambda: None)  # register with --benchmark-only
    _print_block("Fig. 12 -- overall speedup", data["speedup"])
    _print_block("Fig. 12 -- overall energy saving", data["energy"])
    for label, g in data["gmeans"].items():
        print(f"gmean[{label}]: "
              + ", ".join(f"{s}={v:.3f}" for s, v in g["speedup"].items()))


def test_fig12_pinatubo_near_ideal(data, once):
    """Paper: 'Pinatubo almost achieves the ideal acceleration'."""
    once(lambda: None)  # register with --benchmark-only
    for app in data["speedup"]:
        p = data["speedup"][app]["Pinatubo-128"]
        ideal = data["speedup"][app]["Ideal"]
        assert p >= 0.9 * ideal, app


def test_fig12_graph_gmean_in_paper_band(data, once):
    """Paper: graph apps improve ~1.15x (dblp up to 1.37x)."""
    once(lambda: None)  # register with --benchmark-only
    g = data["gmeans"]["graph"]["speedup"]["Pinatubo-128"]
    assert 1.02 <= g <= 1.45


def test_fig12_dblp_is_best_graph(data, once):
    once(lambda: None)  # register with --benchmark-only
    speedups = {
        app: row["Pinatubo-128"]
        for app, row in data["speedup"].items()
        if app.startswith("graph:")
    }
    assert max(speedups, key=speedups.get) == "graph:dblp"
    assert speedups["graph:dblp"] == pytest.approx(1.37, abs=0.15)


def test_fig12_loose_graphs_are_data_dependent(data, once):
    """Paper: eswiki/amazon spend their time searching for unvisited
    bit-vectors, capping the benefit."""
    once(lambda: None)  # register with --benchmark-only
    assert data["speedup"]["graph:eswiki"]["Pinatubo-128"] < 1.1
    assert data["speedup"]["graph:amazon"]["Pinatubo-128"] < (
        data["speedup"]["graph:dblp"]["Pinatubo-128"]
    )


def test_fig12_database_band(data, once):
    """Paper: database applications achieve ~1.29x overall."""
    once(lambda: None)  # register with --benchmark-only
    g = data["gmeans"]["fastbit"]["speedup"]["Pinatubo-128"]
    assert 1.1 <= g <= 1.4


def test_fig12_energy_tracks_speedup(data, once):
    """Paper: overall energy saving sits within a few percent of the
    overall speedup (1.11x vs 1.12x)."""
    once(lambda: None)  # register with --benchmark-only
    s = data["gmeans"]["all"]["speedup"]["Pinatubo-128"]
    e = data["gmeans"]["all"]["energy"]["Pinatubo-128"]
    assert e == pytest.approx(s, rel=0.15)
