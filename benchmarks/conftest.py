"""Shared configuration for the figure-regeneration benchmarks.

``REPRO_BENCH_SCALE`` (default 1.0) scales the application datasets:
1.0 reproduces the paper-size workloads (a few minutes for the full
suite); smaller values give quick smoke runs.
"""

import builtins
import os

import pytest


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@pytest.fixture(autouse=True)
def _tables_reach_the_terminal(capfd, monkeypatch):
    """Route every bench print past pytest's output capture.

    The whole point of these benchmarks is the regenerated figure tables;
    pytest would otherwise capture (and discard) them for passing tests.
    Each print call briefly suspends fd-level capture (a blanket
    fixture-scope suspension is undone when the test body starts).
    """
    real_print = builtins.print

    def passthrough(*args, **kwargs):
        with capfd.disabled():
            real_print(*args, **kwargs)

    monkeypatch.setattr(builtins, "print", passthrough)


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under the benchmark fixture.

    Shape-checking tests use this so they still execute (and report a
    single-round timing) under ``--benchmark-only``; heavy builders are
    lru-cached, so only the first test in a module pays the build.
    """

    def _once(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _once
