"""Planner benchmark: uncached vs interpreted-plan vs compiled-plan.

A repeated-subexpression FastBit workload -- a small pool of unique
conjunctive range queries replayed many times, exactly the shape a
dashboard or a multi-user bitmap service produces -- runs on three
identical systems:

- *uncached*: ``PimRuntime(plan=False)`` + ``PimFastBit.query_many``,
  the PR 1 batched engine (every request executes);
- *interpreted*: ``PimRuntime(plan=True, compile=False)``, the
  query-plan compiler CSE-folds duplicate range-ORs/ANDs and serves
  repeats from the write-invalidated sub-result cache, one Python pass
  per wave;
- *compiled*: ``PimRuntime(plan=True)`` (compile on by default), the
  kernel compiler additionally lowers recurring waves into flat
  preallocated programs and replays recurring cache-served runs
  without re-planning.

The planner arms are warmed with two unmeasured passes of the stream
(pass one populates the sub-result cache, pass two records the
resident replay state), then measured in steady state.  All three runs
must answer byte-identically; the planner arms must price identically
(simulated latency/energy within 1e-9 relative -- the compiled path is
an execution strategy, never a pricing change).  The headline claim,
guarded by ``check_bench_regression.py``, is that the compiled path
clears **10x the PR-5 uncached wall-clock baseline** (~220 queries/s
-> >= 2200 queries/s).  Results land in ``BENCH_plan.json`` at the
repo root.
"""

import sys
import time
from pathlib import Path

import numpy as np

from repro.apps.fastbit import RangeQuery
from repro.apps.fastbit_pim import PimFastBit
from repro.apps.star import ColumnSpec, synthetic_star_table
from repro.core.pinatubo import PinatuboSystem
from repro.memsim.geometry import MemoryGeometry
from repro.nvm.technology import get_technology
from repro.runtime.api import PimRuntime

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_plan.json"

#: the PR-5 uncached wall rate this machine class recorded (queries/s);
#: the compiled path must clear ten times this
PR5_UNCACHED_BASELINE = 220.0
COMPILED_TARGET_SPEEDUP = 10.0

#: planner arms must price identically to this relative tolerance
SIM_PARITY_RTOL = 1e-9

#: small rank rows (1024 bits) so the index bitmaps span 32 chunks
GEOM = MemoryGeometry(
    channels=1,
    ranks_per_channel=1,
    chips_per_rank=1,
    banks_per_chip=8,
    subarrays_per_bank=64,
    rows_per_subarray=128,
    mats_per_subarray=1,
    cols_per_mat=1024,
    mux_ratio=8,
)

N_CHUNKS = 32
N_EVENTS = N_CHUNKS * GEOM.row_bits  # 16384 events -> 16 rows per bitmap
POOL = 20  # unique queries
REPEATS = 8  # stream = POOL * REPEATS queries, pool order shuffled


def _query_pool(seed: int = 23) -> list:
    """POOL unique four-predicate range queries (ranges >= 2 bins)."""
    rng = np.random.default_rng(seed)
    pool = []
    for _ in range(POOL):
        predicates = []
        for spec in COLUMNS:
            lo = int(rng.integers(0, spec.n_bins - 2))
            hi = int(rng.integers(lo + 1, spec.n_bins))
            predicates.append((spec.name, lo, hi))
        pool.append(RangeQuery(tuple(predicates)))
    return pool


def _stream(pool: list, repeats: int, seed: int = 29) -> list:
    """The repeated-subexpression stream: every pool query, many times."""
    rng = np.random.default_rng(seed)
    stream = []
    for _ in range(repeats):
        order = rng.permutation(len(pool))
        stream.extend(pool[i] for i in order)
    return stream


COLUMNS = (
    ColumnSpec("energy", 16, "exponential"),
    ColumnSpec("pt", 8, "exponential"),
    ColumnSpec("eta", 8, "normal"),
    ColumnSpec("trigger", 8, "uniform"),
)


def _build_db(table, plan: bool, compile_: bool = True) -> PimFastBit:
    system = PinatuboSystem(get_technology("pcm"), GEOM, batch_commands=True)
    runtime = PimRuntime(system, plan=plan, compile=compile_)
    return PimFastBit(runtime, table)


def _run_arm(table, stream, plan: bool, compile_: bool, warm: bool,
             best_of: int = 1):
    """Build one arm, optionally warm it, and measure the stream.

    Warming runs the stream twice unmeasured: the first pass fills the
    sub-result cache (everything executes), the second runs all-serve
    waves so the kernel compiler records its resident replay state --
    the measured passes are then genuine steady state for both planner
    arms.  With ``best_of > 1`` the wall time is the minimum over that
    many measured passes (the ``timeit`` convention: the minimum is the
    scheduling-noise-free estimate); answers are identical across
    passes, so the last pass's results are returned.
    """
    db = _build_db(table, plan=plan, compile_=compile_)
    if warm:
        db.query_many(list(stream))
        db.query_many(list(stream))
    wall = None
    for _ in range(best_of):
        t0 = time.perf_counter()
        results = db.query_many(list(stream))
        elapsed = time.perf_counter() - t0
        wall = elapsed if wall is None else min(wall, elapsed)
    return db, results, wall


def _sim_totals(results) -> tuple:
    return (
        sum(r.latency for r in results),
        sum(r.energy for r in results),
    )


def _rel_close(a: float, b: float, rtol: float) -> bool:
    return abs(a - b) <= rtol * max(abs(a), abs(b), 1.0)


def run_plan_benchmark(repeats: int = REPEATS) -> dict:
    table = synthetic_star_table(N_EVENTS, columns=COLUMNS, seed=31)
    stream = _stream(_query_pool(), repeats)
    n_queries = len(stream)

    # -- uncached batched baseline (PR 1 engine, nothing to warm) ------------
    _, plain_results, plain_wall = _run_arm(
        table, stream, plan=False, compile_=True, warm=False
    )
    plain_sim, plain_energy = _sim_totals(plain_results)

    # -- interpreted planner (CSE + sub-result cache, no kernel compiler) ----
    db_interp, interp_results, interp_wall = _run_arm(
        table, stream, plan=True, compile_=False, warm=True, best_of=3
    )
    interp_sim, interp_energy = _sim_totals(interp_results)

    # -- compiled planner (kernel compiler + resident replay) ----------------
    db_comp, comp_results, comp_wall = _run_arm(
        table, stream, plan=True, compile_=True, warm=True, best_of=3
    )
    comp_sim, comp_energy = _sim_totals(comp_results)

    # byte-identical answers across all three arms
    plain_hits = [r.hits for r in plain_results]
    assert plain_hits == [r.hits for r in interp_results]
    assert plain_hits == [r.hits for r in comp_results]
    assert all(r.latency > 0 and r.energy > 0 for r in comp_results)
    # the compiled path is an execution strategy, not a pricing change:
    # simulated cost must match the interpreted planner to float noise
    assert _rel_close(comp_sim, interp_sim, SIM_PARITY_RTOL), (
        f"compiled sim latency {comp_sim!r} != interpreted {interp_sim!r}"
    )
    assert _rel_close(comp_energy, interp_energy, SIM_PARITY_RTOL), (
        f"compiled sim energy {comp_energy!r} != interpreted {interp_energy!r}"
    )

    interp_stats = db_interp.runtime.plan_stats
    comp_stats = db_comp.runtime.plan_stats
    comp_planner = db_comp.runtime.planner
    return {
        "workload": {
            "n_events": N_EVENTS,
            "chunks_per_vector": N_CHUNKS,
            "unique_queries": POOL,
            "n_queries": n_queries,
            "row_bits": GEOM.row_bits,
            "warmup_passes": 2,
            "smoke": repeats != REPEATS,
        },
        "uncached": {
            "wall_s": plain_wall,
            "queries_per_s": n_queries / plain_wall,
            "sim_latency_s": plain_sim,
            "sim_ops_per_s": n_queries / plain_sim,
        },
        "planned": {
            "wall_s": interp_wall,
            "queries_per_s": n_queries / interp_wall,
            "sim_latency_s": interp_sim,
            "sim_ops_per_s": n_queries / interp_sim,
            "plan": interp_stats.to_dict(),
            "cache": db_interp.runtime.planner.cache.to_dict(),
        },
        "compiled": {
            "wall_s": comp_wall,
            "queries_per_s": n_queries / comp_wall,
            "sim_latency_s": comp_sim,
            "sim_ops_per_s": n_queries / comp_sim,
            "plan": comp_stats.to_dict(),
            "cache": comp_planner.cache.to_dict(),
            "programs": comp_planner.programs.to_dict(),
        },
        "sim_speedup": plain_sim / interp_sim,
        "wall_speedup": plain_wall / interp_wall,
        "wall_speedup_compiled": plain_wall / comp_wall,
        "compiled_queries_per_s": n_queries / comp_wall,
        "pr5_uncached_baseline": PR5_UNCACHED_BASELINE,
        "compiled_vs_pr5_baseline": (
            (n_queries / comp_wall) / PR5_UNCACHED_BASELINE
        ),
    }


def _write_result(result: dict) -> None:
    try:
        from benchmarks.bench_io import write_bench
    except ImportError:  # run as a script: the benchmarks dir is sys.path[0]
        from bench_io import write_bench

    write_bench(RESULT_PATH, "plan_cache", result)


def _report(result: dict) -> str:
    plan = result["compiled"]["plan"]
    return (
        f"plan cache ({result['workload']['n_queries']} queries, "
        f"{result['workload']['unique_queries']} unique): "
        f"uncached {result['uncached']['queries_per_s']:.0f} q/s, "
        f"interpreted {result['planned']['queries_per_s']:.0f} q/s, "
        f"compiled {result['compiled']['queries_per_s']:.0f} q/s "
        f"(replays {plan['serve_replays']}, "
        f"{result['compiled_vs_pr5_baseline']:.1f}x the PR-5 baseline of "
        f"{result['pr5_uncached_baseline']:.0f} q/s) -> {RESULT_PATH.name}"
    )


def _check(result: dict, smoke: bool) -> None:
    assert result["sim_speedup"] >= 1.5, (
        f"planner regression: simulated speedup "
        f"{result['sim_speedup']:.2f}x < 1.5x"
    )
    if smoke:
        return  # wall-clock targets need the full stream to amortise
    assert result["wall_speedup"] >= 1.5, (
        f"planner regression: wall speedup "
        f"{result['wall_speedup']:.2f}x < 1.5x"
    )
    assert (
        result["compiled_vs_pr5_baseline"] >= COMPILED_TARGET_SPEEDUP
    ), (
        f"kernel compiler regression: compiled path at "
        f"{result['compiled_queries_per_s']:.0f} q/s, "
        f"{result['compiled_vs_pr5_baseline']:.1f}x the PR-5 baseline "
        f"(target {COMPILED_TARGET_SPEEDUP:.0f}x)"
    )


def test_plan_cache_speedup(once):
    """Interpreted planner >= 1.5x sim and wall; compiled path >= 10x
    the PR-5 uncached wall baseline; writes BENCH_plan.json."""
    result = once(run_plan_benchmark)
    _write_result(result)
    print()
    print(_report(result))
    _check(result, smoke=False)


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv[1:]
    res = run_plan_benchmark(repeats=2 if smoke else REPEATS)
    _write_result(res)
    print(_report(res))
    _check(res, smoke=smoke)
