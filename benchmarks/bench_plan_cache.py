"""Planner benchmark: CSE + sub-result cache vs the uncached batched path.

A repeated-subexpression FastBit workload -- a small pool of unique
conjunctive range queries replayed many times, exactly the shape a
dashboard or a multi-user bitmap service produces -- runs twice on
identical systems:

- *uncached*: ``PimRuntime(plan=False)`` + ``PimFastBit.query_many``,
  the PR 1 batched engine (every request executes);
- *planned*: ``PimRuntime(plan=True)``, the query-plan compiler
  CSE-folds duplicate range-ORs/ANDs within the stream and serves
  repeats from the write-invalidated sub-result cache at row-buffer-read
  price (no multi-row activation, no NVM write-back).

Both runs must answer identically; the benchmark asserts the planned
run is at least 1.5x faster in **simulated** ops/s (cached hits are
priced honestly, so this is a claim about the architecture) and at
least 1.5x faster in **wall-clock** queries/s (serving skips the
executor entirely, so this is a claim about the simulator).  Results
land in ``BENCH_plan.json`` at the repo root.
"""

import sys
import time
from pathlib import Path

import numpy as np

from repro.apps.fastbit import RangeQuery
from repro.apps.fastbit_pim import PimFastBit
from repro.apps.star import ColumnSpec, synthetic_star_table
from repro.core.pinatubo import PinatuboSystem
from repro.memsim.geometry import MemoryGeometry
from repro.nvm.technology import get_technology
from repro.runtime.api import PimRuntime

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_plan.json"

#: small rank rows (1024 bits) so the index bitmaps span 32 chunks
GEOM = MemoryGeometry(
    channels=1,
    ranks_per_channel=1,
    chips_per_rank=1,
    banks_per_chip=8,
    subarrays_per_bank=64,
    rows_per_subarray=128,
    mats_per_subarray=1,
    cols_per_mat=1024,
    mux_ratio=8,
)

N_CHUNKS = 32
N_EVENTS = N_CHUNKS * GEOM.row_bits  # 16384 events -> 16 rows per bitmap
POOL = 20  # unique queries
REPEATS = 8  # stream = POOL * REPEATS queries, pool order shuffled

COLUMNS = (
    ColumnSpec("energy", 16, "exponential"),
    ColumnSpec("pt", 8, "exponential"),
    ColumnSpec("eta", 8, "normal"),
    ColumnSpec("trigger", 8, "uniform"),
)


def _query_pool(seed: int = 23) -> list:
    """POOL unique four-predicate range queries (ranges >= 2 bins)."""
    rng = np.random.default_rng(seed)
    pool = []
    for _ in range(POOL):
        predicates = []
        for spec in COLUMNS:
            lo = int(rng.integers(0, spec.n_bins - 2))
            hi = int(rng.integers(lo + 1, spec.n_bins))
            predicates.append((spec.name, lo, hi))
        pool.append(RangeQuery(tuple(predicates)))
    return pool


def _stream(pool: list, repeats: int, seed: int = 29) -> list:
    """The repeated-subexpression stream: every pool query, many times."""
    rng = np.random.default_rng(seed)
    stream = []
    for _ in range(repeats):
        order = rng.permutation(len(pool))
        stream.extend(pool[i] for i in order)
    return stream


def _build_db(plan: bool, table) -> PimFastBit:
    system = PinatuboSystem(get_technology("pcm"), GEOM, batch_commands=True)
    runtime = PimRuntime(system, plan=plan)
    return PimFastBit(runtime, table)


def run_plan_benchmark(repeats: int = REPEATS) -> dict:
    table = synthetic_star_table(N_EVENTS, columns=COLUMNS, seed=31)
    stream = _stream(_query_pool(), repeats)
    n_queries = len(stream)

    # -- uncached batched baseline ------------------------------------------
    db_plain = _build_db(plan=False, table=table)
    t0 = time.perf_counter()
    plain_results = db_plain.query_many(stream)
    plain_wall = time.perf_counter() - t0
    plain_sim = sum(r.latency for r in plain_results)

    # -- planned (CSE + sub-result cache) -----------------------------------
    db_plan = _build_db(plan=True, table=table)
    t0 = time.perf_counter()
    plan_results = db_plan.query_many(stream)
    plan_wall = time.perf_counter() - t0
    plan_sim = sum(r.latency for r in plan_results)

    # identical answers, and every served request priced nonzero
    assert [r.hits for r in plain_results] == [r.hits for r in plan_results]
    assert all(r.latency > 0 and r.energy > 0 for r in plan_results)

    stats = db_plan.runtime.plan_stats
    cache = db_plan.runtime.planner.cache
    return {
        "workload": {
            "n_events": N_EVENTS,
            "chunks_per_vector": N_CHUNKS,
            "unique_queries": POOL,
            "n_queries": n_queries,
            "row_bits": GEOM.row_bits,
            "smoke": repeats != REPEATS,
        },
        "uncached": {
            "wall_s": plain_wall,
            "queries_per_s": n_queries / plain_wall,
            "sim_latency_s": plain_sim,
            "sim_ops_per_s": n_queries / plain_sim,
        },
        "planned": {
            "wall_s": plan_wall,
            "queries_per_s": n_queries / plan_wall,
            "sim_latency_s": plan_sim,
            "sim_ops_per_s": n_queries / plan_sim,
            "plan": stats.to_dict(),
            "cache": cache.to_dict(),
        },
        "sim_speedup": plain_sim / plan_sim,
        "wall_speedup": plain_wall / plan_wall,
    }


def _write_result(result: dict) -> None:
    try:
        from benchmarks.bench_io import write_bench
    except ImportError:  # run as a script: the benchmarks dir is sys.path[0]
        from bench_io import write_bench

    write_bench(RESULT_PATH, "plan_cache", result)


def _report(result: dict) -> str:
    plan = result["planned"]["plan"]
    return (
        f"plan cache ({result['workload']['n_queries']} queries, "
        f"{result['workload']['unique_queries']} unique): "
        f"uncached {result['uncached']['wall_s']:.2f}s, "
        f"planned {result['planned']['wall_s']:.2f}s, "
        f"served {plan['served']}/{plan['requests']} requests, "
        f"sim speedup {result['sim_speedup']:.2f}x, "
        f"wall speedup {result['wall_speedup']:.2f}x -> {RESULT_PATH.name}"
    )


def test_plan_cache_speedup(once):
    """Planner >= 1.5x in simulated ops/s AND wall-clock queries/s on the
    repeated-subexpression stream; writes BENCH_plan.json."""
    result = once(run_plan_benchmark)
    _write_result(result)
    print()
    print(_report(result))
    assert result["sim_speedup"] >= 1.5
    assert result["wall_speedup"] >= 1.5


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv[1:]
    res = run_plan_benchmark(repeats=2 if smoke else REPEATS)
    _write_result(res)
    print(_report(res))
    assert res["sim_speedup"] >= 1.5, (
        f"planner regression: simulated speedup {res['sim_speedup']:.2f}x < 1.5x"
    )
    if not smoke:
        assert res["wall_speedup"] >= 1.5, (
            f"planner regression: wall speedup {res['wall_speedup']:.2f}x < 1.5x"
        )
