"""Arithmetic/analytics benchmark: interpreted vs compiled kernel plans.

A repeated-query analytics workload -- a small pool of unique
filter+aggregate queries (bit-serial compares, mask AND, popcount
SUM/COUNT/histogram) replayed many times over one resident
:class:`~repro.apps.analytics.AnalyticsTable` -- runs on three
identical systems:

- *uncached*: ``PimRuntime(plan=False)``, every gate of every replay
  re-executes through the interpreted driver path;
- *interpreted*: ``PimRuntime(plan=True, compile=False)``, the planner
  CSE-folds the repeated compare ladders and serves replays from the
  sub-result cache, one Python pass per wave;
- *compiled*: ``PimRuntime(plan=True)``, the kernel compiler
  additionally lowers the recurring waves (including the popcount
  reductions) into flat numpy programs (whole-query analytics
  compilation off, so this arm isolates the wave compiler);
- *analytics*: the full stack -- on top of the compiled planner the
  :class:`~repro.arith.compile.AnalyticsCompiler` replays whole
  steady-state queries from shape-keyed programs with the comparison
  constants as runtime parameters.

All arms must answer every query identically (counts, sums, per-bin
histograms); the planner arms must price identically (simulated cost
is an execution-strategy invariant).  The headline claims, guarded by
``check_bench_regression.py``, are that the compiled path clears **5x
the uncompiled interpreter's wall throughput** and the analytics
programs clear **3x the compiled arm** on top of that.  Results land
in ``BENCH_arith.json`` at the repo root.
"""

import sys
import time
from pathlib import Path

import numpy as np

from repro.apps.analytics import AnalyticsTable
from repro.core.pinatubo import PinatuboSystem
from repro.memsim.geometry import MemoryGeometry
from repro.nvm.technology import get_technology
from repro.runtime.api import PimRuntime

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_arith.json"

#: the compiled planner must clear this multiple of the uncompiled
#: interpreter's wall throughput (the ISSUE 9 acceptance floor)
COMPILED_TARGET_SPEEDUP = 5.0

#: the whole-query analytics programs must clear this multiple of the
#: compiled arm's wall throughput (the ISSUE 10 acceptance floor)
ANALYTICS_TARGET_SPEEDUP = 3.0

#: planner arms must price identically to this relative tolerance
SIM_PARITY_RTOL = 1e-9

GEOM = MemoryGeometry(
    channels=1,
    ranks_per_channel=1,
    chips_per_rank=1,
    banks_per_chip=8,
    subarrays_per_bank=64,
    rows_per_subarray=128,
    mats_per_subarray=1,
    cols_per_mat=1024,
    mux_ratio=8,
)

N_ROWS = 32 * GEOM.row_bits  # 32768 table rows -> 32 chunks per plane
VALUE_BITS = 8
N_BINS = 8
POOL = 12  # unique queries
REPEATS = 10  # stream = POOL * REPEATS queries, pool order shuffled


def _dataset(seed: int = 17) -> dict:
    rng = np.random.default_rng(seed)
    return {
        "age": rng.integers(0, 1 << 6, N_ROWS).astype(np.int64),
        "income": rng.integers(0, 1 << VALUE_BITS, N_ROWS).astype(np.int64),
        "region": rng.integers(0, N_BINS, N_ROWS).astype(np.int64),
    }


def _query_pool(seed: int = 23) -> list:
    """POOL unique (filters, aggregate) specs over the three columns."""
    rng = np.random.default_rng(seed)
    pool = []
    for i in range(POOL):
        op = str(rng.choice(["lt", "le", "gt", "ge"]))
        threshold = int(rng.integers(8, 56))
        filters = [("cmp", "age", op, threshold)]
        if i % 2:
            lo = int(rng.integers(0, N_BINS - 1))
            hi = int(rng.integers(lo, N_BINS))
            filters.append(("range", "region", lo, hi - 1 if hi > lo else lo))
        aggregate = (("count",), ("sum", "income"), ("hist", "region"))[i % 3]
        pool.append((tuple(filters), aggregate))
    return pool


def _stream(pool: list, repeats: int, seed: int = 29) -> list:
    rng = np.random.default_rng(seed)
    stream = []
    for _ in range(repeats):
        order = rng.permutation(len(pool))
        stream.extend(pool[i] for i in order)
    return stream


def _build_table(
    data: dict, plan: bool, compile_: bool, analytics: bool = False
) -> AnalyticsTable:
    system = PinatuboSystem(get_technology("pcm"), GEOM, batch_commands=True)
    runtime = PimRuntime(system, plan=plan, compile=compile_)
    table = AnalyticsTable(runtime, N_ROWS, compile_analytics=analytics)
    table.load_column("age", data["age"], 6)
    table.load_column("income", data["income"], VALUE_BITS)
    table.load_index("region", data["region"], N_BINS)
    return table


def _play(table: AnalyticsTable, stream: list) -> list:
    return [
        table.filter(*filters).aggregate(aggregate)
        for filters, aggregate in stream
    ]


def _run_arm(data, stream, plan: bool, compile_: bool, warm: bool,
             best_of: int = 1, analytics: bool = False):
    """Build one arm, optionally warm it, and measure the stream.

    Warming runs the stream twice unmeasured (cache fill, then replay
    recording) so the measured passes are genuine steady state; with
    ``best_of > 1`` the wall time is the minimum over that many
    measured passes (the ``timeit`` convention).
    """
    table = _build_table(data, plan=plan, compile_=compile_, analytics=analytics)
    if warm:
        _play(table, stream)
        _play(table, stream)
    wall = None
    for _ in range(best_of):
        t0 = time.perf_counter()
        results = _play(table, stream)
        elapsed = time.perf_counter() - t0
        wall = elapsed if wall is None else min(wall, elapsed)
    return table, results, wall


def _answers(results) -> list:
    return [(r.popcount, r.value, r.groups) for r in results]


def _sim_totals(results) -> tuple:
    return (
        sum(r.latency_s for r in results),
        sum(r.energy_j for r in results),
    )


def _rel_close(a: float, b: float, rtol: float) -> bool:
    return abs(a - b) <= rtol * max(abs(a), abs(b), 1.0)


def run_arith_benchmark(repeats: int = REPEATS) -> dict:
    data = _dataset()
    stream = _stream(_query_pool(), repeats)
    n_queries = len(stream)

    # -- uncompiled interpreter (every replay re-executes) -------------------
    plain_table, plain_results, plain_wall = _run_arm(
        data, stream, plan=False, compile_=True, warm=False
    )
    plain_sim, plain_energy = _sim_totals(plain_results)

    # -- interpreted planner (CSE + sub-result cache) ------------------------
    interp_table, interp_results, interp_wall = _run_arm(
        data, stream, plan=True, compile_=False, warm=True, best_of=3
    )
    interp_sim, interp_energy = _sim_totals(interp_results)

    # -- compiled planner (flat numpy programs, incl. popcount replay) -------
    comp_table, comp_results, comp_wall = _run_arm(
        data, stream, plan=True, compile_=True, warm=True, best_of=3
    )
    comp_sim, comp_energy = _sim_totals(comp_results)

    # -- analytics programs (whole-query shape-keyed replay) -----------------
    ana_table, ana_results, ana_wall = _run_arm(
        data, stream, plan=True, compile_=True, warm=True, best_of=3,
        analytics=True,
    )
    ana_sim, ana_energy = _sim_totals(ana_results)

    # identical answers across all four arms, and against the oracle
    answers = _answers(plain_results)
    assert answers == _answers(interp_results)
    assert answers == _answers(comp_results)
    assert answers == _answers(ana_results)
    plain_table.verify()
    comp_table.verify()
    ana_table.verify()
    # the compiled path is an execution strategy, not a pricing change
    assert _rel_close(comp_sim, interp_sim, SIM_PARITY_RTOL), (
        f"compiled sim latency {comp_sim!r} != interpreted {interp_sim!r}"
    )
    assert _rel_close(comp_energy, interp_energy, SIM_PARITY_RTOL), (
        f"compiled sim energy {comp_energy!r} != interpreted {interp_energy!r}"
    )
    # ...and neither is whole-query replay: recorded steady-state pricing
    assert _rel_close(ana_sim, interp_sim, SIM_PARITY_RTOL), (
        f"analytics sim latency {ana_sim!r} != interpreted {interp_sim!r}"
    )
    assert _rel_close(ana_sim, comp_sim, SIM_PARITY_RTOL), (
        f"analytics sim latency {ana_sim!r} != compiled {comp_sim!r}"
    )
    assert _rel_close(ana_energy, interp_energy, SIM_PARITY_RTOL), (
        f"analytics sim energy {ana_energy!r} != interpreted {interp_energy!r}"
    )
    # the measured pass must actually have replayed (not fallen back)
    ana_stats = ana_table.compiler.stats
    assert ana_stats.replays >= n_queries, (
        f"analytics arm fell back to interpretation: only "
        f"{ana_stats.replays} replays over {n_queries} measured queries"
    )

    comp_planner = comp_table.runtime.planner
    return {
        "workload": {
            "n_rows": N_ROWS,
            "value_bits": VALUE_BITS,
            "n_bins": N_BINS,
            "unique_queries": POOL,
            "n_queries": n_queries,
            "row_bits": GEOM.row_bits,
            "warmup_passes": 2,
            "smoke": repeats != REPEATS,
        },
        "uncached": {
            "wall_s": plain_wall,
            "queries_per_s": n_queries / plain_wall,
            "sim_latency_s": plain_sim,
            "sim_ops_per_s": n_queries / plain_sim,
        },
        "planned": {
            "wall_s": interp_wall,
            "queries_per_s": n_queries / interp_wall,
            "sim_latency_s": interp_sim,
            "sim_ops_per_s": n_queries / interp_sim,
        },
        "compiled": {
            "wall_s": comp_wall,
            "queries_per_s": n_queries / comp_wall,
            "sim_latency_s": comp_sim,
            "sim_ops_per_s": n_queries / comp_sim,
            "plan": comp_table.runtime.plan_stats.to_dict(),
            "programs": comp_planner.programs.to_dict(),
        },
        "analytics": {
            "wall_s": ana_wall,
            "queries_per_s": n_queries / ana_wall,
            "sim_latency_s": ana_sim,
            "sim_ops_per_s": n_queries / ana_sim,
            "compiler": ana_table.compiler.to_dict(),
        },
        "sim_speedup": plain_sim / interp_sim,
        "wall_speedup": plain_wall / interp_wall,
        "wall_speedup_compiled": plain_wall / comp_wall,
        "compiled_queries_per_s": n_queries / comp_wall,
        "wall_speedup_analytics": comp_wall / ana_wall,
        "analytics_queries_per_s": n_queries / ana_wall,
    }


def _write_result(result: dict) -> None:
    try:
        from benchmarks.bench_io import write_bench
    except ImportError:  # run as a script: the benchmarks dir is sys.path[0]
        from bench_io import write_bench

    write_bench(RESULT_PATH, "arith", result)


def _report(result: dict) -> str:
    return (
        f"arith analytics ({result['workload']['n_queries']} queries, "
        f"{result['workload']['unique_queries']} unique, "
        f"{result['workload']['n_rows']} rows): "
        f"uncompiled {result['uncached']['queries_per_s']:.0f} q/s, "
        f"interpreted {result['planned']['queries_per_s']:.0f} q/s, "
        f"compiled {result['compiled']['queries_per_s']:.0f} q/s, "
        f"analytics {result['analytics']['queries_per_s']:.0f} q/s "
        f"(wall {result['wall_speedup_compiled']:.1f}x, "
        f"analytics {result['wall_speedup_analytics']:.1f}x over compiled, "
        f"sim {result['uncached']['sim_ops_per_s']:.0f} q/s) "
        f"-> {RESULT_PATH.name}"
    )


def _check(result: dict, smoke: bool) -> None:
    assert result["sim_speedup"] >= 1.0, (
        f"planner must never cost simulated time: "
        f"{result['sim_speedup']:.2f}x < 1.0x"
    )
    if smoke:
        return  # wall-clock targets need the full stream to amortise
    assert result["wall_speedup_compiled"] >= COMPILED_TARGET_SPEEDUP, (
        f"kernel compiler regression: compiled analytics at "
        f"{result['wall_speedup_compiled']:.1f}x the uncompiled "
        f"interpreter (target {COMPILED_TARGET_SPEEDUP:.0f}x)"
    )
    assert result["wall_speedup_analytics"] >= ANALYTICS_TARGET_SPEEDUP, (
        f"analytics program regression: whole-query replay at "
        f"{result['wall_speedup_analytics']:.1f}x the compiled arm "
        f"(target {ANALYTICS_TARGET_SPEEDUP:.0f}x)"
    )


def test_arith_speedup(once):
    """Compiled analytics >= 5x the uncompiled interpreter's wall
    throughput, byte-identical answers; writes BENCH_arith.json."""
    result = once(run_arith_benchmark)
    _write_result(result)
    print()
    print(_report(result))
    _check(result, smoke=False)


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv[1:]
    res = run_arith_benchmark(repeats=2 if smoke else REPEATS)
    _write_result(res)
    print(_report(res))
    _check(res, smoke=smoke)
