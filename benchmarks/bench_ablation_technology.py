"""Ablation A5 -- NVM technology choice (paper: "Pinatubo does not rely
on a certain NVM technology or cell structure").

Runs the same throughput point on PCM, ReRAM and STT-MRAM systems: the
architecture ports, the multi-row budget (set by the ON/OFF ratio) is
what changes.
"""

import pytest

from repro.core.pinatubo import PinatuboSystem


@pytest.fixture(scope="module")
def systems():
    return {
        "pcm": PinatuboSystem.pcm(),
        "reram": PinatuboSystem.reram(),
        "stt": PinatuboSystem.stt(),
    }


@pytest.fixture(scope="module")
def throughput(systems):
    out = {}
    for name in systems:
        system = {
            "pcm": PinatuboSystem.pcm,
            "reram": PinatuboSystem.reram,
            "stt": PinatuboSystem.stt,
        }[name]()
        n = min(system.max_or_rows, 128)
        acct = system.or_throughput(1 << 19, max(2, n))
        out[name] = (n, acct.throughput_gbps, acct.energy_per_bit)
    return out


def test_ablation_technology_table(systems, throughput, once):
    once(lambda: None)  # register with --benchmark-only
    print("\nAblation: technology choice at each one's best fan-in")
    for name, system in systems.items():
        n, gbps, epb = throughput[name]
        tech = system.technology
        print(f"  {tech.name:12s}: ON/OFF {tech.on_off_ratio:7.1f}, "
              f"max fan-in {system.max_or_rows:3d}, "
              f"best-OR {gbps:9.1f} GBps, {epb * 1e15:6.2f} fJ/bit")


def test_ablation_fanin_budgets(systems, once):
    once(lambda: None)  # register with --benchmark-only
    assert systems["pcm"].max_or_rows == 128
    assert 2 < systems["reram"].max_or_rows <= 128
    assert systems["stt"].max_or_rows == 2


def test_ablation_pcm_peak_throughput_wins(throughput, once):
    """More fan-in = more operand bits per activation."""
    once(lambda: None)  # register with --benchmark-only
    assert throughput["pcm"][1] > throughput["reram"][1] > throughput["stt"][1]


def test_ablation_all_technologies_functional(once):
    """Every technology executes a correct end-to-end OR."""
    once(lambda: None)  # register with --benchmark-only
    import numpy as np

    for ctor in (PinatuboSystem.pcm, PinatuboSystem.reram, PinatuboSystem.stt):
        system = ctor()
        rng = np.random.default_rng(1)
        a = rng.integers(0, 2, 4096).astype(np.uint8)
        b = rng.integers(0, 2, 4096).astype(np.uint8)
        system.memory.write_bits(0, a)
        system.memory.write_bits(1, b)
        system.bitwise("or", [2], [[0], [1]], 4096)
        np.testing.assert_array_equal(system.memory.read_bits(2, 4096), a | b)


def test_ablation_stt_bench(benchmark):
    def run():
        return PinatuboSystem.stt().or_throughput(1 << 16, 2)

    acct = benchmark(run)
    assert acct.throughput_gbps > 0
