"""Benchmark regression guard over the ``BENCH_*.json`` artifacts.

Compares every speedup recorded by the repo-root benchmark artifacts
against the committed baselines in ``benchmarks/bench_baselines.json``
and exits nonzero if any recorded value drops below ``THRESHOLD``
(80%) of its committed value.  Artifacts are matched by their ``bench``
header field (see :mod:`benchmarks.bench_io`); artifacts produced by a
``--smoke`` run carry ``workload.smoke`` and are skipped -- smoke
workloads are intentionally too small to reproduce the committed
speedups.

Usage::

    python benchmarks/check_bench_regression.py [--require-all]

``--require-all`` additionally fails when a baselined benchmark has no
(non-smoke) artifact at all -- what CI uses after running every bench.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: a recorded speedup may degrade to this fraction of its committed
#: value before the guard fails (noise margin for shared CI runners)
THRESHOLD = 0.8

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINES = Path(__file__).resolve().parent / "bench_baselines.json"


def check(require_all: bool = False) -> int:
    baselines = json.loads(BASELINES.read_text())
    artifacts = {}
    for path in sorted(REPO_ROOT.glob("BENCH_*.json")):
        data = json.loads(path.read_text())
        name = data.get("bench")
        if name is None:
            print(f"SKIP {path.name}: no 'bench' header (pre-schema artifact)")
            continue
        if data.get("workload", {}).get("smoke"):
            print(f"SKIP {path.name}: smoke-run artifact")
            continue
        artifacts[name] = (path.name, data)

    failures = []
    for bench, keys in baselines.items():
        if bench not in artifacts:
            line = f"no artifact for baselined bench {bench!r}"
            if require_all:
                failures.append(line)
            else:
                print(f"SKIP {bench}: {line}")
            continue
        fname, data = artifacts[bench]
        for key, committed in keys.items():
            recorded = data.get(key)
            if recorded is None:
                failures.append(f"{fname}: missing speedup key {key!r}")
                continue
            floor = THRESHOLD * committed
            status = "OK" if recorded >= floor else "FAIL"
            print(
                f"{status:4} {fname} {key}: recorded {recorded:.2f}x, "
                f"committed {committed:.2f}x (floor {floor:.2f}x)"
            )
            if recorded < floor:
                failures.append(
                    f"{fname}: {key} {recorded:.2f}x < "
                    f"{THRESHOLD:.0%} of committed {committed:.2f}x"
                )

    if failures:
        print("\nbenchmark regression guard FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nbenchmark regression guard passed")
    return 0


if __name__ == "__main__":
    sys.exit(check(require_all="--require-all" in sys.argv[1:]))
