"""Ablation A3 -- cell variation vs multi-row sensing capability.

The paper assumes "variation is well controlled so that no overlap
exists".  This ablation quantifies the assumption: how the supported
one-step OR fan-in degrades as lognormal resistance spread grows, and
how the design margin (corner sigmas) trades yield against fan-in.
"""

import pytest

from repro.nvm.margin import MarginAnalysis
from repro.nvm.technology import get_technology
from repro.nvm.variation import VariationModel


SIGMAS = (0.05, 0.15, 0.25, 0.35, 0.50)


@pytest.fixture(scope="module")
def sigma_sweep():
    pcm = get_technology("pcm")
    out = {}
    for sigma in SIGMAS:
        variation = VariationModel(pcm.sigma_log_r_low, sigma)
        out[sigma] = MarginAnalysis(pcm, variation).electrical_or_limit()
    return out


def test_ablation_sigma_table(sigma_sweep, once):
    once(lambda: None)  # register with --benchmark-only
    print("\nAblation: HRS variation (sigma of ln R) vs electrical OR limit")
    for sigma, limit in sigma_sweep.items():
        print(f"  sigma={sigma:.2f} -> {limit:5d} rows")


def test_ablation_more_variation_fewer_rows(sigma_sweep, once):
    once(lambda: None)  # register with --benchmark-only
    limits = [sigma_sweep[s] for s in SIGMAS]
    assert limits == sorted(limits, reverse=True)
    assert limits[0] > 128  # tight cells: beyond the TCAM cap
    assert limits[-1] < 128  # loose cells: the cap becomes electrical


def test_ablation_corner_margin_tradeoff(once):
    """Designing to more sigmas (higher yield) costs fan-in."""
    once(lambda: None)  # register with --benchmark-only
    pcm = get_technology("pcm")
    limits = {
        k: MarginAnalysis(
            pcm, VariationModel.for_technology(pcm, corner_sigmas=k)
        ).electrical_or_limit()
        for k in (3.0, 4.0, 5.0, 6.0)
    }
    print(f"\ncorner sigmas vs OR limit: {limits}")
    values = [limits[k] for k in (3.0, 4.0, 5.0, 6.0)]
    assert values == sorted(values, reverse=True)


def test_ablation_on_off_ratio_is_the_lever(once):
    """Across technologies the ON/OFF ratio sets the fan-in budget."""
    once(lambda: None)  # register with --benchmark-only
    limits = {}
    for name in ("pcm", "reram", "stt"):
        tech = get_technology(name)
        limits[tech.on_off_ratio] = MarginAnalysis(tech).electrical_or_limit()
    ratios = sorted(limits)
    assert [limits[r] for r in ratios] == sorted(limits.values())


def test_ablation_margin_speed(benchmark):
    pcm = get_technology("pcm")
    limit = benchmark(lambda: MarginAnalysis(pcm).electrical_or_limit())
    assert limit > 128
