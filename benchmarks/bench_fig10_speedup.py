"""E5 -- Fig. 10: bitwise-operation speedup normalised to SIMD.

Regenerates the full benchmark table (Vector specs, graphs, FastBit) for
S-DRAM, AC-PIM, Pinatubo-2 and Pinatubo-128, checks every qualitative
claim the paper makes about it, and benchmarks trace pricing.
"""

import pytest

from repro.analysis.figures import fig10_data, workload_traces
from repro.analysis.report import format_speedup_table
from repro.backends import SystemConfig, build_system
from benchmarks.conftest import bench_scale


@pytest.fixture(scope="module")
def data():
    return fig10_data(scale=bench_scale())


def test_fig10_table(data, once):
    once(lambda: None)  # register with --benchmark-only
    print()
    print(format_speedup_table(
        "Fig. 10 -- bitwise speedup over SIMD", data
    ))


def test_fig10_pinatubo128_wins_gmean(data, once):
    once(lambda: None)  # register with --benchmark-only
    g = data["gmean"]
    assert g["Pinatubo-128"] > g["S-DRAM"]
    assert g["Pinatubo-128"] > g["AC-PIM"]
    assert g["Pinatubo-128"] > g["Pinatubo-2"]


def test_fig10_sdram_beats_p2_on_long_vectors(data, once):
    """Paper: S-DRAM benefits from its larger (unmuxed) row buffers on
    very long sequential bit-vectors."""
    once(lambda: None)  # register with --benchmark-only
    assert data["vector:19-16-1s"]["S-DRAM"] > data["vector:19-16-1s"]["Pinatubo-2"]


def test_fig10_multirow_dominates(data, once):
    """Paper: the advantage of NVM's multi-row operations dominates;
    Pinatubo-128 is ~22x faster than S-DRAM overall."""
    once(lambda: None)  # register with --benchmark-only
    ratio = data["gmean"]["Pinatubo-128"] / data["gmean"]["S-DRAM"]
    assert ratio > 5


def test_fig10_random_access_collapse(data, once):
    """Paper: 14-16-7r is dominated by inter-subarray/bank operations,
    so Pinatubo-128 is as slow as Pinatubo-2."""
    once(lambda: None)  # register with --benchmark-only
    row = data["vector:14-16-7r"]
    assert row["Pinatubo-128"] == pytest.approx(row["Pinatubo-2"], rel=1e-9)


def test_fig10_multirow_specs_shine(data, once):
    """The 2^7-row specs are where one-step multi-row activation pays."""
    once(lambda: None)  # register with --benchmark-only
    assert data["vector:19-16-7s"]["Pinatubo-128"] > 100
    assert (
        data["vector:19-16-7s"]["Pinatubo-128"]
        > 50 * data["vector:19-16-7s"]["Pinatubo-2"]
    )


def test_fig10_headline_order_of_magnitude(data, once):
    """Paper headline: ~500x speedup on bitwise operations.  Our SIMD
    baseline is an optimistic streaming roofline, so the gmean lands
    lower; the marquee multi-row benchmarks land in the paper's range."""
    once(lambda: None)  # register with --benchmark-only
    assert data["gmean"]["Pinatubo-128"] > 20
    assert data["vector:19-16-7s"]["Pinatubo-128"] == pytest.approx(500, rel=0.5)


def test_fig10_pricing_speed(benchmark):
    traces = workload_traces(bench_scale())
    p128 = build_system(SystemConfig(backend="pinatubo"))
    trace = traces["fastbit:240"]
    cost = benchmark(trace.price, p128)
    assert cost.bitwise_latency > 0
