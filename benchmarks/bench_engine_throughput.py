"""Engine microbenchmark: batched vs per-command pricing throughput.

The perf-regression harness for the batched execution engine.  A fixed
FastBit workload -- bitmap vectors spanning **64 rank-row chunks**, a
stream of **100 conjunctive range queries** -- runs twice on identical
systems:

- *per-command*: ``batch_commands=False``, one ``MemoryController.
  execute`` call per combine step per chunk (the pre-batching engine);
- *batched*: ``batch_commands=True`` + ``PimFastBit.query_many``, one
  ``execute_batch`` per logical operation / query stream.

Both produce identical hits and identical simulated cost (locked by
``tests/core/test_batch_equivalence.py``); this benchmark measures the
*simulator's own* wall-clock throughput (simulated ops/second and
commands/second) and asserts the batched engine is at least 3x faster.
Results land in ``BENCH_engine.json`` at the repo root.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.apps.fastbit import RangeQuery
from repro.apps.fastbit_pim import PimFastBit
from repro.apps.star import ColumnSpec, synthetic_star_table
from repro.core.pinatubo import PinatuboSystem
from repro.memsim.geometry import MemoryGeometry
from repro.nvm.technology import get_technology
from repro.runtime.api import PimRuntime

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

#: small rank rows (1024 bits) so the index bitmaps span exactly 64 chunks
GEOM = MemoryGeometry(
    channels=1,
    ranks_per_channel=1,
    chips_per_rank=1,
    banks_per_chip=8,
    subarrays_per_bank=32,
    rows_per_subarray=128,
    mats_per_subarray=1,
    cols_per_mat=1024,
    mux_ratio=8,
)

N_CHUNKS = 64
N_EVENTS = N_CHUNKS * GEOM.row_bits  # 65536 events -> 64 rows per bitmap
N_QUERIES = 100

COLUMNS = (
    ColumnSpec("energy", 16, "exponential"),
    ColumnSpec("charge", 8, "normal"),
)


def _queries(seed: int = 17) -> list:
    """100 two-predicate range queries (ranges >= 2 bins wide)."""
    rng = np.random.default_rng(seed)
    queries = []
    for _ in range(N_QUERIES):
        predicates = []
        for spec in COLUMNS:
            lo = int(rng.integers(0, spec.n_bins - 2))
            hi = int(rng.integers(lo + 1, spec.n_bins))
            predicates.append((spec.name, lo, hi))
        queries.append(RangeQuery(tuple(predicates)))
    return queries


def _build_db(batch_commands: bool, table) -> PimFastBit:
    system = PinatuboSystem(
        get_technology("pcm"), GEOM, batch_commands=batch_commands
    )
    runtime = PimRuntime(system)
    return PimFastBit(runtime, table)


def _run_engine_benchmark() -> dict:
    from repro.memsim.controller import perf_counters

    table = synthetic_star_table(N_EVENTS, columns=COLUMNS, seed=11)
    queries = _queries()

    # -- per-command baseline (legacy engine) -------------------------------
    db_legacy = _build_db(batch_commands=False, table=table)
    c0 = perf_counters.scalar_commands
    t0 = time.perf_counter()
    legacy_results = db_legacy.run_workload(queries)
    legacy_s = time.perf_counter() - t0
    legacy_commands = perf_counters.scalar_commands - c0

    # -- batched engine -----------------------------------------------------
    db_batched = _build_db(batch_commands=True, table=table)
    c0 = perf_counters.batch_commands
    t0 = time.perf_counter()
    batched_results = db_batched.query_many(queries)
    batched_s = time.perf_counter() - t0
    batched_commands = perf_counters.batch_commands - c0

    # both engines must answer identically
    assert [r.hits for r in legacy_results] == [r.hits for r in batched_results]

    sim_ops = sum(r.in_memory_steps for r in batched_results)
    result = {
        "workload": {
            "n_events": N_EVENTS,
            "chunks_per_vector": N_CHUNKS,
            "n_queries": N_QUERIES,
            "row_bits": GEOM.row_bits,
        },
        "per_command": {
            "wall_s": legacy_s,
            "commands_priced": legacy_commands,
            "queries_per_s": N_QUERIES / legacy_s,
            "commands_per_s": legacy_commands / legacy_s,
            "sim_ops_per_s": sim_ops / legacy_s,
        },
        "batched": {
            "wall_s": batched_s,
            "commands_priced": batched_commands,
            "queries_per_s": N_QUERIES / batched_s,
            "commands_per_s": batched_commands / batched_s,
            "sim_ops_per_s": sim_ops / batched_s,
        },
        "speedup": legacy_s / batched_s,
    }
    return result


def _write_result(result: dict) -> None:
    try:
        from benchmarks.bench_io import write_bench
    except ImportError:  # run as a script: the benchmarks dir is sys.path[0]
        from bench_io import write_bench

    write_bench(RESULT_PATH, "engine_throughput", result)


def test_engine_throughput(once):
    """Batched engine >= 3x the per-command engine on the 64-chunk,
    100-query FastBit stream; writes BENCH_engine.json."""
    result = once(_run_engine_benchmark)
    _write_result(result)
    print()
    print(
        f"engine throughput: per-command {result['per_command']['wall_s']:.2f}s "
        f"({result['per_command']['commands_per_s']:.0f} cmd/s), "
        f"batched {result['batched']['wall_s']:.2f}s "
        f"({result['batched']['commands_per_s']:.0f} cmd/s), "
        f"speedup {result['speedup']:.1f}x -> {RESULT_PATH.name}"
    )
    assert result["speedup"] >= 3.0


if __name__ == "__main__":
    res = _run_engine_benchmark()
    _write_result(res)
    print(json.dumps(res, indent=2))
    assert res["speedup"] >= 3.0, "batched engine regression: speedup < 3x"
