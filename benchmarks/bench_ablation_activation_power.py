"""Ablation A9 -- activation-rate limits on multi-row operation.

The paper's multi-row activation latches addresses at command rate,
which assumes NVM row activation (a wordline swing, no restore current)
does not stress power delivery.  A conservative design might still
impose a DRAM-like tRRD floor between activates; this ablation shows how
fast the 128-row advantage erodes as that floor grows -- and that even
with DDR3's own tRRD (6 ns) the multi-row OR stays far ahead.
"""

import dataclasses

import pytest

from repro.core.model import PinatuboModel
from repro.memsim.timing import nvm_timing
from repro.nvm.technology import get_technology


RRD_VALUES = (0.0, 2e-9, 6e-9, 15e-9, 30e-9)


def model_with_rrd(t_rrd, max_rows=None):
    timing = dataclasses.replace(
        nvm_timing(get_technology("pcm")), t_rrd=t_rrd
    )
    model = PinatuboModel(max_rows=max_rows)
    # swap in the paced timing
    model.timing = timing
    model.controller.timing = timing
    for bus in model.controller.buses:
        bus.timing = timing
    return model


@pytest.fixture(scope="module")
def sweep():
    out = {}
    for t_rrd in RRD_VALUES:
        cost = model_with_rrd(t_rrd).bitwise_cost("or", 128, 1 << 19)
        out[t_rrd] = cost.latency
    return out


def test_ablation_rrd_table(sweep, once):
    once(lambda: None)  # register with --benchmark-only
    base = sweep[0.0]
    print("\nAblation: activate-to-activate floor vs 128-row OR latency")
    for t_rrd, latency in sweep.items():
        print(f"  tRRD {t_rrd * 1e9:5.1f} ns: {latency * 1e6:7.3f} us "
              f"({latency / base:5.2f}x the unconstrained design)")


def test_ablation_latency_monotone_in_rrd(sweep, once):
    once(lambda: None)  # register with --benchmark-only
    latencies = [sweep[v] for v in RRD_VALUES]
    assert latencies == sorted(latencies)


def test_ablation_command_rate_floor_is_free(sweep, once):
    """tRRD at or below the command slot changes nothing."""
    once(lambda: None)  # register with --benchmark-only
    assert sweep[0.0] == pytest.approx(sweep[RRD_VALUES[1]] , rel=0.25)
    tiny = model_with_rrd(1e-9).bitwise_cost("or", 128, 1 << 19).latency
    assert tiny == pytest.approx(sweep[0.0], rel=1e-9)


def test_ablation_multirow_survives_ddr3_rrd(once):
    """Even paced at DDR3's tRRD, the one-step 128-row OR crushes the
    2-row decomposition."""
    once(lambda: None)  # register with --benchmark-only
    paced_128 = model_with_rrd(6e-9).bitwise_cost("or", 128, 1 << 19)
    unpaced_2 = model_with_rrd(0.0, max_rows=2).bitwise_cost("or", 128, 1 << 19)
    assert unpaced_2.latency / paced_128.latency > 20


def test_ablation_rrd_bench(benchmark):
    model = model_with_rrd(6e-9)
    cost = benchmark(model.bitwise_cost, "or", 128, 1 << 19)
    assert cost.latency > 0
