"""Ablation A4 -- the PIM-aware allocator's worth (paper Section 5).

Runs identical operation sequences on the *functional* runtime under the
PIM-aware placement policy vs a conventional bank-interleaving OS, and
measures the latency/energy gap.  This is the end-to-end justification
for the paper's OS/memory-management support.
"""

import numpy as np
import pytest

from repro.core.pinatubo import PinatuboSystem
from repro.memsim.address import OpLocality
from repro.memsim.geometry import MemoryGeometry
from repro.runtime.api import PimRuntime
from repro.runtime.os_mm import PlacementPolicy


GEOM = MemoryGeometry(
    channels=1,
    ranks_per_channel=1,
    chips_per_rank=1,
    banks_per_chip=4,
    subarrays_per_bank=8,
    rows_per_subarray=64,
    mats_per_subarray=1,
    cols_per_mat=4096,
    mux_ratio=32,
)


def run_workload(policy, n_ops=16, n_operands=8):
    rt = PimRuntime(PinatuboSystem.pcm(geometry=GEOM), policy=policy)
    rng = np.random.default_rng(5)
    localities = {}
    for i in range(n_ops):
        group = f"op{i}"
        operands = []
        for _ in range(n_operands):
            h = rt.pim_malloc(GEOM.row_bits, group)
            rt.pim_write(h, rng.integers(0, 2, GEOM.row_bits).astype(np.uint8))
            operands.append(h)
        dest = rt.pim_malloc(GEOM.row_bits, group)
        result = rt.pim_op("or", dest, operands)
        for loc, n in result.localities.items():
            localities[loc] = localities.get(loc, 0) + n
    return rt.pim_accounting, localities


@pytest.fixture(scope="module")
def results():
    return {
        "pim_aware": run_workload(PlacementPolicy.PIM_AWARE),
        "interleaved": run_workload(PlacementPolicy.INTERLEAVED),
    }


def test_ablation_placement_table(results, once):
    once(lambda: None)  # register with --benchmark-only
    print("\nAblation: allocator placement policy (functional runtime)")
    for name, (acct, localities) in results.items():
        locs = {k.value: v for k, v in localities.items()}
        print(f"  {name:12s}: latency {acct.latency * 1e6:8.1f} us, "
              f"energy {acct.energy * 1e6:8.2f} uJ, localities {locs}")


def test_ablation_pim_aware_is_intra_subarray(results, once):
    once(lambda: None)  # register with --benchmark-only
    _acct, localities = results["pim_aware"]
    assert set(localities) == {OpLocality.INTRA_SUBARRAY}


def test_ablation_interleaved_degrades(results, once):
    once(lambda: None)  # register with --benchmark-only
    _acct, localities = results["interleaved"]
    assert OpLocality.INTRA_SUBARRAY not in localities


def test_ablation_placement_latency_gap(results, once):
    """The whole point of Section 5: placement buys multi-row one-step
    execution; scattering costs per-operand buffer reads."""
    once(lambda: None)  # register with --benchmark-only
    aware, _ = results["pim_aware"]
    scattered, _ = results["interleaved"]
    assert scattered.latency > 2 * aware.latency


def test_ablation_placement_bench(benchmark):
    acct, _ = benchmark(lambda: run_workload(PlacementPolicy.PIM_AWARE, n_ops=2))
    assert acct.latency > 0
