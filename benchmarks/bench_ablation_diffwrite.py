"""Ablation A8 -- differential write-back and result emission paths.

PCM programming dominates a small op's energy (see the breakdown in
`examples/design_space.py`), so two executor design choices matter:

- *differential write*: only the result bits that actually change are
  pulsed.  Random data flips ~half; structured results (bitmap masks,
  repeated queries) flip far fewer; a repeated identical op flips none.
- *I/O-bus emission*: results consumed by the host (e.g. a popcount)
  need never be programmed at all.
"""

import numpy as np
import pytest

from repro.core.pinatubo import PinatuboSystem
from repro.memsim.controller import CommandKind
from repro.memsim.geometry import MemoryGeometry
from repro.runtime.api import PimRuntime


GEOM = MemoryGeometry(
    channels=1,
    ranks_per_channel=1,
    chips_per_rank=1,
    banks_per_chip=2,
    subarrays_per_bank=8,
    rows_per_subarray=64,
    mats_per_subarray=2,
    cols_per_mat=4096,
    mux_ratio=32,
)


def fresh_runtime():
    return PimRuntime(PinatuboSystem.pcm(geometry=GEOM))


def load_pair(rt, seed=0):
    rng = np.random.default_rng(seed)
    a = rt.pim_malloc(GEOM.row_bits, "g")
    b = rt.pim_malloc(GEOM.row_bits, "g")
    rt.pim_write(a, rng.integers(0, 2, GEOM.row_bits).astype(np.uint8))
    rt.pim_write(b, rng.integers(0, 2, GEOM.row_bits).astype(np.uint8))
    return a, b


@pytest.fixture(scope="module")
def measurements():
    out = {}
    rt = fresh_runtime()
    a, b = load_pair(rt)
    dest = rt.pim_malloc(GEOM.row_bits, "g")
    out["first (cold dest)"] = rt.pim_op("or", dest, [a, b])
    out["repeat (same result)"] = rt.pim_op("or", dest, [a, b])
    rt2 = fresh_runtime()
    a2, b2 = load_pair(rt2)
    scratch2 = rt2.pim_malloc(GEOM.row_bits, "g")
    rt2.pim_op_to_host("or", scratch2, [a2, b2])
    out["emit to host"] = rt2.pim_accounting
    return out


def _energy(entry):
    return getattr(entry, "energy", None) or entry.energy


def test_ablation_diffwrite_table(measurements, once):
    once(lambda: None)  # register with --benchmark-only
    print("\nAblation: write-back energy per emission strategy (2-row OR)")
    for name, entry in measurements.items():
        acct = getattr(entry, "accounting", entry)
        wb = acct.energy_by_kind.get(CommandKind.PIM_WRITEBACK, 0.0)
        print(f"  {name:22s}: total {acct.energy * 1e9:8.2f} nJ, "
              f"writeback {wb * 1e9:8.2f} nJ")


def test_ablation_repeat_op_writes_nothing(measurements, once):
    once(lambda: None)  # register with --benchmark-only
    first = measurements["first (cold dest)"].accounting
    repeat = measurements["repeat (same result)"].accounting
    wb_first = first.energy_by_kind[CommandKind.PIM_WRITEBACK]
    wb_repeat = repeat.energy_by_kind.get(CommandKind.PIM_WRITEBACK, 0.0)
    assert wb_repeat == 0.0
    assert wb_first > 0.0
    assert repeat.energy < first.energy / 2


def test_ablation_host_emission_skips_programming(measurements, once):
    once(lambda: None)  # register with --benchmark-only
    host = measurements["emit to host"]
    assert CommandKind.PIM_WRITEBACK not in host.energy_by_kind
    assert host.bus_data_bytes >= GEOM.row_bytes


def test_ablation_structured_data_flips_less(once):
    """Bitmap-style structured results (mostly zero) cost far less to
    program than random ones."""
    once(lambda: None)  # register with --benchmark-only
    rng = np.random.default_rng(1)

    def run(density):
        rt = fresh_runtime()
        a = rt.pim_malloc(GEOM.row_bits, "g")
        b = rt.pim_malloc(GEOM.row_bits, "g")
        bits_a = (rng.random(GEOM.row_bits) < density).astype(np.uint8)
        bits_b = (rng.random(GEOM.row_bits) < density).astype(np.uint8)
        rt.pim_write(a, bits_a)
        rt.pim_write(b, bits_b)
        dest = rt.pim_malloc(GEOM.row_bits, "g")
        result = rt.pim_op("and", dest, [a, b])
        return result.accounting.energy_by_kind.get(
            CommandKind.PIM_WRITEBACK, 0.0
        )

    sparse = run(0.01)  # AND of two sparse bitmaps: almost no set bits
    dense = run(0.5)
    assert sparse < dense / 10


def test_ablation_diffwrite_bench(benchmark):
    def run():
        rt = fresh_runtime()
        a, b = load_pair(rt)
        dest = rt.pim_malloc(GEOM.row_bits, "g")
        return rt.pim_op("or", dest, [a, b])

    result = benchmark(run)
    assert result.energy > 0
