"""Ablation A7 -- software compression (WAH) vs in-memory parallelism.

FastBit's classic answer to bitmap cost is WAH compression: logical ops
walk compressed words and skip fills.  Pinatubo's answer is operating on
uncompressed rows at full array parallelism.  This ablation runs a
FastBit-style OR primitive both ways and shows where each wins:
compression thrives on sparse bin bitmaps, and stops helping exactly
where the bitmaps (or intermediates) turn dense.
"""

import pytest

from repro.apps.fastbit import BitmapIndex
from repro.apps.star import synthetic_star_table
from repro.apps.wah import wah_encode, wah_or
from repro.baselines.simd import SimdCpu
from repro.core.model import PinatuboModel

N_EVENTS = 31 * 4096  # ~127 Kbit bitmaps
N_BINS = 128

#: CPU cost of one WAH word through the branchy merge loop (~7 cycles)
WAH_SECONDS_PER_WORD = 7 / 3.3e9


@pytest.fixture(scope="module")
def index():
    table = synthetic_star_table(N_EVENTS, seed=11)
    return BitmapIndex(table.bin_indices("energy"), N_BINS)


def wah_pair_or_cost(index, a, b):
    """Seconds for one compressed-domain OR of two bin bitmaps."""
    wa = wah_encode(index.bitmap(a))
    wb = wah_encode(index.bitmap(b))
    result = wah_or(wa, wb)
    words = len(wa) + len(wb) + len(result)
    return words * WAH_SECONDS_PER_WORD, result


@pytest.fixture(scope="module")
def costs(index):
    cpu = SimdCpu.with_pcm()
    p128 = PinatuboModel()
    out = {}
    for label, a, b in (("sparse bins 121|122", 121, 122),
                        ("dense bins 0|1", 0, 1)):
        t_wah, _ = wah_pair_or_cost(index, a, b)
        t_plain = cpu.bitwise_cost("or", 2, N_EVENTS).latency
        t_pim = p128.bitwise_cost("or", 2, N_EVENTS).latency
        out[label] = {"WAH-CPU": t_wah, "plain-CPU": t_plain, "Pinatubo-128": t_pim}
    return out


def test_ablation_compression_table(costs, once):
    once(lambda: None)  # register with --benchmark-only
    print("\nAblation: FastBit range-OR, compressed CPU vs plain CPU vs PIM")
    for label, row in costs.items():
        print(f"  {label}:")
        for scheme, seconds in row.items():
            print(f"    {scheme:14s}: {seconds * 1e6:9.2f} us")


def test_ablation_wah_helps_cpu_on_sparse(costs, once):
    once(lambda: None)  # register with --benchmark-only
    sparse = costs["sparse bins 121|122"]
    assert sparse["WAH-CPU"] < sparse["plain-CPU"]


def test_ablation_wah_fades_on_dense(costs, once):
    """Wide ORs over the dense head produce dense intermediates; the
    compressed walk approaches (or exceeds) the plain streaming cost."""
    once(lambda: None)  # register with --benchmark-only
    dense = costs["dense bins 0|1"]
    sparse = costs["sparse bins 121|122"]
    gain_dense = dense["plain-CPU"] / dense["WAH-CPU"]
    gain_sparse = sparse["plain-CPU"] / sparse["WAH-CPU"]
    assert gain_dense < gain_sparse


def test_ablation_pinatubo_beats_both_everywhere(costs, once):
    once(lambda: None)  # register with --benchmark-only
    for label, row in costs.items():
        assert row["Pinatubo-128"] < row["WAH-CPU"], label
        assert row["Pinatubo-128"] < row["plain-CPU"], label


def test_ablation_wah_op_speed(benchmark, index):
    a = wah_encode(index.bitmap(100))
    b = wah_encode(index.bitmap(101))
    result = benchmark(wah_or, a, b)
    assert len(result) > 0
