"""E11 -- the abstract's headline numbers, measured end to end.

Paper: "~500x speedup, ~28000x energy saving on bitwise operations, and
1.12x overall speedup, 1.11x overall energy saving over the conventional
processor."
"""

import pytest

from repro.analysis.figures import fig13_data, headline_numbers
from repro.analysis.report import render_report
from benchmarks.conftest import bench_scale


@pytest.fixture(scope="module")
def headline():
    return headline_numbers(scale=bench_scale())


def test_headline_report(headline, once):
    once(lambda: None)  # register with --benchmark-only
    print()
    print(render_report(headline, fig13_data()))


def test_headline_bitwise_speedup(headline, once):
    """Gmean bitwise speedup is double-digit-to-hundreds; our SIMD
    roofline is optimistic relative to the paper's Sniper baseline (see
    EXPERIMENTS.md), so we assert the conservative band."""
    once(lambda: None)  # register with --benchmark-only
    assert headline["bitwise_speedup"] > 20


def test_headline_bitwise_energy(headline, once):
    """Within an order of magnitude of the paper's ~28000x."""
    once(lambda: None)  # register with --benchmark-only
    assert headline["bitwise_energy_saving"] > 2000


def test_headline_overall_speedup(headline, once):
    """Paper: 1.12x overall; ours must land in the same Amdahl band."""
    once(lambda: None)  # register with --benchmark-only
    assert 1.05 <= headline["overall_speedup"] <= 1.35


def test_headline_overall_energy(headline, once):
    once(lambda: None)  # register with --benchmark-only
    assert 1.05 <= headline["overall_energy_saving"] <= 1.35
