"""Ablation A1 -- how much does the multi-row limit buy?

Sweeps the one-step OR row limit (Pinatubo-2 .. Pinatubo-128) on the
multi-row Vector workload and on the graph apps.  This isolates the
paper's central design choice: the reference circuits + LWL latch that
enable n-row activation.
"""

import pytest

from repro.backends import SystemConfig, build_system
from repro.baselines.base import AccessPattern


ROW_LIMITS = (2, 4, 8, 16, 32, 64, 128)


def _pinatubo(limit: int):
    return build_system(SystemConfig(backend="pinatubo", max_rows=limit))


@pytest.fixture(scope="module")
def sweep():
    """{limit: latency} for a 128-operand OR on 2^19-bit vectors."""
    out = {}
    for limit in ROW_LIMITS:
        out[limit] = _pinatubo(limit).bitwise_cost("or", 128, 1 << 19).latency
    return out


def test_ablation_multirow_table(sweep, once):
    once(lambda: None)  # register with --benchmark-only
    print("\nAblation: one-step OR row limit vs 128-operand op latency")
    base = sweep[2]
    for limit, latency in sweep.items():
        print(f"  Pinatubo-{limit:<4d}: {latency * 1e6:8.2f} us "
              f"({base / latency:6.1f}x over Pinatubo-2)")


def test_ablation_latency_monotone_in_limit(sweep, once):
    once(lambda: None)  # register with --benchmark-only
    latencies = [sweep[limit] for limit in ROW_LIMITS]
    assert latencies == sorted(latencies, reverse=True)


def test_ablation_diminishing_returns(sweep, once):
    """Each doubling of the limit buys less: combine-step count halves
    but fixed per-op costs (tRCD, tWR) stay."""
    once(lambda: None)  # register with --benchmark-only
    gains = [
        sweep[ROW_LIMITS[i]] / sweep[ROW_LIMITS[i + 1]]
        for i in range(len(ROW_LIMITS) - 1)
    ]
    assert gains[0] > gains[-1]
    assert all(g >= 1.0 for g in gains)


def test_ablation_limit_useless_on_random(once):
    """The limit only matters for intra-subarray ops."""
    once(lambda: None)  # register with --benchmark-only
    costs = [
        _pinatubo(limit)
        .bitwise_cost("or", 128, 1 << 14, AccessPattern.RANDOM)
        .latency
        for limit in (2, 128)
    ]
    assert costs[0] == pytest.approx(costs[1], rel=1e-9)


def test_ablation_sweep_speed(benchmark):
    model = _pinatubo(16)
    cost = benchmark(model.bitwise_cost, "or", 128, 1 << 19)
    assert cost.latency > 0
