"""E2 -- Fig. 6: modified CSA transient validation.

Regenerates the OR/AND/XOR demonstration sequence and the corner sweep
("tested with a large range of cell resistances from the recent PCM,
STT-MRAM and ReRAM prototypes"), and benchmarks one transient sensing
pass.
"""

import pytest

from repro.analysis.figures import fig6_data
from repro.circuits.csa_sim import CSATransientSim
from repro.circuits.validate import validate_csa_corners
from repro.nvm.technology import get_technology


def test_fig6_sequence_and_corners(once):
    once(lambda: None)  # register with --benchmark-only
    data = fig6_data("pcm", monte_carlo=3)
    print("\nFig. 6 -- CSA operation sequence (mode, a, b -> bit):")
    for entry in data["sequence"]:
        expected = {
            "or": entry["a"] | entry["b"],
            "and": entry["a"] & entry["b"],
            "xor": entry["a"] ^ entry["b"],
        }[entry["mode"]]
        assert entry["bit"] == expected
        print(f"  {entry['mode']:>4s}({entry['a']},{entry['b']}) -> {entry['bit']}")
    report = data["corner_report"]
    print(f"  corner sweep: {report.n_pass}/{report.n_cases} pass")
    assert report.all_pass


@pytest.mark.parametrize("name", ["pcm", "reram", "stt"])
def test_fig6_all_technologies(name, once):
    once(lambda: None)  # register with --benchmark-only
    report = validate_csa_corners(get_technology(name), or_rows=128)
    print(f"\n{name}: {report.n_pass}/{report.n_cases} corner cases pass")
    assert report.all_pass


def test_fig6_sense_pass_speed(benchmark):
    """Benchmark one full 3-phase transient sensing pass."""
    pcm = get_technology("pcm")
    sim = CSATransientSim(pcm)
    trace = benchmark(sim.read, pcm.r_low)
    assert trace.bit == 1
