"""Shared result-file writer for the ``BENCH_*.json`` artifacts.

Every benchmark that records results at the repo root writes through
:func:`write_bench`, so all artifacts share one top-level schema::

    {"bench": "<name>", "schema": 1, ...payload...}

``bench`` names the producing benchmark and ``schema`` versions the
header itself -- ``check_bench_regression.py`` and CI tooling key on
both instead of sniffing file shapes.
"""

from __future__ import annotations

import json
from pathlib import Path

#: bump when the common header changes shape
BENCH_SCHEMA = 1


def write_bench(path: Path, name: str, payload: dict) -> dict:
    """Write one benchmark artifact with the common header; returns it."""
    if "bench" in payload or "schema" in payload:
        raise ValueError("payload must not carry the reserved header keys")
    result = {"bench": name, "schema": BENCH_SCHEMA, **payload}
    Path(path).write_text(json.dumps(result, indent=2) + "\n")
    return result
