"""Shared result-file writer for the ``BENCH_*.json`` artifacts.

Every benchmark that records results at the repo root writes through
:func:`write_bench`, so all artifacts share one top-level schema::

    {"bench": "<name>", "schema": 2,
     "env": {"git_rev": ..., "python": ..., "numpy": ...},
     ...payload...}

``bench`` names the producing benchmark and ``schema`` versions the
header itself -- ``check_bench_regression.py`` and CI tooling key on
both instead of sniffing file shapes.  ``env`` pins the provenance of
the numbers: the commit they were measured at and the interpreter and
numpy versions that produced them, so a regression can be told apart
from an environment change.
"""

from __future__ import annotations

import json
import platform
import subprocess
from pathlib import Path

import numpy as np

#: bump when the common header changes shape
BENCH_SCHEMA = 2

_REPO_ROOT = Path(__file__).resolve().parent.parent


def _git_rev() -> "str | None":
    """Short hash of HEAD, or None outside a git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=_REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = proc.stdout.strip()
    return rev if proc.returncode == 0 and rev else None


def bench_env() -> dict:
    """The provenance block embedded in every artifact header."""
    return {
        "git_rev": _git_rev(),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }


def write_bench(path: Path, name: str, payload: dict) -> dict:
    """Write one benchmark artifact with the common header; returns it."""
    if not payload.keys().isdisjoint(("bench", "schema", "env")):
        raise ValueError("payload must not carry the reserved header keys")
    result = {
        "bench": name,
        "schema": BENCH_SCHEMA,
        "env": bench_env(),
        **payload,
    }
    Path(path).write_text(json.dumps(result, indent=2) + "\n")
    return result
