"""E6 -- Fig. 11: bitwise-operation energy saving normalised to SIMD.

Regenerates the energy table and checks the paper's claims: analog
computing (S-DRAM, Pinatubo) beats the digital AC-PIM; multi-row
operation amortisation drives the four-digit savings.
"""

import pytest

from repro.analysis.figures import fig11_data
from repro.analysis.report import format_speedup_table
from benchmarks.conftest import bench_scale


@pytest.fixture(scope="module")
def data():
    return fig11_data(scale=bench_scale())


def test_fig11_table(data, once):
    once(lambda: None)  # register with --benchmark-only
    print()
    print(format_speedup_table(
        "Fig. 11 -- bitwise energy saving over SIMD", data
    ))


def test_fig11_everything_saves_energy(data, once):
    once(lambda: None)  # register with --benchmark-only
    for workload, row in data.items():
        if workload == "gmean":
            continue
        for scheme, saving in row.items():
            assert saving >= 1.0, (workload, scheme)


def test_fig11_acpim_never_beats_pinatubo128(data, once):
    """Paper: AC-PIM never saves more energy than the analog schemes
    (Pinatubo-128 here; see EXPERIMENTS.md for the S-DRAM nuance)."""
    once(lambda: None)  # register with --benchmark-only
    for workload, row in data.items():
        if workload == "gmean":
            continue
        assert row["AC-PIM"] <= row["Pinatubo-128"] * 1.01, workload


def test_fig11_multirow_amortisation(data, once):
    """128-row operations amortise activation + write-back energy."""
    once(lambda: None)  # register with --benchmark-only
    row = data["vector:19-16-7s"]
    assert row["Pinatubo-128"] > 50 * row["Pinatubo-2"]


def test_fig11_headline_order_of_magnitude(data, once):
    """Paper headline: ~28000x gmean energy saving; the marquee
    multi-row benchmark must land within ~2x of it."""
    once(lambda: None)  # register with --benchmark-only
    assert data["gmean"]["Pinatubo-128"] > 1000
    assert 10_000 <= data["vector:19-16-7s"]["Pinatubo-128"] <= 60_000


def test_fig11_random_collapse(data, once):
    once(lambda: None)  # register with --benchmark-only
    row = data["vector:14-16-7r"]
    assert row["Pinatubo-128"] == pytest.approx(row["Pinatubo-2"], rel=1e-9)
