"""E4 -- Fig. 9: Pinatubo OR-operation throughput (GBps).

Regenerates the full length x fan-in sweep, checks the turning points
(A at 2^14: SA sharing; B at 2^19: serial ranks) and the three bandwidth
regions, and benchmarks one 128-row OR execution.
"""

import pytest

from repro.analysis.figures import fig9_data
from repro.analysis.report import format_series
from repro.core.pinatubo import PinatuboSystem


@pytest.fixture(scope="module")
def data():
    return fig9_data()


def test_fig9_full_sweep(data, once):
    once(lambda: None)  # register with --benchmark-only
    print()
    print(format_series(
        "Fig. 9 -- OR throughput (GBps) by vector length (log2) and fan-in",
        {f"{n}-row": pts for n, pts in data["series"].items()},
        x_label="len",
    ))
    print(f"DDR bus: {data['ddr_bus_gbps']:.1f} GBps, "
          f"internal: {data['internal_gbps']:.1f} GBps")


def test_fig9_throughput_grows_with_length(data, once):
    once(lambda: None)  # register with --benchmark-only
    for n, points in data["series"].items():
        ys = [y for x, y in points if x <= 19]
        assert ys == sorted(ys), f"{n}-row series not monotone"


def test_fig9_fanin_separates_curves(data, once):
    once(lambda: None)  # register with --benchmark-only
    series = data["series"]
    for log_len in (10, 14, 19):
        at_len = [dict(series[n])[log_len] for n in sorted(series)]
        assert at_len == sorted(at_len)


def test_fig9_turning_point_a(data, once):
    """Below 2^14 the 2-row curve is linear in length; above it the
    serial column steps bend it down."""
    once(lambda: None)  # register with --benchmark-only
    two = dict(data["series"][2])
    assert two[12] / two[10] == pytest.approx(4.0, rel=0.05)
    assert two[16] / two[14] < 0.95 * (two[12] / two[10])


def test_fig9_turning_point_b(data, once):
    """Beyond 2^19 the curves flatten (ranks serialise)."""
    once(lambda: None)  # register with --benchmark-only
    for n in (2, 128):
        pts = dict(data["series"][n])
        assert pts[20] / pts[19] < 1.05


def test_fig9_bandwidth_regions(data, once):
    once(lambda: None)  # register with --benchmark-only
    two = dict(data["series"][2])
    top = dict(data["series"][128])
    # short vectors sit below the DDR bus bandwidth
    assert two[10] < data["ddr_bus_gbps"]
    # 2-row ops stay within the memory-internal region
    assert two[19] <= data["internal_gbps"] * 1.25
    # only multi-row ops reach beyond the internal bandwidth
    assert top[19] > data["internal_gbps"]


def test_fig9_multirow_gain(data, once):
    once(lambda: None)  # register with --benchmark-only
    two = dict(data["series"][2])
    top = dict(data["series"][128])
    assert top[19] / two[19] > 20


def test_fig9_op_execution_speed(benchmark):
    """Benchmark the simulator itself on one 128-row full-row OR."""

    def run():
        return PinatuboSystem.pcm().or_throughput(1 << 19, 128)

    acct = benchmark(run)
    assert acct.throughput_gbps > 1000
