"""Delta-repair benchmark: write => repair vs write => invalidate.

A mixed read/write stream over a small pool of repeated bulk-bitwise
queries -- the serving shape PR 6 benchmarked, now with a write stream
mixed in.  Reads are Zipf-drawn from the pool (a few hot queries
dominate); at ``WRITE_RATIO`` of the stream a Zipf-chosen base vector
has its first row overwritten with fresh random bits, which dirties one
chunk of every multi-chunk cached sub-result reading it.

Three identical planned runtimes play the same stream:

- *invalidate*: ``PimRuntime(plan=True, repair=False)`` -- the PR-6
  semantics: the write drops every dependent cache entry, the next read
  of each dirtied query re-executes all of its chunks in memory;
- *repair (interpreted)*: ``repair=True, compile=False`` -- the write's
  delta (``old XOR new``, one row) repairs each dependent entry in
  place: one 2-operand XOR per dirtied chunk for linear ops, a
  delta-masked recompute of only the dirtied chunk for AND/OR, priced
  through the real controller; every following read is a cache hit;
- *repair (compiled)*: ``repair=True, compile=True`` -- the same
  repairs replayed as frozen repair programs out of the ProgramCache.

All arms must answer byte-identically to a live numpy mirror (the
uncached oracle); the two repair arms must price identically to 1e-9
relative (the repair program is an execution strategy, never a pricing
change).  The headline claim, guarded by ``check_bench_regression.py``:
at a >= 10% write ratio the repair path clears **2x the invalidation
arm's simulated ops/s**.  Results land in ``BENCH_repair.json``.
"""

import sys
import time
from pathlib import Path

import numpy as np

from repro.core.pinatubo import PinatuboSystem
from repro.memsim.geometry import MemoryGeometry
from repro.nvm.technology import get_technology
from repro.runtime.api import PimRuntime

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_repair.json"

#: repair must clear this many times the invalidation arm's sim ops/s
REPAIR_TARGET_SPEEDUP = 2.0

#: repair arms must price identically to this relative tolerance
SIM_PARITY_RTOL = 1e-9

GEOM = MemoryGeometry(
    channels=1,
    ranks_per_channel=1,
    chips_per_rank=1,
    banks_per_chip=8,
    subarrays_per_bank=64,
    rows_per_subarray=128,
    mats_per_subarray=1,
    cols_per_mat=1024,
    mux_ratio=8,
)

N_CHUNKS = 16  # chunks per vector: a one-row write dirties 1/16th
N_BITS = N_CHUNKS * GEOM.row_bits
N_VECTORS = 5  # small operand universe: each write dirties most queries
POOL = 12  # unique queries
N_EVENTS = 240  # stream length (reads + writes)
WRITE_RATIO = 0.15  # >= the 10% the acceptance criterion names
ZIPF_S = 1.1
#: op mix of the pool, XOR-heavy: wide XORs take the most sense steps
#: per chunk, which is exactly the work a cached serve (and a delta
#: repair) avoids re-doing; the or/and entries keep the delta-masked
#: recompute path honest in the same stream
OPS = ("xor", "xor", "xor", "xor", "or", "and")


def _zipf_probs(n: int, s: float = ZIPF_S) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-s)
    return weights / weights.sum()


def _query_pool(rng) -> list:
    """POOL unique (op, operand indices) queries over the base vectors.

    Composition is fixed -- ``OPS`` draws in order, sources shuffled by
    the rng -- so the pool exercises both repair algebras: XOR entries
    take the one-bulk-XOR linear path, AND/OR the delta-masked
    recompute.
    """
    pool = []
    seen = set()
    i = 0
    while len(pool) < POOL:
        op = OPS[i % len(OPS)]
        i += 1
        n_ops = int(rng.integers(2, 4)) if op != "xor" else 3
        srcs = tuple(
            int(j) for j in rng.choice(N_VECTORS, size=n_ops, replace=False)
        )
        key = (op, tuple(sorted(srcs)))
        if key in seen:
            continue
        seen.add(key)
        pool.append((op, srcs))
    return pool


def _stream(rng, pool, n_events: int) -> list:
    """The event stream: ('read', pool index) | ('write', vector, bits).

    Reads are Zipf-drawn over the pool; writes are Zipf-drawn over the
    base vectors and overwrite the vector's first row.
    """
    n_writes = int(round(WRITE_RATIO * n_events))
    write_at = set(
        int(i) for i in rng.choice(n_events, size=n_writes, replace=False)
    )
    read_picks = rng.choice(POOL, size=n_events, p=_zipf_probs(POOL))
    write_picks = rng.choice(
        N_VECTORS, size=n_events, p=_zipf_probs(N_VECTORS)
    )
    events = []
    for i in range(n_events):
        if i in write_at:
            bits = rng.integers(0, 2, GEOM.row_bits, dtype=np.uint8)
            events.append(("write", int(write_picks[i]), bits))
        else:
            events.append(("read", int(read_picks[i])))
    return events


def _oracle(op: str, operands) -> np.ndarray:
    out = operands[0].copy()
    for o in operands[1:]:
        if op == "or":
            out |= o
        elif op == "and":
            out &= o
        else:
            out ^= o
    return out


def _run_arm(pool, events, repair: bool, compile_: bool) -> dict:
    """Play the stream on one planned runtime; verify against the mirror.

    Priced window: the in-memory serving pipeline -- executions, cache
    serves, repairs/invalidations, and the bus cost of landing each
    write.  Result read-back to the host is *verification* I/O, paid
    identically by every arm, so it is excluded from the metric (it is
    still issued on every read, and every result is compared
    byte-for-byte against the live numpy mirror).
    """
    system = PinatuboSystem(get_technology("pcm"), GEOM, batch_commands=True)
    rt = PimRuntime(system, plan=True, compile=compile_, repair=repair)
    data_rng = np.random.default_rng(101)
    handles, mirror = [], []
    for _ in range(N_VECTORS):
        bits = data_rng.integers(0, 2, N_BITS, dtype=np.uint8)
        h = rt.pim_malloc(N_BITS)
        rt.pim_write(h, bits)
        handles.append(h)
        mirror.append(bits.copy())

    def read(i: int) -> np.ndarray:
        op, srcs = pool[i]
        dest = rt.pim_malloc(N_BITS)
        rt.pim_op(op, dest, [handles[s] for s in srcs])
        bits = rt.pim_read(dest)
        rt.pim_free(dest)
        return bits

    # warm: every unique query executes once and populates the cache
    for i in range(POOL):
        read(i)

    # pim accounting covers executions/serves/repairs; host write cost
    # is tracked per write below (host reads stay out of the window)
    pim0, pim_e0 = rt.pim_accounting.latency, rt.pim_accounting.energy
    write_s = write_j = 0.0
    digests = []
    wall0 = time.perf_counter()
    for event in events:
        if event[0] == "write":
            _, v, bits = event
            h0, e0 = rt.host_accounting.latency, rt.host_accounting.energy
            rt.pim_write(handles[v], bits)
            write_s += rt.host_accounting.latency - h0
            write_j += rt.host_accounting.energy - e0
            mirror[v][: GEOM.row_bits] = bits
        else:
            got = read(event[1])
            op, srcs = pool[event[1]]
            want = _oracle(op, [mirror[s] for s in srcs])
            assert np.array_equal(got, want), (
                f"read of pool[{event[1]}] diverged from the numpy mirror "
                f"(repair={repair}, compile={compile_})"
            )
            digests.append(got.tobytes())
    wall = time.perf_counter() - wall0
    sim = (rt.pim_accounting.latency - pim0) + write_s
    energy = (rt.pim_accounting.energy - pim_e0) + write_j
    return {
        "sim_latency_s": sim,
        "sim_energy_j": energy,
        "wall_s": wall,
        "sim_ops_per_s": len(events) / sim,
        "plan": rt.plan_stats.to_dict(),
        "digests": digests,
    }


def _rel_close(a: float, b: float, rtol: float) -> bool:
    return abs(a - b) <= rtol * max(abs(a), abs(b), 1.0)


def run_repair_benchmark(n_events: int = N_EVENTS) -> dict:
    rng = np.random.default_rng(211)
    pool = _query_pool(rng)
    events = _stream(rng, pool, n_events)
    n_writes = sum(1 for e in events if e[0] == "write")

    inval = _run_arm(pool, events, repair=False, compile_=True)
    interp = _run_arm(pool, events, repair=True, compile_=False)
    comp = _run_arm(pool, events, repair=True, compile_=True)

    # every arm already checked against the live numpy mirror per read;
    # the arms must also agree with each other byte-for-byte
    assert inval["digests"] == interp["digests"] == comp["digests"], (
        "arms produced different read results"
    )
    # the compiled repair path is an execution strategy, not a pricing
    # change: simulated cost must match the interpreted repair arm
    assert _rel_close(
        comp["sim_latency_s"], interp["sim_latency_s"], SIM_PARITY_RTOL
    ), (
        f"compiled repair sim latency {comp['sim_latency_s']!r} != "
        f"interpreted {interp['sim_latency_s']!r}"
    )
    assert _rel_close(
        comp["sim_energy_j"], interp["sim_energy_j"], SIM_PARITY_RTOL
    ), (
        f"compiled repair sim energy {comp['sim_energy_j']!r} != "
        f"interpreted {interp['sim_energy_j']!r}"
    )

    for arm in (inval, interp, comp):
        arm.pop("digests")
    return {
        "workload": {
            "n_events": n_events,
            "n_writes": n_writes,
            "write_ratio": n_writes / n_events,
            "unique_queries": POOL,
            "n_vectors": N_VECTORS,
            "chunks_per_vector": N_CHUNKS,
            "row_bits": GEOM.row_bits,
            "zipf_s": ZIPF_S,
            "smoke": n_events != N_EVENTS,
        },
        "invalidate": inval,
        "repair_interpreted": interp,
        "repair_compiled": comp,
        "sim_ops_speedup": (
            inval["sim_latency_s"] / interp["sim_latency_s"]
        ),
        "repairs": interp["plan"]["repairs"],
        "repair_fallbacks": interp["plan"]["repair_fallbacks"],
    }


def _write_result(result: dict) -> None:
    try:
        from benchmarks.bench_io import write_bench
    except ImportError:  # run as a script: the benchmarks dir is sys.path[0]
        from bench_io import write_bench

    write_bench(RESULT_PATH, "delta_repair", result)


def _report(result: dict) -> str:
    w = result["workload"]
    return (
        f"delta repair ({w['n_events']} events, "
        f"{w['write_ratio']:.0%} writes): "
        f"invalidate {result['invalidate']['sim_ops_per_s']:.3e} sim ops/s, "
        f"repair {result['repair_interpreted']['sim_ops_per_s']:.3e} sim "
        f"ops/s ({result['sim_ops_speedup']:.1f}x, "
        f"{result['repairs']} repairs, "
        f"{result['repair_fallbacks']} fallbacks) -> {RESULT_PATH.name}"
    )


def _check(result: dict) -> None:
    assert result["sim_ops_speedup"] >= REPAIR_TARGET_SPEEDUP, (
        f"delta-repair regression: {result['sim_ops_speedup']:.2f}x sim "
        f"ops/s over invalidation (target {REPAIR_TARGET_SPEEDUP:.0f}x)"
    )
    assert result["repairs"] > 0, "stream produced no repairs"


def test_delta_repair_speedup(once):
    """Repair >= 2x the invalidation arm's sim ops/s at a >= 10% write
    ratio, byte-identical to the numpy mirror; writes BENCH_repair.json."""
    result = once(run_repair_benchmark)
    _write_result(result)
    print()
    print(_report(result))
    _check(result)


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv[1:]
    res = run_repair_benchmark(n_events=60 if smoke else N_EVENTS)
    _write_result(res)
    print(_report(res))
    if not smoke:
        _check(res)
