"""Ablation A6 -- sensing bit-error rate vs multi-row fan-in.

Quantifies the Fig. 5 "no overlap" assumption: BER stays negligible
through the supported 128-row fan-in (and the 4-sigma electrical limit),
then climbs steeply as the composite case ratio (K + n - 1)/n approaches
the systematic cell spread.
"""

import pytest

from repro.nvm.margin import MarginAnalysis
from repro.nvm.reliability import SensingReliability
from repro.nvm.technology import get_technology


FANINS = (2, 128, 334, 1024, 2048, 4096)


@pytest.fixture(scope="module")
def curve():
    rel = SensingReliability(get_technology("pcm"))
    return {n: rel.analytical_or(n) for n in FANINS}


def test_ablation_ber_table(curve, once):
    once(lambda: None)  # register with --benchmark-only
    limit = MarginAnalysis(get_technology("pcm")).electrical_or_limit()
    print(f"\nAblation: OR fan-in vs worst-case sensing BER "
          f"(PCM, electrical limit {limit})")
    for n, point in curve.items():
        marker = " <= supported" if n <= 128 else ""
        print(f"  n={n:5d}: miss={point.p_miss:9.2e} "
              f"false={point.p_false:9.2e}{marker}")


def test_ablation_supported_fanin_is_clean(curve, once):
    once(lambda: None)  # register with --benchmark-only
    assert curve[128].worst < 1e-9


def test_ablation_cliff_location(curve, once):
    """The BER cliff sits beyond the margin-analysis limit -- the
    corner-based design rule has headroom, as a design rule should."""
    once(lambda: None)  # register with --benchmark-only
    assert curve[334].worst < 1e-6
    assert curve[4096].worst > 1e-2


def test_ablation_monte_carlo_agrees(once):
    once(lambda: None)  # register with --benchmark-only
    rel = SensingReliability(get_technology("pcm"))
    mc = rel.monte_carlo_or(4096, samples=10_000)
    fw = rel.analytical_or(4096)
    assert mc.worst == pytest.approx(fw.worst, rel=0.5)


def test_ablation_mc_speed(benchmark):
    rel = SensingReliability(get_technology("pcm"))
    point = benchmark(rel.monte_carlo_or, 128, 5_000)
    assert point.worst < 1e-2
