"""E3 -- Fig. 7: local-wordline driver multi-row activation.

Regenerates the RESET + decode + latch transient and benchmarks a
PCM-scale 128-row activation sequence.
"""

from repro.analysis.figures import fig7_data
from repro.circuits.lwl_sim import LWLDriverSim


def test_fig7_latch_sequence(once):
    once(lambda: None)  # register with --benchmark-only
    data = fig7_data(n_rows=8)
    print(f"\nFig. 7 -- activated {data['activated']}, "
          f"latched {data['latched']}")
    assert data["all_latched"]
    trace = data["trace"]
    cfg_vdd = 1.5
    # the first-latched wordline must still be high when the last decode
    # pulse fires (that is the whole point of the latch)
    first = trace.wordline[data["activated"][0]]
    assert first.final > 0.9 * cfg_vdd
    # unselected rows stay low
    for row, wl in trace.wordline.items():
        if row not in data["activated"]:
            assert wl.final < 0.2 * cfg_vdd


def test_fig7_128_row_activation(benchmark):
    """The PCM configuration: 128 rows latched in one sequence."""
    sim = LWLDriverSim(n_rows=256)
    rows = list(range(0, 256, 2))

    def run():
        return sim.run_sequence(rows, pulse_width=0.3e-9, gap=0.2e-9, tail=1e-9)

    trace = benchmark(run)
    assert trace.latched_rows == tuple(rows)
