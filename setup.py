"""Setup shim for environments without the `wheel` package.

The canonical metadata lives in pyproject.toml; this file only exists so
`pip install -e . --no-use-pep517` works offline (no wheel building).
"""

from setuptools import setup

setup()
